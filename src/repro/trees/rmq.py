"""Heavy-path RMQ for tree path queries (paper Theorem 4).

Theorem 4 (Behnezhad et al. [5]): the heavy-light decomposition plus an
RMQ structure over its heavy paths can be built in ``O(1/eps)`` AMPC
rounds; afterwards, a min/max over any tree path costs ``O(log n)``
queries to global memory — one sparse-table lookup per heavy path the
query path crosses (Observation 1 bounds those by ``O(log n)``).

Section 4 uses this twice: Lemma 11 needs path *maxima* to compute
``ldr_time`` (the paper writes "minimum"; see the DESIGN.md errata —
under Definition 6, a vertex joins a bag when the **largest** key on
the connecting path has been contracted), and Lemma 13 needs the same
for the ``mw(x)`` values.

Implemented as numpy sparse tables per heavy path.  ``query_count``
tracks segment lookups so tests can assert the ``O(log n)`` bound.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from .heavy_light import HeavyLight, heavy_light_decomposition
from .rooted import RootedTree

Vertex = Hashable


class _SparseTable:
    """Idempotent range queries (max or min) in O(1) after O(L log L) build."""

    def __init__(self, values: np.ndarray, op: Callable):
        self._op = op
        L = len(values)
        self._levels = [np.asarray(values, dtype=np.float64)]
        k = 1
        while (1 << k) <= L:
            prev = self._levels[-1]
            half = 1 << (k - 1)
            self._levels.append(op(prev[: L - (1 << k) + 1], prev[half : L - half + 1]))
            k += 1

    def query(self, lo: int, hi: int) -> float:
        """Range op over ``values[lo:hi]`` (half-open, non-empty)."""
        if lo >= hi:
            raise ValueError("empty range")
        span = hi - lo
        k = span.bit_length() - 1
        lvl = self._levels[k]
        return float(self._op(lvl[lo], lvl[hi - (1 << k)]))


class TreePathAggregator:
    """Max (default) or min of edge weights along arbitrary tree paths.

    Parameters
    ----------
    tree:
        A rooted tree.
    edge_weight:
        ``(child, parent) -> weight`` for every tree edge.
    mode:
        ``"max"`` or ``"min"``.
    hl:
        Optional precomputed heavy-light decomposition.
    """

    def __init__(
        self,
        tree: RootedTree,
        edge_weight: dict[tuple[Vertex, Vertex], float],
        *,
        mode: str = "max",
        hl: HeavyLight | None = None,
    ):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.tree = tree
        self.mode = mode
        self.hl = hl if hl is not None else heavy_light_decomposition(tree)
        self._combine = max if mode == "max" else min
        np_op = np.maximum if mode == "max" else np.minimum
        self._weight = edge_weight
        self.query_count = 0  # segment lookups, for the O(log n) tests

        self._tables: list[_SparseTable | None] = []
        for path in self.hl.paths:
            if len(path) < 2:
                self._tables.append(None)
                continue
            vals = np.array(
                [edge_weight[(path[i + 1], path[i])] for i in range(len(path) - 1)],
                dtype=np.float64,
            )
            self._tables.append(_SparseTable(vals, np_op))

    # ------------------------------------------------------------------
    def path_aggregate(self, u: Vertex, v: Vertex) -> float:
        """Aggregate edge weight on the tree path from ``u`` to ``v``.

        Raises ``ValueError`` when ``u == v`` (empty path).
        """
        if u == v:
            raise ValueError("path from a vertex to itself has no edges")
        hl, tree = self.hl, self.tree
        best: float | None = None

        def fold(x: float | None, y: float) -> float:
            return y if x is None else self._combine(x, y)

        while hl.path_of[u] != hl.path_of[v]:
            # Lift the endpoint whose path head is deeper.
            hu, hv = hl.path_head(u), hl.path_head(v)
            if tree.depth[hu] < tree.depth[hv]:
                u, v = v, u
                hu, hv = hv, hu
            m = hl.path_of[u]
            pos = hl.position[u]
            if pos > 0:
                best = fold(best, self._tables[m].query(0, pos))
                self.query_count += 1
            # the light edge from the path head to its parent
            p = tree.parent[hu]
            best = fold(best, self._weight[(hu, p)])
            self.query_count += 1
            u = p
        if u != v:
            m = hl.path_of[u]
            a, b = hl.position[u], hl.position[v]
            if a > b:
                a, b = b, a
            best = fold(best, self._tables[m].query(a, b))
            self.query_count += 1
        assert best is not None
        return best

    def path_max_naive(self, u: Vertex, v: Vertex) -> float:
        """Reference O(depth) walk for differential tests."""
        if u == v:
            raise ValueError("path from a vertex to itself has no edges")
        tree = self.tree
        best: float | None = None
        du, dv = tree.depth[u], tree.depth[v]
        while du > dv:
            p = tree.parent[u]
            w = self._weight[(u, p)]
            best = w if best is None else self._combine(best, w)
            u, du = p, du - 1
        while dv > du:
            p = tree.parent[v]
            w = self._weight[(v, p)]
            best = w if best is None else self._combine(best, w)
            v, dv = p, dv - 1
        while u != v:
            pu, pv = tree.parent[u], tree.parent[v]
            for child, par in ((u, pu), (v, pv)):
                w = self._weight[(child, par)]
                best = w if best is None else self._combine(best, w)
            u, v = pu, pv
        assert best is not None
        return best
