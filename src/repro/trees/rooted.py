"""Rooted tree representation (Section 3.1, "Rooting the Tree").

Lemma 4 roots and orients a forest in ``O(1/eps)`` AMPC rounds; the
genuinely-executed implementation lives in
:mod:`repro.ampc.primitives.euler`.  This module provides the fast
sequential equivalent used inside the larger pipelines (identical
outputs — asserted by tests) plus the :class:`RootedTree` container the
rest of Section 3 consumes: parents, depths, subtree sizes, children in
deterministic order, preorder numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from ..ampc import AMPCConfig, RoundLedger
from ..ampc.primitives.euler import ampc_root_forest

Vertex = Hashable


@dataclass
class RootedTree:
    """A rooted tree (or forest component) with derived quantities."""

    root: Vertex
    parent: dict[Vertex, Vertex | None]
    children: dict[Vertex, list[Vertex]]
    depth: dict[Vertex, int]
    subtree_size: dict[Vertex, int]
    preorder: dict[Vertex, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.parent)

    def vertices(self) -> list[Vertex]:
        return list(self.parent.keys())

    def is_leaf(self, v: Vertex) -> bool:
        return not self.children[v]

    def path_to_root(self, v: Vertex) -> list[Vertex]:
        """Vertices from ``v`` up to (and including) the root."""
        out = [v]
        while self.parent[out[-1]] is not None:
            out.append(self.parent[out[-1]])
        return out

    def edges(self) -> Iterable[tuple[Vertex, Vertex]]:
        """(child, parent) pairs."""
        for v, p in self.parent.items():
            if p is not None:
                yield (v, p)

    def validate(self) -> None:
        """Internal-consistency check (used by property tests)."""
        n = self.num_vertices
        if self.parent[self.root] is not None:
            raise ValueError("root must have no parent")
        for v, p in self.parent.items():
            if p is None:
                if v != self.root:
                    raise ValueError(f"non-root {v!r} has no parent")
                if self.depth[v] != 1:
                    raise ValueError("root depth must be 1")
            else:
                if self.depth[v] != self.depth[p] + 1:
                    raise ValueError(f"depth broken at {v!r}")
                if v not in self.children[p]:
                    raise ValueError(f"child lists broken at {v!r}")
        if self.subtree_size[self.root] != n:
            raise ValueError("root subtree size must be n")
        for v in self.parent:
            expect = 1 + sum(self.subtree_size[c] for c in self.children[v])
            if self.subtree_size[v] != expect:
                raise ValueError(f"subtree size broken at {v!r}")


def root_tree(
    vertices: Sequence[Vertex],
    edges: Iterable[tuple[Vertex, Vertex]],
    *,
    root: Vertex | None = None,
) -> RootedTree:
    """Sequential rooting: BFS orientation + postorder subtree sizes.

    Mirrors the output contract of Lemma 4 / :func:`ampc_root_forest`
    for a single tree; ``root`` defaults to the minimum vertex under a
    type-stable order.  Children are sorted the same way, so preorder
    matches the AMPC Euler-tour order.
    """
    vertices = list(vertices)
    if not vertices:
        raise ValueError("empty vertex set")
    adjacency: dict[Vertex, list[Vertex]] = {v: [] for v in vertices}
    edge_count = 0
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
        edge_count += 1
    if edge_count != len(vertices) - 1:
        raise ValueError(
            f"not a tree: {len(vertices)} vertices but {edge_count} edges"
        )
    for v in adjacency:
        adjacency[v].sort(key=_stable_key)
    if root is None:
        root = min(vertices, key=_stable_key)

    parent: dict[Vertex, Vertex | None] = {root: None}
    depth: dict[Vertex, int] = {root: 1}
    children: dict[Vertex, list[Vertex]] = {v: [] for v in vertices}
    stack: list[Vertex] = [root]
    visited = {root}
    while stack:
        v = stack.pop()
        for u in adjacency[v]:
            if u not in visited:
                visited.add(u)
                parent[u] = v
                depth[u] = depth[v] + 1
                children[v].append(u)
                stack.append(u)
    if len(visited) != len(vertices):
        raise ValueError("edge set does not connect all vertices")
    for v in children:
        children[v].sort(key=_stable_key)

    # Preorder in child (adjacency) order.  Note: the AMPC rooting's
    # preorder visits children in cyclic order starting after the
    # entering arc, so the two preorders may differ — both are valid
    # DFS preorders (contiguous subtree ranges), which is the only
    # property Section 3 consumes (heavy paths are sorted by depth,
    # identical under any preorder).
    preorder: dict[Vertex, int] = {}
    counter = 0
    stack2: list[Vertex] = [root]
    while stack2:
        v = stack2.pop()
        preorder[v] = counter
        counter += 1
        for u in reversed(children[v]):
            stack2.append(u)

    subtree: dict[Vertex, int] = {v: 1 for v in vertices}
    for v in sorted(vertices, key=lambda x: -depth[x]):
        p = parent[v]
        if p is not None:
            subtree[p] += subtree[v]

    return RootedTree(
        root=root,
        parent=parent,
        children=children,
        depth=depth,
        subtree_size=subtree,
        preorder=preorder,
    )


def root_tree_ampc(
    vertices: Sequence[Vertex],
    edges: Iterable[tuple[Vertex, Vertex]],
    *,
    config: AMPCConfig | None = None,
    ledger: RoundLedger | None = None,
    root: Vertex | None = None,
) -> RootedTree:
    """Lemma-4 rooting on the AMPC simulator (measured rounds).

    Produces the same :class:`RootedTree` as :func:`root_tree`; tests
    assert equality.  Use for round-accounting experiments; use
    :func:`root_tree` inside larger pipelines for speed.
    """
    vertices = list(vertices)
    edge_list = list(edges)
    if config is None:
        config = AMPCConfig(n_input=max(1, len(vertices)))
    roots = None
    if root is not None:
        roots = {0: root}  # single component by contract
    rooted = ampc_root_forest(
        config, vertices, edge_list, roots=roots, ledger=ledger
    )
    the_root = root if root is not None else rooted.root_of[vertices[0]]
    children: dict[Vertex, list[Vertex]] = {v: [] for v in vertices}
    for v, p in rooted.parent.items():
        if p is not None:
            children[p].append(v)
    for v in children:
        children[v].sort(key=_stable_key)
    return RootedTree(
        root=the_root,
        parent=rooted.parent,
        children=children,
        depth=rooted.depth,
        subtree_size=rooted.subtree_size,
        preorder=rooted.preorder,
    )


def _stable_key(v: Vertex):
    return (str(type(v)), str(v))
