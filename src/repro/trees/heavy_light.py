"""Heavy-light decomposition (Section 3.2, Definitions 2–3, Obs. 1–2).

Definition 2 (Sleator–Tarjan): for every internal vertex ``v``, the
edge to the child with the largest subtree is **heavy** (ties broken
deterministically by picking the first such child in child order); all
other child edges are **light**.  Under this definition *every internal
vertex has exactly one descending heavy edge* (Observation 2), which is
the property the paper's meta-tree needs — it deviates from Ghaffari
and Nowicki, who only mark an edge heavy when the child's subtree is
large in absolute terms.

Definition 3: a **heavy path** is a maximal path of heavy edges.  By
Observation 2 heavy paths partition the vertex set (a leaf that is the
heavy child of its parent extends its parent's path; every other leaf
is a singleton path).

Observation 1: any root-to-vertex path crosses at most ``O(log n)``
light edges — each light edge at least halves the subtree size.  The
explicit constant (``<= floor(log2 n)``) is asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .rooted import RootedTree

Vertex = Hashable


@dataclass
class HeavyLight:
    """Heavy-light decomposition of a rooted tree.

    Attributes
    ----------
    heavy_child:
        ``heavy_child[v]`` is the unique heavy child of internal ``v``
        (absent for leaves).
    paths:
        The heavy paths, each listed **top-down** (shallowest vertex
        first).  Singleton paths appear for vertices on no heavy edge.
    path_of:
        Vertex -> index into :attr:`paths`.
    position:
        Vertex -> index within its heavy path.
    """

    tree: RootedTree
    heavy_child: dict[Vertex, Vertex]
    paths: list[list[Vertex]]
    path_of: dict[Vertex, int]
    position: dict[Vertex, int]

    # ------------------------------------------------------------------
    def is_heavy_edge(self, child: Vertex, parent: Vertex) -> bool:
        """Is (child, parent) a heavy edge (w.r.t. the rooted tree)?"""
        return self.heavy_child.get(parent) == child

    def path_head(self, v: Vertex) -> Vertex:
        """Shallowest vertex of ``v``'s heavy path."""
        return self.paths[self.path_of[v]][0]

    def light_edges_to_root(self, v: Vertex) -> int:
        """Number of light edges on the path from ``v`` to the root."""
        count = 0
        cur: Vertex | None = v
        tree = self.tree
        while tree.parent[cur] is not None:
            p = tree.parent[cur]
            if not self.is_heavy_edge(cur, p):
                count += 1
            cur = p
        return count

    def heavy_paths_to_root(self, v: Vertex) -> int:
        """Number of distinct heavy paths met walking from ``v`` to root."""
        seen = set()
        cur: Vertex | None = v
        while cur is not None:
            seen.add(self.path_of[cur])
            cur = self.tree.parent[cur]
        return len(seen)

    def validate(self) -> None:
        """Check Observation 2 and the partition property."""
        covered: set[Vertex] = set()
        for path in self.paths:
            for a, b in zip(path, path[1:]):
                if self.heavy_child.get(a) != b:
                    raise ValueError(f"non-heavy edge inside path at {a!r}->{b!r}")
            overlap = covered.intersection(path)
            if overlap:
                raise ValueError(f"paths overlap on {overlap!r}")
            covered.update(path)
        if covered != set(self.tree.parent.keys()):
            raise ValueError("paths do not cover the vertex set")
        for v in self.tree.parent:
            if self.tree.children[v] and v not in self.heavy_child:
                raise ValueError(f"internal vertex {v!r} lacks a heavy child")


def heavy_light_decomposition(tree: RootedTree) -> HeavyLight:
    """Compute the decomposition (host-side; the AMPC cost is Lemma 5's).

    The heavy child of each internal vertex is the child with maximum
    subtree size, first-in-child-order on ties — deterministic, as
    Definition 2's "arbitrarily choose exactly one" permits.
    """
    heavy_child: dict[Vertex, Vertex] = {}
    for v in tree.parent:
        kids = tree.children[v]
        if not kids:
            continue
        best = kids[0]
        for c in kids[1:]:
            if tree.subtree_size[c] > tree.subtree_size[best]:
                best = c
        heavy_child[v] = best

    # Heavy paths: start at every vertex whose parent edge is light (or
    # absent) and follow heavy children downwards.
    paths: list[list[Vertex]] = []
    path_of: dict[Vertex, int] = {}
    position: dict[Vertex, int] = {}
    for v in tree.parent:
        p = tree.parent[v]
        starts_path = p is None or heavy_child.get(p) != v
        if not starts_path:
            continue
        path = [v]
        while path[-1] in heavy_child:
            path.append(heavy_child[path[-1]])
        idx = len(paths)
        paths.append(path)
        for pos, u in enumerate(path):
            path_of[u] = idx
            position[u] = pos
    return HeavyLight(
        tree=tree,
        heavy_child=heavy_child,
        paths=paths,
        path_of=path_of,
        position=position,
    )
