"""Binarized paths (Section 3.3, Definition 5, Observations 3–5).

A heavy path can be as long as ``Theta(n)``, so recursing on it naively
would blow the decomposition depth.  Definition 5 replaces each heavy
path ``P`` with an **almost complete binary tree** with ``|P|`` leaves
whose pre-order leaf sequence equals ``P``'s order — the *binarized
path*.  Splitting at internal nodes of this tree then halves the path
piece at every level, giving depth ``floor(log2 |P|) + 1``
(Observation 3).

Nodes are heap-indexed ``1 .. 2L-1`` (BFS layout): ``parent(i) = i//2``,
children ``2i`` / ``2i+1``; with ``L`` leaves the leaves are exactly the
indices ``> (2L-1)//2``, and their left-to-right (= pre-order) order is
the deepest layer first, then the remainder of the shallower layer —
see :meth:`AlmostCompleteBinaryTree.leaves_preorder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

Vertex = Hashable


@dataclass(frozen=True)
class AlmostCompleteBinaryTree:
    """Heap-indexed almost complete binary tree with ``num_leaves`` leaves.

    Observation 3: ``2L - 1`` nodes, max depth ``floor(log2 L) + 1``
    (root at depth 1), every layer full except possibly the last.
    """

    num_leaves: int

    def __post_init__(self) -> None:
        if self.num_leaves < 1:
            raise ValueError("need at least one leaf")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return 2 * self.num_leaves - 1

    def parent(self, i: int) -> int | None:
        self._check(i)
        return None if i == 1 else i // 2

    def left(self, i: int) -> int | None:
        self._check(i)
        c = 2 * i
        return c if c <= self.num_nodes else None

    def right(self, i: int) -> int | None:
        self._check(i)
        c = 2 * i + 1
        return c if c <= self.num_nodes else None

    def is_leaf(self, i: int) -> bool:
        self._check(i)
        return 2 * i > self.num_nodes

    def is_left_child(self, i: int) -> bool:
        self._check(i)
        return i != 1 and i % 2 == 0

    def is_right_child(self, i: int) -> bool:
        self._check(i)
        return i != 1 and i % 2 == 1

    def depth(self, i: int) -> int:
        """Depth with the root at 1 (the paper's convention)."""
        self._check(i)
        return i.bit_length()

    @property
    def max_depth(self) -> int:
        return self.num_nodes.bit_length()

    def _check(self, i: int) -> None:
        if not 1 <= i <= self.num_nodes:
            raise ValueError(f"node index {i} out of range 1..{self.num_nodes}")

    # ------------------------------------------------------------------
    def leaves_preorder(self) -> list[int]:
        """Leaf indices in left-to-right (= pre-order) order.

        The heap fills the last layer left to right, so the deepest
        leaves (indices ``2^D .. N``) come first in tree order, followed
        by the remaining shallower leaves (``N//2 + 1 .. 2^D - 1``).
        """
        n_nodes = self.num_nodes
        deepest_start = 1 << (n_nodes.bit_length() - 1)
        deep = list(range(deepest_start, n_nodes + 1))
        shallow = list(range(n_nodes // 2 + 1, deepest_start))
        return deep + shallow

    def preorder(self) -> list[int]:
        """Full pre-order traversal (iterative; used by tests)."""
        out: list[int] = []
        stack = [1]
        while stack:
            i = stack.pop()
            out.append(i)
            r, l = self.right(i), self.left(i)
            if r is not None:
                stack.append(r)
            if l is not None:
                stack.append(l)
        return out

    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor via heap-index alignment."""
        self._check(a)
        self._check(b)
        while a != b:
            if a > b:
                a //= 2
            else:
                b //= 2
        return a

    def leftmost_leaf(self, i: int) -> int:
        """Leftmost leaf of the subtree rooted at ``i``."""
        while not self.is_leaf(i):
            i = 2 * i
        return i


@dataclass
class BinarizedPath:
    """A heavy path together with its almost complete binary tree.

    ``leaf_of[v]`` is the heap index of the leaf carrying path vertex
    ``v``; ``vertex_of[i]`` inverts it.  Pre-order agreement with the
    path order (Definition 5) holds by construction and is property-
    tested (Observation 5).
    """

    path: list[Vertex]
    tree: AlmostCompleteBinaryTree
    leaf_of: dict[Vertex, int]
    vertex_of: dict[int, Vertex]

    # ------------------------------------------------------------------
    def label_anchor(self, v: Vertex) -> int:
        """Heap node whose depth labels ``v`` (Algorithm 2, line 14).

        Climb from ``v``'s leaf while it is a left child; if the walk
        stops at the root, the anchor is the leaf itself; otherwise the
        anchor is the parent of the stopping node (``v`` is then the
        leftmost leaf-descendant of that parent's right child).
        """
        t = self.tree
        leaf = self.leaf_of[v]
        z = leaf
        while t.is_left_child(z):
            z = t.parent(z)  # type: ignore[assignment]
        if z == 1:
            return leaf
        return t.parent(z)  # type: ignore[return-value]

    def anchor_depth(self, v: Vertex) -> int:
        """Depth (root=1) of the label anchor inside this binarized path."""
        return self.tree.depth(self.label_anchor(v))

    def leaf_depth(self, v: Vertex) -> int:
        """Depth of ``v``'s leaf inside this binarized path."""
        return self.tree.depth(self.leaf_of[v])

    def validate(self) -> None:
        t = self.tree
        if t.num_leaves != len(self.path):
            raise ValueError("leaf count mismatch")
        order = [self.vertex_of[i] for i in t.leaves_preorder()]
        if order != list(self.path):
            raise ValueError("pre-order traversal does not agree with path")


def binarize_path(path: Sequence[Vertex]) -> BinarizedPath:
    """Build the binarized path of a heavy path (Lemma 6)."""
    path = list(path)
    tree = AlmostCompleteBinaryTree(num_leaves=len(path))
    leaves = tree.leaves_preorder()
    leaf_of = {v: leaves[i] for i, v in enumerate(path)}
    vertex_of = {leaf: v for v, leaf in leaf_of.items()}
    return BinarizedPath(path=path, tree=tree, leaf_of=leaf_of, vertex_of=vertex_of)
