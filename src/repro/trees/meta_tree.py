"""Meta tree (Section 3.2, Definition 4, Lemma 5).

Contracting every heavy path of the heavy-light decomposition to a
single **meta vertex** yields the meta tree ``T_M``.  Two meta vertices
are adjacent when some light edge of ``T`` joins their heavy paths.
Because heavy paths partition the vertices (Observation 2), the
contraction is well-defined, and ``T_M`` is itself a tree rooted at the
meta vertex containing the root of ``T``.

Lemma 5's AMPC cost (``O(1/eps)`` rounds) comes from forest
connectivity on the heavy forest; heavy paths are *paths*, so the
genuinely-executed route is list ranking — the meta-tree experiments
use :func:`repro.ampc.primitives.connectivity.ampc_forest_components`
for that.  This module is the fast host-side constructor the pipeline
uses, with identical output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .heavy_light import HeavyLight
from .rooted import RootedTree

Vertex = Hashable
MetaVertex = int  # index of the heavy path


@dataclass
class MetaTree:
    """The contracted tree of heavy paths.

    Attributes
    ----------
    hl:
        The underlying heavy-light decomposition (paths index = meta id).
    parent:
        Meta vertex -> parent meta vertex (None for the root path).
    children:
        Meta vertex -> child meta vertices in deterministic order.
    attach:
        For each non-root meta vertex ``P``, the vertex of the *parent
        path* that the head of ``P`` hangs from (the light edge's upper
        endpoint).
    depth:
        Meta-tree depth (root path = 1).
    """

    hl: HeavyLight
    parent: dict[MetaVertex, MetaVertex | None]
    children: dict[MetaVertex, list[MetaVertex]]
    attach: dict[MetaVertex, Vertex]
    depth: dict[MetaVertex, int]

    @property
    def root(self) -> MetaVertex:
        return self.hl.path_of[self.hl.tree.root]

    @property
    def num_meta_vertices(self) -> int:
        return len(self.parent)

    def meta_path(self, m: MetaVertex) -> list[Vertex]:
        """Original vertices of meta vertex ``m``, top-down."""
        return self.hl.paths[m]

    def meta_of(self, v: Vertex) -> MetaVertex:
        return self.hl.path_of[v]

    def validate(self) -> None:
        """Tree-ness and attachment consistency."""
        root = self.root
        if self.parent[root] is not None:
            raise ValueError("root meta vertex must have no parent")
        tree = self.hl.tree
        for m, p in self.parent.items():
            if p is None:
                continue
            head = self.hl.paths[m][0]
            up = tree.parent[head]
            if up is None or self.hl.path_of[up] != p:
                raise ValueError(f"meta parent of {m} inconsistent")
            if self.attach[m] != up:
                raise ValueError(f"attach vertex of {m} inconsistent")
            if self.depth[m] != self.depth[p] + 1:
                raise ValueError(f"meta depth broken at {m}")


def build_meta_tree(hl: HeavyLight) -> MetaTree:
    """Contract heavy paths into the meta tree (Definition 4)."""
    tree: RootedTree = hl.tree
    parent: dict[MetaVertex, MetaVertex | None] = {}
    children: dict[MetaVertex, list[MetaVertex]] = {
        m: [] for m in range(len(hl.paths))
    }
    attach: dict[MetaVertex, Vertex] = {}
    for m, path in enumerate(hl.paths):
        head = path[0]
        up = tree.parent[head]
        if up is None:
            parent[m] = None
        else:
            pm = hl.path_of[up]
            parent[m] = pm
            children[pm].append(m)
            attach[m] = up
    depth: dict[MetaVertex, int] = {}

    def meta_depth(m: MetaVertex) -> int:
        d = depth.get(m)
        if d is None:
            p = parent[m]
            d = 1 if p is None else meta_depth(p) + 1
            depth[m] = d
        return d

    for m in parent:
        meta_depth(m)
    return MetaTree(
        hl=hl, parent=parent, children=children, attach=attach, depth=depth
    )
