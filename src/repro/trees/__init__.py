"""Section 3: rooting, heavy-light, meta tree, binarized paths,
generalized low-depth decomposition, and heavy-path RMQ."""

from .binarized import AlmostCompleteBinaryTree, BinarizedPath, binarize_path
from .heavy_light import HeavyLight, heavy_light_decomposition
from .low_depth import (
    LowDepthDecomposition,
    low_depth_decomposition,
    low_depth_decomposition_ampc,
)
from .meta_tree import MetaTree, build_meta_tree
from .rmq import TreePathAggregator
from .rooted import RootedTree, root_tree, root_tree_ampc
from .validate import (
    boundary_edges,
    check_definition_1,
    decomposition_forest_sequence,
    is_valid_decomposition,
    level_components,
)

__all__ = [
    "AlmostCompleteBinaryTree",
    "BinarizedPath",
    "HeavyLight",
    "LowDepthDecomposition",
    "MetaTree",
    "RootedTree",
    "TreePathAggregator",
    "binarize_path",
    "boundary_edges",
    "build_meta_tree",
    "check_definition_1",
    "decomposition_forest_sequence",
    "heavy_light_decomposition",
    "is_valid_decomposition",
    "level_components",
    "low_depth_decomposition",
    "low_depth_decomposition_ampc",
    "root_tree",
    "root_tree_ampc",
]
