"""Generalized low-depth tree decomposition (Section 3, Algorithm 2).

Definition 1: a labeling ``l : V(T) -> [h]`` with ``h = O(log^2 n)``
such that for every level ``i``, each connected component induced on
``T_i = {v : l(v) >= i}`` contains **at most one** vertex with label
``i``.  The construction (Lemma 7):

1. root the tree (Lemma 4);
2. heavy-light decompose it and contract heavy paths to the meta tree
   (Lemma 5);
3. replace each heavy path by its binarized path (Lemma 6), forming
   the *expanded meta tree* whose depth is ``O(log^2 n)``
   (Observation 6: ``O(log n)`` meta levels x ``O(log n)`` binarized
   depth);
4. label every original vertex with the expanded-meta-tree depth of
   its *anchor*: the highest binarized-path node whose right child has
   the vertex as its leftmost leaf-descendant (or the vertex's own
   leaf when no such node exists).

The AMPC cost is ``O(1/eps)`` rounds (Lemma 3); the genuinely-executed
round measurements come from the rooting/list-ranking primitives, the
rest is charged per Lemmas 5–7 (see the pipeline in
:func:`low_depth_decomposition_ampc`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..ampc import AMPCConfig, RoundLedger
from .binarized import BinarizedPath, binarize_path
from .heavy_light import HeavyLight, heavy_light_decomposition
from .meta_tree import MetaTree, build_meta_tree
from .rooted import RootedTree, root_tree, root_tree_ampc

Vertex = Hashable


@dataclass
class LowDepthDecomposition:
    """The labeling plus every intermediate structure (for inspection).

    ``label[v]`` is the level of ``v`` (1-based).  ``height`` is
    ``max(label)``; Definition 1 requires ``height = O(log^2 n)``.
    """

    tree: RootedTree
    hl: HeavyLight
    meta: MetaTree
    binarized: dict[int, BinarizedPath]
    offset: dict[int, int]
    label: dict[Vertex, int]

    @property
    def height(self) -> int:
        return max(self.label.values())

    def levels(self) -> dict[int, list[Vertex]]:
        """Level -> vertices with that label (the paper's ``L_i``)."""
        out: dict[int, list[Vertex]] = {}
        for v, l in self.label.items():
            out.setdefault(l, []).append(v)
        return out

    def expanded_leaf_depth(self, v: Vertex) -> int:
        """Depth of ``v``'s leaf in the expanded meta tree."""
        m = self.meta.meta_of(v)
        return self.offset[m] + self.binarized[m].leaf_depth(v)

    def height_bound(self) -> int:
        """The explicit ``O(log^2 n)`` envelope asserted by tests.

        Each meta level contributes at most ``floor(log2 n) + 1``
        binarized depth, and there are at most ``floor(log2 n) + 1``
        meta levels on any root path (Observation 1).
        """
        n = self.tree.num_vertices
        log = math.floor(math.log2(max(2, n))) + 1
        return log * log


def low_depth_decomposition(
    vertices: Sequence[Vertex],
    edges: Iterable[tuple[Vertex, Vertex]],
    *,
    root: Vertex | None = None,
    precomputed_tree: RootedTree | None = None,
) -> LowDepthDecomposition:
    """Algorithm 2 (host-side computation; see the AMPC variant below)."""
    tree = (
        precomputed_tree
        if precomputed_tree is not None
        else root_tree(vertices, edges, root=root)
    )
    return _decompose_from_tree(tree)


def low_depth_decomposition_ampc(
    vertices: Sequence[Vertex],
    edges: Iterable[tuple[Vertex, Vertex]],
    *,
    config: AMPCConfig | None = None,
    ledger: RoundLedger | None = None,
    root: Vertex | None = None,
) -> LowDepthDecomposition:
    """Algorithm 2 with AMPC round accounting (Lemma 3).

    Rooting runs genuinely on the simulator (measured rounds); the
    remaining steps charge the costs proven in Lemmas 5–7.
    """
    vertices = list(vertices)
    edge_list = list(edges)
    if config is None:
        config = AMPCConfig(n_input=max(1, len(vertices)))
    tree = root_tree_ampc(
        vertices, edge_list, config=config, ledger=ledger, root=root
    )
    decomp = _decompose_from_tree(tree)
    if ledger is not None:
        n = max(2, len(vertices))
        log2n = math.ceil(math.log2(n))
        ledger.charge(
            config.rounds_per_primitive,
            "Lemma 5: meta-tree construction via forest connectivity",
            local_peak=config.local_memory_words,
            total_peak=n * log2n * log2n,
        )
        ledger.charge(
            config.rounds_per_primitive,
            "Lemma 6: binarized-path construction + preorder mapping",
            local_peak=config.local_memory_words,
            total_peak=n * log2n,
        )
        ledger.charge(
            1,
            "Lemma 7: vertex labeling by adaptive root-path walks",
            local_peak=config.local_memory_words,
            total_peak=n * log2n * log2n,
        )
    return decomp


def _decompose_from_tree(tree: RootedTree) -> LowDepthDecomposition:
    hl = heavy_light_decomposition(tree)
    meta = build_meta_tree(hl)
    binarized: dict[int, BinarizedPath] = {
        m: binarize_path(path) for m, path in enumerate(hl.paths)
    }

    # Expanded-meta-tree depth offsets: the root of meta vertex m's
    # binarized tree hangs below the *leaf* of the attach vertex in the
    # parent meta vertex, so children start at that leaf's expanded depth.
    offset: dict[int, int] = {}

    def compute_offset(m: int) -> int:
        cached = offset.get(m)
        if cached is not None:
            return cached
        p = meta.parent[m]
        if p is None:
            val = 0
        else:
            attach = meta.attach[m]
            val = compute_offset(p) + binarized[p].leaf_depth(attach)
        offset[m] = val
        return val

    for m in meta.parent:
        compute_offset(m)

    label: dict[Vertex, int] = {}
    for m, bp in binarized.items():
        base = offset[m]
        for v in bp.path:
            label[v] = base + bp.anchor_depth(v)

    return LowDepthDecomposition(
        tree=tree,
        hl=hl,
        meta=meta,
        binarized=binarized,
        offset=offset,
        label=label,
    )
