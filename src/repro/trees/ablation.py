"""Ablations of Section 3's design choices (for the ablation benches).

The paper's decomposition makes two structural moves whose value the
ablation experiments quantify:

* **binarized paths** — replacing each heavy path by an almost complete
  binary tree.  :func:`low_depth_decomposition_no_binarization` labels
  heavy-path vertices by their *position* instead: still a valid
  Definition-1 decomposition (each prefix of a path has a unique
  minimum position), but a single heavy path of length L now spends L
  levels instead of ``log2 L`` — heights degrade from ``O(log^2 n)`` to
  ``Theta(n)`` on paths, which is exactly why Definition 5 exists.

* **the decomposition itself** —
  :func:`low_depth_decomposition_bfs_depth` labels by plain tree depth.
  That labeling is *always* Definition-1-valid (each ``T_i`` component
  is a subtree rooted at a single depth-``i`` vertex), which shows that
  validity alone is trivial; its height equals the tree height,
  ``Theta(n)`` on paths, which is what the heavy-light + binarized
  construction exists to beat.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from .heavy_light import heavy_light_decomposition
from .low_depth import LowDepthDecomposition
from .meta_tree import build_meta_tree
from .rooted import RootedTree, root_tree

Vertex = Hashable


def low_depth_decomposition_no_binarization(
    vertices: Sequence[Vertex],
    edges: Iterable[tuple[Vertex, Vertex]],
    *,
    root: Vertex | None = None,
) -> dict[Vertex, int]:
    """Ablated Algorithm 2: heavy paths labelled by position, not tree.

    Returns the labeling only (no binarized structures exist).  Valid
    per Definition 1, but with height ``Theta(n)`` on path-like trees.
    """
    tree = root_tree(vertices, edges, root=root)
    hl = heavy_light_decomposition(tree)
    meta = build_meta_tree(hl)

    # Offset of a meta vertex = label budget consumed by its ancestors;
    # inside a heavy path, vertex i (top-down) gets offset + i + 1.
    offset: dict[int, int] = {}

    def compute_offset(m: int) -> int:
        cached = offset.get(m)
        if cached is not None:
            return cached
        p = meta.parent[m]
        if p is None:
            val = 0
        else:
            attach = meta.attach[m]
            # children hang below the attach vertex's own label position
            val = compute_offset(p) + hl.position[attach] + 1
        offset[m] = val
        return val

    label: dict[Vertex, int] = {}
    for m, path in enumerate(hl.paths):
        base = compute_offset(m)
        for i, v in enumerate(path):
            label[v] = base + i + 1
    return label


def low_depth_decomposition_bfs_depth(
    vertices: Sequence[Vertex],
    edges: Iterable[tuple[Vertex, Vertex]],
    *,
    root: Vertex | None = None,
) -> dict[Vertex, int]:
    """Strawman labeling: plain tree depth.

    *Always* satisfies Definition 1 — removing vertices of label < i
    leaves subtrees each rooted at exactly one depth-``i`` vertex (the
    paper notes this: "it is always true that at each level, each
    connected component contains at most one vertex at the next
    level").  Validity is the easy part; the height equals the tree
    height, i.e. ``Theta(n)`` on paths — the whole point of Section 3
    is beating that to ``O(log^2 n)``.
    """
    tree = root_tree(vertices, edges, root=root)
    return dict(tree.depth)


def naive_height(label: dict[Vertex, int]) -> int:
    return max(label.values())
