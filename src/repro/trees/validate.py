"""Definition-1 validity checking and decomposition forests.

The check: for every level ``i``, the components induced on
``T_i = {v : label(v) >= i}`` must each contain at most one vertex of
label ``i``.  Also exposes :func:`level_components` (the ``T_i``
component structure) and :func:`boundary_edges` (Lemma 10: each
component of ``T_i`` has at most two tree edges to ``V \\ T_i``), which
Section 4's ``ldr_time`` computation consumes.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..graph.dsu import DSU
from .low_depth import LowDepthDecomposition
from .rooted import RootedTree

Vertex = Hashable


def check_definition_1(
    tree: RootedTree, label: dict[Vertex, int]
) -> None:
    """Raise ``ValueError`` if the labeling violates Definition 1."""
    if set(label) != set(tree.parent):
        raise ValueError("labeling must cover exactly the vertex set")
    levels = sorted(set(label.values()))
    for i in levels:
        comps = level_components(tree, label, i)
        for comp in comps:
            hits = [v for v in comp if label[v] == i]
            if len(hits) > 1:
                raise ValueError(
                    f"level {i}: component with {len(hits)} vertices of "
                    f"label {i}: {hits[:5]!r}..."
                )


def is_valid_decomposition(tree: RootedTree, label: dict[Vertex, int]) -> bool:
    try:
        check_definition_1(tree, label)
    except ValueError:
        return False
    return True


def level_components(
    tree: RootedTree, label: dict[Vertex, int], i: int
) -> list[list[Vertex]]:
    """Connected components of ``T_i = {v : label(v) >= i}``."""
    keep = {v for v, l in label.items() if l >= i}
    dsu = DSU(keep)
    for child, parent in tree.edges():
        if child in keep and parent in keep:
            dsu.union(child, parent)
    return list(dsu.groups().values())


def boundary_edges(
    tree: RootedTree,
    label: dict[Vertex, int],
    component: Iterable[Vertex],
    i: int,
) -> list[tuple[Vertex, Vertex]]:
    """Tree edges from a ``T_i`` component to vertices of label ``< i``.

    Lemma 10 asserts there are at most two; tests verify.  Returned as
    ``(inside, outside)`` pairs.
    """
    comp = set(component)
    out: list[tuple[Vertex, Vertex]] = []
    for v in comp:
        p = tree.parent[v]
        if p is not None and p not in comp and label[p] < i:
            out.append((v, p))
        for c in tree.children[v]:
            if c not in comp and label[c] < i:
                out.append((v, c))
    return out


def decomposition_forest_sequence(
    decomp: LowDepthDecomposition,
) -> list[list[list[Vertex]]]:
    """The splitting process: components of ``T_1, T_2, ..., T_h``.

    ``T_1`` is the whole tree; as ``i`` grows, removing lower-label
    vertices splits the forest until only isolated vertices remain —
    the process Section 3's prose describes.
    """
    return [
        level_components(decomp.tree, decomp.label, i)
        for i in range(1, decomp.height + 1)
    ]
