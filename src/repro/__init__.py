"""repro — Adaptive Massively Parallel Algorithms for Cut Problems.

A reproduction of Hajiaghayi, Knittel, Olkowski & Saleh (SPAA 2022,
arXiv:2205.14101): an executable AMPC model with exact round/memory
accounting, the paper's ``O(log log n)``-round ``(2+eps)``-approximate
Min Cut (Algorithm 1), the exact smallest-singleton-cut tracker
(Algorithm 3 / Theorem 3), the generalized low-depth tree decomposition
(Section 3), the ``(4+eps)``-approximate Min k-Cut (Algorithm 4 /
Theorem 2), and every baseline the paper builds on.

Quickstart::

    from repro import Graph, ampc_min_cut
    from repro.workloads import planted_cut

    instance = planted_cut(256, seed=1)
    result = ampc_min_cut(instance.graph, seed=1)
    print(result.weight, "in", result.ledger.rounds, "AMPC rounds")

Long-lived serving (registry + parallel trials + Gomory–Hu cache +
in-place graph mutation)::

    from repro import CutService

    with CutService(workers=4) as svc:
        svc.register("g", instance.graph)
        print(svc.mincut("g", seed=1)["weight"])   # computed
        print(svc.mincut("g", seed=1)["cached"])   # True — LRU hit
        svc.mutate("g", adds=[[0, 9, 2.0]])        # edge delta, in place
        print(svc.mincut("g", seed=1)["cached"])   # False — recomputed

See README.md for the quickstarts, ``docs/ARCHITECTURE.md`` for the
subsystem map and request lifecycle, and ``docs/HTTP_API.md`` for the
wire contract; ``repro-cut experiments`` regenerates EXPERIMENTS.md,
the claimed-vs-measured record.
"""

from .ampc import AMPCConfig, RoundLedger
from .core import (
    KCutResult,
    MinCutResult,
    SingletonCutResult,
    ampc_min_cut,
    ampc_min_cut_boosted,
    apx_split_kcut,
    draw_contraction_keys,
    smallest_singleton_cut,
)
from .graph import Cut, Graph, KCut
from .preprocess import CutKernel, kernelize, solve_min_cut
from .service import CutOracle, CutService, GraphDelta, GraphStore, TrialExecutor
from .trees import LowDepthDecomposition, low_depth_decomposition

__version__ = "1.2.0"

__all__ = [
    "AMPCConfig",
    "Cut",
    "CutKernel",
    "CutOracle",
    "CutService",
    "Graph",
    "GraphDelta",
    "GraphStore",
    "KCut",
    "KCutResult",
    "LowDepthDecomposition",
    "MinCutResult",
    "RoundLedger",
    "SingletonCutResult",
    "TrialExecutor",
    "__version__",
    "ampc_min_cut",
    "ampc_min_cut_boosted",
    "apx_split_kcut",
    "draw_contraction_keys",
    "kernelize",
    "low_depth_decomposition",
    "smallest_singleton_cut",
    "solve_min_cut",
]
