"""VieCut-family instance generators.

"Practical Minimum Cut Algorithms" (Henzinger, Noe, Schulz, Strash —
the VieCut line, PAPERS.md) benchmarks on three recurring shapes:
clustered community graphs whose min cut separates a cluster,
near-regular expanders where the min cut is a near-singleton degree
cut, and planted instances with a deliberately unbalanced light cut.
These generators reproduce those shapes at configurable scale so the
serving tier's quality and speed claims run on literature-shaped
inputs (loadgen ``--corpus viecut`` and ``tests/cutcorpus.py``).

All generators are deterministic in ``seed`` — same seed, same edge
rows, same graph fingerprint — which is what lets the seeded
determinism tests pin them and the differential suites replay them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph import Graph
from .generators import PlantedCutInstance


@dataclass(frozen=True)
class ClusteredInstance:
    """A community graph with its generating cluster partition."""

    graph: Graph
    clusters: tuple[frozenset, ...]


def clustered_community(
    n: int,
    *,
    clusters: int = 4,
    intra_p: float = 0.6,
    intra_weight: float = 4.0,
    inter_edges: int = 2,
    inter_weight: float = 1.0,
    seed: int = 0,
) -> ClusteredInstance:
    """Dense clusters in a lightly-connected ring (VieCut's GSH-like web
    / community regime).

    Vertices split into ``clusters`` near-equal groups; each group gets
    a Hamiltonian cycle (connectivity) plus each remaining pair with
    probability ``intra_p``, all at ``intra_weight``.  Consecutive
    clusters on the ring are joined by ``inter_edges`` light edges, so
    the sparsest and minimum cuts both separate cluster subsets.
    """
    if clusters < 2:
        raise ValueError("clustered_community needs clusters >= 2")
    if n < 2 * clusters:
        raise ValueError("clustered_community needs n >= 2 * clusters")
    rng = random.Random(seed)
    bounds = [round(c * n / clusters) for c in range(clusters + 1)]
    groups = [list(range(bounds[c], bounds[c + 1])) for c in range(clusters)]
    g = Graph(vertices=range(n))
    for members in groups:
        size = len(members)
        for i in range(size):
            g.add_edge(members[i], members[(i + 1) % size], intra_weight)
        for i in range(size):
            for j in range(i + 1, size):
                u, v = members[i], members[j]
                if not g.has_edge(u, v) and rng.random() < intra_p:
                    g.add_edge(u, v, intra_weight)
    for c in range(clusters):
        a, b = groups[c], groups[(c + 1) % clusters]
        for _ in range(inter_edges):
            g.add_edge(rng.choice(a), rng.choice(b), inter_weight)
    return ClusteredInstance(
        graph=g, clusters=tuple(frozenset(members) for members in groups)
    )


def near_regular_expander(
    n: int,
    degree: int = 4,
    *,
    weight: float = 1.0,
    seed: int = 0,
) -> Graph:
    """A near-``degree``-regular expander: one Hamiltonian cycle plus
    ``degree - 2`` rounds of random perfect-matching edges.

    The cycle guarantees connectivity; the matchings keep the degree
    spread tight (every vertex gains at most one edge per round), which
    is the regime where VieCut's exact routines do the most work —
    the min cut is a degree cut, not a community split.
    """
    if n < 4:
        raise ValueError("near_regular_expander needs n >= 4")
    if degree < 2:
        raise ValueError("near_regular_expander needs degree >= 2")
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weight)
    for _ in range(max(0, degree - 2)):
        order = list(range(n))
        rng.shuffle(order)
        for i in range(0, n - 1, 2):
            u, v = order[i], order[i + 1]
            if not g.has_edge(u, v):
                g.add_edge(u, v, weight)
    return g


def planted_viecut(
    n: int,
    *,
    small_side: int | None = None,
    cross_edges: int = 2,
    cross_weight: float = 1.0,
    inner_weight: float = 4.0,
    inner_degree: int = 5,
    seed: int = 0,
) -> PlantedCutInstance:
    """An unbalanced planted cut (VieCut's hard regime: a small, light
    community hiding inside a big dense one).

    The small side holds ``small_side`` vertices (default ``n // 6``,
    at least 2) wired as a heavy clique; the big side is a heavy
    random near-regular graph; ``cross_edges`` light edges join them.
    The planted cut is the small side, and the defaults keep it the
    unique minimum.
    """
    if n < 6:
        raise ValueError("planted_viecut needs n >= 6")
    small = small_side if small_side is not None else max(2, n // 6)
    if not 2 <= small <= n - 2:
        raise ValueError("small_side must leave >= 2 vertices each side")
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for i in range(small):  # heavy clique on the small side
        for j in range(i + 1, small):
            g.add_edge(i, j, inner_weight)
    big = list(range(small, n))
    size = len(big)
    for i in range(size):
        g.add_edge(big[i], big[(i + 1) % size], inner_weight)
    extra = max(0, (inner_degree - 2) * size // 2)
    for _ in range(extra):
        u, v = rng.choice(big), rng.choice(big)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, inner_weight)
    for _ in range(cross_edges):
        g.add_edge(rng.randrange(0, small), rng.choice(big), cross_weight)
    side = frozenset(range(small))
    return PlantedCutInstance(
        graph=g, planted_side=side, planted_weight=g.cut_weight(side)
    )
