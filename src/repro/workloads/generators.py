"""Graph workload generators for the experiments.

Each generator documents which experiment(s) it serves (see DESIGN.md
experiment index).  Planted instances return both the graph and the
planted optimum so approximation ratios can be computed without an
exact solver on large inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph import Graph


@dataclass(frozen=True)
class PlantedCutInstance:
    """A graph with a planted minimum cut of known weight and side."""

    graph: Graph
    planted_side: frozenset
    planted_weight: float


@dataclass(frozen=True)
class PlantedKCutInstance:
    """A graph with a planted k-way partition of known crossing weight."""

    graph: Graph
    parts: tuple[frozenset, ...]
    planted_weight: float


def planted_cut(
    n: int,
    *,
    cross_edges: int = 3,
    inner_degree: int = 6,
    cross_weight: float = 1.0,
    inner_weight: float = 4.0,
    seed: int = 0,
) -> PlantedCutInstance:
    """Two dense communities joined by a few light edges (E1/E2 workload).

    Each half is wired as a random ``inner_degree``-regular-ish graph of
    heavy edges plus a Hamiltonian cycle (guaranteeing connectivity);
    ``cross_edges`` light edges join the halves.  The planted cut is the
    bipartition, with weight ``cross_edges * cross_weight``; parameters
    default to a regime where it is the unique minimum cut.
    """
    if n < 4:
        raise ValueError("planted_cut needs n >= 4")
    rng = random.Random(seed)
    half = n // 2
    g = Graph(vertices=range(n))
    for lo, hi in ((0, half), (half, n)):
        size = hi - lo
        for i in range(size):  # connectivity cycle
            g.add_edge(lo + i, lo + (i + 1) % size, inner_weight)
        extra = max(0, (inner_degree - 2) * size // 2)
        for _ in range(extra):
            u = rng.randrange(lo, hi)
            v = rng.randrange(lo, hi)
            if u != v:
                g.add_edge(u, v, inner_weight)
    for _ in range(cross_edges):
        u = rng.randrange(0, half)
        v = rng.randrange(half, n)
        g.add_edge(u, v, cross_weight)
    side = frozenset(range(half))
    return PlantedCutInstance(
        graph=g, planted_side=side, planted_weight=g.cut_weight(side)
    )


def planted_kcut(
    n: int,
    k: int,
    *,
    cross_edges_per_pair: int = 2,
    inner_weight: float = 5.0,
    cross_weight: float = 1.0,
    seed: int = 0,
) -> PlantedKCutInstance:
    """``k`` dense communities sparsely interconnected (E5 workload)."""
    if k < 2 or n < 2 * k:
        raise ValueError("need k >= 2 and n >= 2k")
    rng = random.Random(seed)
    bounds = [round(i * n / k) for i in range(k + 1)]
    g = Graph(vertices=range(n))
    parts = []
    for p in range(k):
        lo, hi = bounds[p], bounds[p + 1]
        size = hi - lo
        for i in range(size):
            g.add_edge(lo + i, lo + (i + 1) % size, inner_weight)
        for _ in range(size):
            u, v = rng.randrange(lo, hi), rng.randrange(lo, hi)
            if u != v:
                g.add_edge(u, v, inner_weight)
        parts.append(frozenset(range(lo, hi)))
    for p in range(k):
        for q in range(p + 1, k):
            for _ in range(cross_edges_per_pair):
                u = rng.randrange(bounds[p], bounds[p + 1])
                v = rng.randrange(bounds[q], bounds[q + 1])
                g.add_edge(u, v, cross_weight)
    return PlantedKCutInstance(
        graph=g,
        parts=tuple(parts),
        planted_weight=g.partition_cut_weight(parts),
    )


def erdos_renyi(n: int, p: float, *, weighted: bool = False, seed: int = 0) -> Graph:
    """G(n, p) conditioned on connectivity (edges added until connected)."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                w = rng.randint(1, 10) if weighted else 1.0
                g.add_edge(u, v, w)
    # Stitch components together so cut problems are non-degenerate.
    comps = g.components()
    for a, b in zip(comps, comps[1:]):
        w = rng.randint(1, 10) if weighted else 1.0
        g.add_edge(a[0], b[0], w)
    return g


def random_regular_ish(n: int, d: int, *, seed: int = 0) -> Graph:
    """Connected graph with (almost) uniform degree ``d`` (E2 workload).

    A union of ``d // 2`` random Hamiltonian cycles — every vertex gets
    degree ``2 * (d // 2)``; collisions are resolved by weight merging,
    so degrees can dip slightly below on small n.
    """
    if d < 2:
        raise ValueError("d must be >= 2")
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for _ in range(d // 2):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(n):
            u, v = perm[i], perm[(i + 1) % n]
            if u != v:
                g.add_edge(u, v, 1.0)
    return g


def cycle(n: int, *, weight: float = 1.0) -> Graph:
    """Single n-cycle: min cut = 2*weight, attained by every arc pair.

    The 1-vs-2-cycle workload of the MPC lower-bound conjecture the
    paper's introduction discusses (E1/E7 workload).
    """
    g = Graph(vertices=range(n))
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weight)
    return g


def two_cycles(n: int, *, weight: float = 1.0) -> Graph:
    """Two disjoint cycles of n/2 vertices each (1-vs-2-cycle instance)."""
    if n < 6 or n % 2:
        raise ValueError("need even n >= 6")
    half = n // 2
    g = Graph(vertices=range(n))
    for i in range(half):
        g.add_edge(i, (i + 1) % half, weight)
        g.add_edge(half + i, half + (i + 1) % half, weight)
    return g


def wheel(n: int, *, rim_weight: float = 1.0, spoke_weight: float = 1.0) -> Graph:
    """Wheel graph: hub 0 connected to an (n-1)-cycle rim."""
    if n < 4:
        raise ValueError("wheel needs n >= 4")
    g = Graph(vertices=range(n))
    rim = n - 1
    for i in range(1, n):
        g.add_edge(0, i, spoke_weight)
        g.add_edge(i, 1 + (i % rim), rim_weight)
    return g


def grid(rows: int, cols: int, *, weight: float = 1.0) -> Graph:
    """``rows x cols`` grid graph; min cut = min(rows, cols) * weight-ish."""
    g = Graph(vertices=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1, weight)
            if r + 1 < rows:
                g.add_edge(v, v + cols, weight)
    return g


def barbell(n: int, *, bridge_weight: float = 1.0, seed: int = 0) -> PlantedCutInstance:
    """Two cliques joined by a single bridge — the extreme planted cut."""
    if n < 6 or n % 2:
        raise ValueError("need even n >= 6")
    half = n // 2
    g = Graph(vertices=range(n))
    for lo, hi in ((0, half), (half, n)):
        for u in range(lo, hi):
            for v in range(u + 1, hi):
                g.add_edge(u, v, 1.0)
    g.add_edge(0, half, bridge_weight)
    side = frozenset(range(half))
    return PlantedCutInstance(
        graph=g, planted_side=side, planted_weight=bridge_weight
    )


def power_law(n: int, *, exponent: float = 2.5, seed: int = 0) -> Graph:
    """Connected preferential-attachment-flavoured graph (skewed degrees)."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    targets = [0]
    for v in range(1, n):
        u = targets[rng.randrange(len(targets))]
        g.add_edge(v, u, 1.0)
        targets.extend([v, u])
        # occasional extra edge for cycles
        if v > 2 and rng.random() < 0.3:
            u2 = targets[rng.randrange(len(targets))]
            if u2 != v and not g.has_edge(v, u2):
                g.add_edge(v, u2, 1.0)
    return g


def leaf_spine(
    spines: int = 4,
    leaves: int = 8,
    *,
    uplink: float = 40.0,
    degraded_leaf: int | None = None,
    degraded_factor: float = 0.1,
) -> Graph:
    """A two-tier leaf–spine datacenter fabric (weighted, bipartite-ish).

    Every leaf connects to every spine with ``uplink`` capacity;
    ``degraded_leaf`` (if given) has its uplinks scaled by
    ``degraded_factor`` — planting a known bisection bottleneck, the
    workload of the network-reliability example and the paper's
    "massive systems" motivation.  Vertices are ``("spine", i)`` and
    ``("leaf", j)``.
    """
    if spines < 1 or leaves < 1:
        raise ValueError("need at least one spine and one leaf")
    if degraded_leaf is not None and not 0 <= degraded_leaf < leaves:
        raise ValueError("degraded_leaf out of range")
    if not 0 < degraded_factor <= 1.0:
        raise ValueError("degraded_factor must be in (0, 1]")
    g = Graph()
    for j in range(leaves):
        scale = (
            degraded_factor
            if degraded_leaf is not None and j == degraded_leaf
            else 1.0
        )
        for i in range(spines):
            g.add_edge(("leaf", j), ("spine", i), uplink * scale)
    return g
