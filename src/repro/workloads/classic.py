"""Classic small real-world graphs (embedded, public domain).

The synthetic generators in :mod:`repro.workloads.generators` have
*planted* structure with known optima; these two datasets are the
standard sanity check that the algorithms behave on graphs nobody
planted:

* :func:`karate_club` — Zachary's karate club (1977): 34 members, 78
  friendship edges, and the famous observed fission into the factions
  of the instructor (vertex 1) and the administrator (vertex 34).
  The k-cut examples/benches test whether cheap cuts align with the
  documented split.
* :func:`dolphins` — a **reconstruction** of Lusseau's Doubtful
  Sound bottlenose dolphin social network (2003).  This copy has 61
  dolphins and 157 ties (the published network has 62/159; two ties
  and one peripheral animal are missing), so treat it as "a realistic
  unplanted social network with the dolphin topology", not as the
  verbatim dataset.  Its two-community structure is intact.

The karate edge list is reproduced verbatim from the published dataset
(34 members, 78 ties, original 1-based ids) — the faction split and
its 10-edge cut check out exactly.  Weights are uniform 1.0 — the
published networks are unweighted.
"""

from __future__ import annotations

from ..graph import Graph

# Zachary, W. W. (1977). An information flow model for conflict and
# fission in small groups. Journal of Anthropological Research 33.
_KARATE_EDGES = [
    (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 8), (1, 9),
    (1, 11), (1, 12), (1, 13), (1, 14), (1, 18), (1, 20), (1, 22),
    (1, 32), (2, 3), (2, 4), (2, 8), (2, 14), (2, 18), (2, 20), (2, 22),
    (2, 31), (3, 4), (3, 8), (3, 9), (3, 10), (3, 14), (3, 28), (3, 29),
    (3, 33), (4, 8), (4, 13), (4, 14), (5, 7), (5, 11), (6, 7), (6, 11),
    (6, 17), (7, 17), (9, 31), (9, 33), (9, 34), (10, 34), (14, 34),
    (15, 33), (15, 34), (16, 33), (16, 34), (19, 33), (19, 34), (20, 34),
    (21, 33), (21, 34), (23, 33), (23, 34), (24, 26), (24, 28), (24, 30),
    (24, 33), (24, 34), (25, 26), (25, 28), (25, 32), (26, 32), (27, 30),
    (27, 34), (28, 34), (29, 32), (29, 34), (30, 33), (30, 34), (31, 33),
    (31, 34), (32, 33), (32, 34), (33, 34),
]

#: The fission observed by Zachary: the instructor's faction (vertex 1).
KARATE_INSTRUCTOR_FACTION = frozenset(
    {1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13, 14, 17, 18, 20, 22}
)

# Lusseau, D. et al. (2003). The bottlenose dolphin community of
# Doubtful Sound. Behavioral Ecology and Sociobiology 54.
_DOLPHIN_EDGES = [
    (10, 0), (14, 0), (15, 0), (40, 0), (42, 0), (47, 0), (17, 1),
    (19, 1), (26, 1), (27, 1), (28, 1), (36, 1), (41, 1), (54, 1),
    (10, 2), (42, 2), (44, 2), (61, 2), (8, 3), (14, 3), (59, 3),
    (51, 4), (9, 5), (13, 5), (56, 5), (57, 5), (9, 6), (13, 6),
    (17, 6), (54, 6), (56, 6), (57, 6), (19, 7), (27, 7), (30, 7),
    (40, 7), (54, 7), (20, 8), (28, 8), (37, 8), (45, 8), (59, 8),
    (13, 9), (17, 9), (32, 9), (41, 9), (57, 9), (29, 10), (42, 10),
    (47, 10), (51, 11), (33, 12), (17, 13), (32, 13), (41, 13),
    (54, 13), (57, 13), (16, 14), (24, 14), (33, 14), (34, 14),
    (37, 14), (38, 14), (40, 14), (43, 14), (50, 14), (52, 14),
    (18, 15), (24, 15), (40, 15), (45, 15), (55, 15), (59, 15),
    (20, 16), (33, 16), (37, 16), (38, 16), (50, 16), (22, 17),
    (25, 17), (27, 17), (31, 17), (57, 17), (20, 18), (21, 18),
    (24, 18), (29, 18), (45, 18), (51, 18), (30, 19), (54, 19),
    (28, 20), (36, 20), (38, 20), (44, 20), (47, 20), (50, 20),
    (29, 21), (33, 21), (37, 21), (45, 21), (51, 21), (36, 23),
    (45, 23), (51, 23), (29, 24), (45, 24), (51, 24), (26, 25),
    (27, 25), (27, 26), (31, 30), (42, 30), (47, 30), (60, 32),
    (34, 33), (37, 33), (38, 33), (40, 33), (43, 33), (50, 33),
    (37, 34), (44, 34), (49, 34), (37, 36), (39, 36), (40, 36),
    (59, 36), (40, 37), (43, 37), (45, 37), (61, 37), (43, 38),
    (44, 38), (52, 38), (58, 38), (57, 39), (52, 40), (54, 41),
    (57, 41), (47, 42), (50, 42), (46, 43), (53, 43), (50, 44),
    (46, 44), (50, 46), (51, 46), (59, 48), (57, 49), (51, 50),
    (55, 51), (61, 53), (57, 54), (58, 55), (59, 57), (61, 57),
]


def karate_club() -> Graph:
    """Zachary's karate club (n=34, m=78, unweighted)."""
    return Graph(edges=[(u, v, 1.0) for u, v in _KARATE_EDGES])


def karate_factions() -> tuple[frozenset, frozenset]:
    """The two factions after the club's documented split."""
    g = karate_club()
    instructor = KARATE_INSTRUCTOR_FACTION
    administrator = frozenset(g.vertices()) - instructor
    return instructor, administrator


def dolphins() -> Graph:
    """Dolphin social network reconstruction (n=61, m=157, connected)."""
    return Graph(edges=[(u, v, 1.0) for u, v in _DOLPHIN_EDGES])
