"""Workload generators and classic datasets for experiments and examples."""

from .classic import (
    KARATE_INSTRUCTOR_FACTION,
    dolphins,
    karate_club,
    karate_factions,
)
from .generators import (
    PlantedCutInstance,
    PlantedKCutInstance,
    barbell,
    cycle,
    erdos_renyi,
    grid,
    leaf_spine,
    planted_cut,
    planted_kcut,
    power_law,
    random_regular_ish,
    two_cycles,
    wheel,
)
from .trees import (
    balanced_binary,
    broom,
    caterpillar,
    paper_figure1_tree,
    path_tree,
    random_tree,
    star_tree,
)
from .viecut import (
    ClusteredInstance,
    clustered_community,
    near_regular_expander,
    planted_viecut,
)

__all__ = [
    "KARATE_INSTRUCTOR_FACTION",
    "ClusteredInstance",
    "PlantedCutInstance",
    "PlantedKCutInstance",
    "balanced_binary",
    "barbell",
    "broom",
    "caterpillar",
    "clustered_community",
    "cycle",
    "dolphins",
    "erdos_renyi",
    "grid",
    "karate_club",
    "leaf_spine",
    "karate_factions",
    "near_regular_expander",
    "paper_figure1_tree",
    "path_tree",
    "planted_cut",
    "planted_kcut",
    "planted_viecut",
    "power_law",
    "random_regular_ish",
    "random_tree",
    "star_tree",
    "two_cycles",
    "wheel",
]
