"""Tree generators for the decomposition experiments (E4).

The generalized low-depth decomposition's interesting regimes:

* **paths** — one giant heavy path; the binarized-path machinery does
  all the work and height should be ``~ log2 n``;
* **stars** — all light edges; height stays O(1) per meta level;
* **caterpillars / brooms** — mixtures exercising the interaction of
  heavy paths with light leaves;
* **balanced binary trees** — every root-to-leaf path alternates heavy
  and light edges, the ``O(log^2 n)`` regime;
* **random recursive trees** — the average case.

All return ``(vertices, edges)`` pairs with integer vertices.
"""

from __future__ import annotations

import random

TreeSpec = tuple[list[int], list[tuple[int, int]]]


def path_tree(n: int) -> TreeSpec:
    """A path 0-1-2-...-(n-1)."""
    if n < 1:
        raise ValueError("need n >= 1")
    return list(range(n)), [(i, i + 1) for i in range(n - 1)]


def star_tree(n: int) -> TreeSpec:
    """A star with hub 0."""
    if n < 1:
        raise ValueError("need n >= 1")
    return list(range(n)), [(0, i) for i in range(1, n)]


def caterpillar(n: int, *, legs_every: int = 2) -> TreeSpec:
    """A spine path with a leaf hung off every ``legs_every``-th vertex."""
    if n < 2:
        raise ValueError("need n >= 2")
    spine_len = max(2, n // 2)
    vertices = [0]
    edges = []
    for i in range(1, spine_len):
        vertices.append(i)
        edges.append((i - 1, i))
    nxt = spine_len
    i = 0
    while nxt < n:
        if i % legs_every == 0:
            edges.append((i % spine_len, nxt))
            vertices.append(nxt)
            nxt += 1
        i += 1
    return vertices, edges


def broom(n: int) -> TreeSpec:
    """A path of n/2 vertices ending in a star of n/2 leaves."""
    if n < 4:
        raise ValueError("need n >= 4")
    half = n // 2
    vertices = list(range(n))
    edges = [(i, i + 1) for i in range(half - 1)]
    edges += [(half - 1, j) for j in range(half, n)]
    return vertices, edges


def balanced_binary(depth: int) -> TreeSpec:
    """Complete binary tree of the given depth (root = 0)."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    n = 2 ** (depth + 1) - 1
    vertices = list(range(n))
    edges = [(v, (v - 1) // 2) for v in range(1, n)]
    return vertices, edges


def random_tree(n: int, *, seed: int = 0, attach_bias: float = 0.0) -> TreeSpec:
    """Random recursive tree; ``attach_bias > 0`` skews towards recency
    (longer paths), ``< 0`` towards the root (bushier)."""
    if n < 1:
        raise ValueError("need n >= 1")
    rng = random.Random(seed)
    vertices = list(range(n))
    edges = []
    for v in range(1, n):
        if attach_bias > 0 and rng.random() < attach_bias:
            u = v - 1
        elif attach_bias < 0 and rng.random() < -attach_bias:
            u = 0
        else:
            u = rng.randrange(v)
        edges.append((u, v))
    return vertices, edges


def paper_figure1_tree() -> TreeSpec:
    """The example tree of the paper's Figures 1–2 (reverse-engineered).

    Figure 1 shows a tree whose heavy-light decomposition produces the
    heavy paths contracted into the ten meta-vertices of Figure 2.  The
    exact instance is not fully specified by the figure; this tree is
    chosen so that its heavy-light decomposition has the same *shape*:
    a main heavy path from the root, two branching heavy paths, and
    isolated light leaves — ten meta-vertices in total.  Used by the
    Figure-1/2 reproduction (analysis.figures) and its tests.
    """
    # Root 0 with a long heavy spine; side branches sized so the spine
    # stays heavy at every junction.  Ten heavy paths in total, matching
    # Figure 2's ten meta vertices.
    edges = [
        (0, 1),  # spine
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (1, 6),  # light branch -> small heavy path
        (6, 7),
        (2, 8),  # light leaf
        (3, 9),  # light branch -> heavy path of two
        (9, 10),
        (10, 11),
        (6, 12),  # light leaf off the branch
        (4, 13),  # light leaf
        (9, 14),  # light leaf
        (2, 15),  # light leaves padding the meta-vertex count to ten
        (3, 16),
        (9, 17),
    ]
    vertices = sorted({v for e in edges for v in e})
    return vertices, edges
