"""Serving frontend: admission control, query coalescing, sharded dispatch.

The HTTP layer (:mod:`repro.service.http`) is a thread-per-connection
stdlib server; before this module every accepted connection went
straight at the :class:`~repro.service.service.CutService`, so a burst
of queries became an unbounded thread pile-up.  The
:class:`Frontend` sits between the wire and the service and adds the
three scalability mechanisms the ROADMAP's "async, sharded serving
tier" item calls for:

* **Admission control** — a bounded in-flight window plus a bounded
  wait queue (:class:`AdmissionGate`).  A request that cannot get a
  slot within ``queue_timeout_s`` (or that finds the wait queue full)
  is *shed* with HTTP 429 and a ``Retry-After`` hint instead of piling
  onto the service.  Time spent waiting is traced as a ``queue.wait``
  span and recorded in the ``frontend.queue_wait_s`` histogram.

* **Query coalescing** — identical in-flight read queries (same graph
  *fingerprint*, op, params and seed) share one computation: the first
  request becomes the *leader* and actually dispatches; followers park
  on the leader's flight and fan its result out
  (``frontend.coalesced_hits``).  Keyed by fingerprint, not name, so a
  mutation between two arrivals correctly splits them into separate
  flights.  Only pure read ops coalesce (``mincut``, ``kcut``,
  ``stcut``, ``kernelize``); mutations and registrations never do.

* **Sharding** — :class:`ShardPool` partitions the
  :class:`~repro.service.store.GraphStore` (and with it kernels,
  Gomory–Hu oracles and result caches) across worker *processes* by
  graph fingerprint via a consistent-hash ring (:class:`HashRing`), so
  resident state scales horizontally and CPU-bound cut queries for
  different graphs run on different cores.  Each dispatch is traced as
  a ``shard.dispatch`` span; requests for one shard are serialised so
  answers stay bit-identical to the single-process service (proven by
  the differential harness in ``tests/test_frontend.py``).

Both backends expose the same ``dispatch(op, body) -> (status,
payload)`` surface, so the HTTP handler is identical in inline and
sharded mode, and the differential harness can drive both through real
sockets.  :func:`make_frontend` is the single constructor the server
and CLI use.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import multiprocessing
import signal
import threading
import time
from dataclasses import dataclass

from ..graph import Graph, load_any
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from .deltas import FingerprintMismatch
from .service import CutService

#: Pure read ops — safe to coalesce because identical inputs (same
#: graph fingerprint + params + seed) are deterministic and have no
#: side effects beyond cache warming.
COALESCABLE_OPS = frozenset(
    {"mincut", "kcut", "stcut", "gomoryhu", "sparsestcut", "kernelize"}
)

#: Ops routed by the ``graph`` field of their body.
GRAPH_OPS = frozenset(
    {"mincut", "kcut", "stcut", "gomoryhu", "sparsestcut", "mutate",
     "kernelize", "evict"}
)


class Overloaded(Exception):
    """Raised by :class:`AdmissionGate` when a request must be shed."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


# ----------------------------------------------------------------------
# Dispatch: op name + JSON body -> CutService call
# ----------------------------------------------------------------------
class BadRequest(Exception):
    """Maps to HTTP 400 in :func:`safe_dispatch`."""


def require(body: dict, key: str):
    if key not in body:
        raise BadRequest(f"missing required field {key!r}")
    return body[key]


def _opt_int(body: dict, key: str) -> int | None:
    value = body.get(key)
    return None if value is None else int(value)


def parse_registration(body: dict) -> tuple[str, Graph]:
    """``POST /graphs`` body -> ``(name, Graph)``.

    Weights are validated here — a NaN or infinite weight would poison
    the graph fingerprint (NaN != NaN breaks cache keys) and every cut
    comparison downstream, so registration rejects them with 400 just
    like ``/mutate`` does (see ``deltas._edge_row``).
    """
    name = require(body, "name")
    if "path" in body:
        return name, load_any(body["path"])
    edges = require(body, "edges")
    graph = Graph(vertices=body.get("vertices", ()))
    for edge in edges:
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise BadRequest(f"bad edge {edge!r}: want [u, v] or [u, v, w]")
        u, v = edge[0], edge[1]
        w = float(edge[2]) if len(edge) == 3 else 1.0
        if not math.isfinite(w):
            raise BadRequest(
                f"edge weight for {u!r} -- {v!r} must be finite, got {w}"
            )
        graph.add_edge(u, v, w)
    return name, graph


def key_error_message(exc: KeyError) -> str:
    # str(KeyError("x")) is "'x'" — unwrap the arg for clean JSON errors.
    return str(exc.args[0]) if exc.args else str(exc)


def dispatch_service(service: CutService, op: str | None, body) -> dict:
    """Map one wire op onto the service; raises on any failure."""
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    try:
        if op == "graphs":
            return service.register(*parse_registration(body))
        if op == "mincut":
            return service.mincut(
                require(body, "graph"),
                eps=float(body.get("eps", 0.5)),
                trials=_opt_int(body, "trials"),
                seed=int(body.get("seed", 0)),
                preprocess=body.get("preprocess"),
            )
        if op == "kcut":
            return service.kcut(
                require(body, "graph"),
                int(require(body, "k")),
                eps=float(body.get("eps", 0.5)),
                trials=int(body.get("trials", 1)),
                seed=int(body.get("seed", 0)),
                preprocess=body.get("preprocess"),
            )
        if op == "stcut":
            return service.stcut(
                require(body, "graph"),
                require(body, "s"),
                require(body, "t"),
            )
        if op == "gomoryhu":
            return service.gomoryhu(
                require(body, "graph"),
                sides=bool(body.get("sides", False)),
            )
        if op == "sparsestcut":
            return service.sparsestcut(
                require(body, "graph"),
                seed=int(body.get("seed", 0)),
                trials=int(body.get("trials", 2)),
                kernel=bool(body.get("kernel", False)),
            )
        if op == "mutate":
            return service.mutate(
                require(body, "graph"),
                adds=body.get("adds") or (),
                removes=body.get("removes") or (),
                reweights=body.get("reweights") or (),
                deltas=body.get("deltas"),
                expected_fingerprint=body.get("expected_fingerprint"),
            )
        if op == "kernelize":
            return service.kernelize(
                require(body, "graph"),
                level=body.get("level", "safe"),
                k=body.get("k"),
            )
        if op == "evict":
            return service.evict(require(body, "graph"))
    except FingerprintMismatch:
        raise
    except (TypeError, ValueError) as exc:
        raise BadRequest(str(exc)) from exc
    raise BadRequest(f"unknown operation {op!r}")


def safe_dispatch(service: CutService, op: str | None, body) -> tuple[int, dict]:
    """Dispatch with every failure mapped to a JSON ``(status, body)``.

    A handler (or shard worker) must never die without replying — a
    thread killed by an uncaught exception drops the connection
    mid-request and, in ``/batch``, would break the errors-inline
    contract.
    """
    try:
        return 200, dispatch_service(service, op, body)
    except BadRequest as exc:
        return 400, {"error": str(exc)}
    except FingerprintMismatch as exc:
        return 409, {
            "error": str(exc),
            "expected_fingerprint": exc.expected,
            "fingerprint": exc.actual,
        }
    except KeyError as exc:
        return 404, {"error": key_error_message(exc)}
    except OSError as exc:
        return 400, {"error": f"{type(exc).__name__}: {exc}"}
    except Exception as exc:  # noqa: BLE001 - last-resort 500
        return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class AdmissionGate:
    """Bounded in-flight window + bounded wait queue.

    ``acquire()`` either returns (a slot is held; caller must
    ``release()``), or raises :class:`Overloaded`.  A request is shed
    immediately when the wait queue is full, or after ``queue_timeout_s``
    if no slot frees up.  Built on a ``Condition`` rather than a
    semaphore so the limits can be reconfigured at runtime
    (``POST /frontend``) and so queue depth is observable.
    """

    def __init__(
        self,
        *,
        max_inflight: int = 64,
        max_queue: int = 256,
        queue_timeout_s: float = 2.0,
        retry_after_s: float = 1.0,
    ):
        self._cond = threading.Condition()
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_timeout_s = float(queue_timeout_s)
        self.retry_after_s = float(retry_after_s)
        self.inflight = 0
        self.waiting = 0
        self.queue_depth_peak = 0

    def configure(self, **limits) -> None:
        with self._cond:
            for key in (
                "max_inflight", "max_queue", "queue_timeout_s", "retry_after_s"
            ):
                if limits.get(key) is None:
                    continue
                value = float(limits[key])
                if value < 0 or not math.isfinite(value):
                    raise ValueError(f"{key} must be >= 0 and finite")
                setattr(
                    self, key,
                    int(value) if key in ("max_inflight", "max_queue")
                    else value,
                )
            self._cond.notify_all()

    def _shed_message(self) -> str:
        return (
            f"server at capacity: {self.inflight} in flight "
            f"(limit {self.max_inflight}), {self.waiting} queued "
            f"(limit {self.max_queue})"
        )

    def try_acquire(self) -> bool:
        """Take a slot if one is free right now (no queueing)."""
        with self._cond:
            if self.inflight < self.max_inflight:
                self.inflight += 1
                return True
            return False

    def acquire(self) -> float:
        """Block until admitted; returns seconds spent waiting.

        Raises :class:`Overloaded` when shed.
        """
        with self._cond:
            if self.inflight < self.max_inflight:
                self.inflight += 1
                return 0.0
            if self.waiting >= self.max_queue:
                raise Overloaded(self._shed_message(), self.retry_after_s)
            deadline = time.monotonic() + self.queue_timeout_s
            t0 = time.monotonic()
            self.waiting += 1
            self.queue_depth_peak = max(self.queue_depth_peak, self.waiting)
            try:
                while self.inflight >= self.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise Overloaded(
                            self._shed_message(), self.retry_after_s
                        )
                    self._cond.wait(remaining)
                self.inflight += 1
                return time.monotonic() - t0
            finally:
                self.waiting -= 1

    def release(self) -> None:
        with self._cond:
            self.inflight -= 1
            self._cond.notify()

    def describe(self) -> dict:
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "queue_timeout_s": self.queue_timeout_s,
                "retry_after_s": self.retry_after_s,
                "inflight": self.inflight,
                "queue_depth": self.waiting,
                "queue_depth_peak": self.queue_depth_peak,
            }


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
class _Flight:
    """One in-flight computation; followers park on ``done``."""

    __slots__ = ("done", "status", "payload")

    def __init__(self):
        self.done = threading.Event()
        self.status = 500
        self.payload: dict = {"error": "coalesced leader never completed"}


class QueryCoalescer:
    """Singleflight table keyed by ``(op, fingerprint, canonical body)``."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[tuple, _Flight] = {}

    def join(self, key: tuple) -> tuple[bool, _Flight]:
        """Return ``(is_leader, flight)`` for this key."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return False, flight
            flight = _Flight()
            self._flights[key] = flight
            return True, flight

    def finish(
        self, key: tuple, flight: _Flight, status: int, payload: dict
    ) -> None:
        """Publish the leader's result and release followers."""
        with self._lock:
            self._flights.pop(key, None)
        flight.status = status
        flight.payload = payload
        flight.done.set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------
class HashRing:
    """Consistent hashing over shard ids (sha256, virtual nodes).

    Routing by graph *fingerprint* (itself a sha256 of the edge
    columns) keeps placement stable under shard-count changes: growing
    from S to S+1 shards moves ~1/(S+1) of the keys instead of
    rehashing everything, which is what keeps resident oracles warm
    through a resize.

    Placement is deterministic — the same key always lands on the same
    shard of a same-sized ring — and adding a shard leaves most keys
    where they were:

    >>> ring = HashRing(4)
    >>> ring.route("a-fingerprint") == ring.route("a-fingerprint")
    True
    >>> keys = [f"key-{i}" for i in range(200)]
    >>> bigger = HashRing(5)
    >>> moved = sum(ring.route(k) != bigger.route(k) for k in keys)
    >>> 0 < moved < 100  # ~1/5 expected, far from a full reshuffle
    True
    """

    def __init__(self, shards: int, *, replicas: int = 64):
        if shards < 1:
            raise ValueError("ring needs at least one shard")
        self.shards = int(shards)
        self.replicas = int(replicas)
        points = []
        for shard in range(self.shards):
            for replica in range(self.replicas):
                points.append((self._hash(f"shard-{shard}-{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha256(key.encode()).digest()[:8], "big"
        )

    def route(self, key: str) -> int:
        """Shard id owning ``key`` (clockwise successor on the ring)."""
        idx = bisect.bisect(self._points, self._hash(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class InlineBackend:
    """Single-process backend: dispatch straight into a CutService."""

    mode = "inline"
    shards = 1

    def __init__(self, service: CutService):
        self.service = service

    def dispatch(self, op: str | None, body, tracer: Tracer) -> tuple[int, dict]:
        return safe_dispatch(self.service, op, body)

    def fingerprint_of(self, name) -> str | None:
        if not isinstance(name, str):
            return None
        return self.service.store.peek_fingerprint(name)

    def graphs(self) -> list[dict]:
        return self.service.graphs()

    def stats(self) -> dict:
        return self.service.stats()

    def metrics_payload(self) -> dict:
        return self.service.metrics_payload()

    def close(self) -> None:
        self.service.close()


def _shard_main(shard_id: int, conn, service_kwargs: dict) -> None:
    """Worker-process loop: one CutService per shard, ops over a Pipe.

    Runs in a child process (so it must stay importable at module
    level for the ``spawn`` start method).  The protocol is
    ``(op, body)`` in, ``(status, payload)`` out, strictly serial per
    shard — which is exactly what keeps sharded answers bit-identical
    to the single-process service.  Control ops are prefixed with
    ``__``: ``__graphs__``, ``__stats__``, ``__metrics__``,
    ``__ping__``, ``__stop__``.
    """
    # Ctrl-C on the serving process lands on the whole foreground
    # process group; shutdown is driven by __stop__/EOF on the pipe,
    # so the worker must not die (noisily) on the stray SIGINT.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    service = CutService(**service_kwargs)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op, body = msg
            if op == "__stop__":
                conn.send((200, {"ok": True}))
                break
            try:
                if op == "__graphs__":
                    result = (200, {"graphs": service.graphs()})
                elif op == "__stats__":
                    result = (200, service.stats())
                elif op == "__metrics__":
                    result = (200, service.metrics_payload())
                elif op == "__ping__":
                    result = (200, {"ok": True, "shard": shard_id})
                else:
                    result = safe_dispatch(service, op, body)
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                result = (
                    500,
                    {"error": f"shard error: {type(exc).__name__}: {exc}"},
                )
            try:
                conn.send(result)
            except (BrokenPipeError, OSError):
                break
    finally:
        service.close()
        conn.close()


@dataclass
class _Route:
    shard: int
    fingerprint: str


class ShardPool:
    """Multi-process backend: GraphStore partitioned by fingerprint.

    The frontend computes each graph's fingerprint at registration
    time (parsing the edges / loading the file once, locally), routes
    the name to a shard via the :class:`HashRing`, and ships the
    original JSON body to that shard's worker process.  Subsequent ops
    on the name go to the same shard; ``mutate`` responses refresh the
    routing fingerprint (placement is sticky — a mutated graph stays
    where its oracles live), ``evict`` drops the route.  Per-shard
    dispatch is serialised by a lock around the Pipe round-trip, so
    one shard behaves exactly like a single-process service while
    different shards run truly in parallel.
    """

    mode = "sharded"

    def __init__(
        self,
        shards: int,
        *,
        service_kwargs: dict | None = None,
        request_timeout_s: float = 300.0,
        start_method: str | None = None,
    ):
        if shards < 2:
            raise ValueError("ShardPool needs >= 2 shards (use InlineBackend)")
        self.shards = int(shards)
        self.service_kwargs = dict(service_kwargs or {})
        self.request_timeout_s = float(request_timeout_s)
        self.ring = HashRing(self.shards)
        self._routes: dict[str, _Route] = {}
        self._routes_lock = threading.Lock()
        ctx = multiprocessing.get_context(start_method or "spawn")
        self._conns = []
        self._procs = []
        self._locks = [threading.Lock() for _ in range(self.shards)]
        # Tracer/metrics objects don't pickle; shard services run
        # untraced and the frontend traces around the round-trip.
        kwargs = dict(self.service_kwargs)
        kwargs.pop("tracer", None)
        kwargs.pop("metrics", None)
        for shard in range(self.shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_main,
                args=(shard, child, kwargs),
                daemon=True,
                name=f"cut-shard-{shard}",
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        # Fail fast if a worker died on boot (bad service kwargs).
        for shard in range(self.shards):
            status, payload = self._roundtrip(shard, "__ping__", None)
            if status != 200:
                self.close()
                raise RuntimeError(f"shard {shard} failed to boot: {payload}")

    # ------------------------------------------------------------------
    def _roundtrip(self, shard: int, op: str, body) -> tuple[int, dict]:
        with self._locks[shard]:
            conn = self._conns[shard]
            try:
                conn.send((op, body))
                if not conn.poll(self.request_timeout_s):
                    return 500, {
                        "error": f"shard {shard} timed out after "
                        f"{self.request_timeout_s}s"
                    }
                return conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                return 500, {
                    "error": f"shard {shard} unavailable: "
                    f"{type(exc).__name__}: {exc}"
                }

    def route_of(self, name) -> _Route | None:
        with self._routes_lock:
            return self._routes.get(name)

    def fingerprint_of(self, name) -> str | None:
        route = self.route_of(name) if isinstance(name, str) else None
        return route.fingerprint if route else None

    # ------------------------------------------------------------------
    def dispatch(self, op: str | None, body, tracer: Tracer) -> tuple[int, dict]:
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}
        if op == "graphs":
            return self._register(body, tracer)
        if op not in GRAPH_OPS:
            return 400, {"error": f"unknown operation {op!r}"}
        name = body.get("graph")
        route = self.route_of(name) if isinstance(name, str) else None
        if route is None:
            return 404, {"error": f"no graph registered under {name!r}"}
        with tracer.span("shard.dispatch") as sp:
            if sp:
                sp.set(shard=route.shard, op=op, graph=name)
            status, payload = self._roundtrip(route.shard, op, body)
            if sp:
                sp.set(status=status)
        if status == 200:
            if op == "mutate":
                fp = payload.get("fingerprint")
                if isinstance(fp, str):
                    with self._routes_lock:
                        self._routes[name] = _Route(route.shard, fp)
            elif op == "evict":
                with self._routes_lock:
                    self._routes.pop(name, None)
        return status, payload

    def _register(self, body: dict, tracer: Tracer) -> tuple[int, dict]:
        """Fingerprint locally, ring-route, ship the body to the shard."""
        try:
            name, graph = parse_registration(body)
        except BadRequest as exc:
            return 400, {"error": str(exc)}
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        except OSError as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        fingerprint = graph.fingerprint()
        shard = self.ring.route(fingerprint)
        old = self.route_of(name)
        with tracer.span("shard.dispatch") as sp:
            if sp:
                sp.set(shard=shard, op="graphs", graph=name)
            status, payload = self._roundtrip(shard, "graphs", body)
            if sp:
                sp.set(status=status)
        if status == 200:
            with self._routes_lock:
                self._routes[name] = _Route(shard, fingerprint)
            # Re-registering a name whose new content hashes to a
            # different shard must evict the stale copy, or /graphs
            # would list it twice.
            if old is not None and old.shard != shard:
                self._roundtrip(old.shard, "evict", {"graph": name})
        return status, payload

    # ------------------------------------------------------------------
    def graphs(self) -> list[dict]:
        rows: list[dict] = []
        for shard in range(self.shards):
            status, payload = self._roundtrip(shard, "__graphs__", None)
            if status == 200:
                for row in payload.get("graphs", ()):
                    row["shard"] = shard
                    rows.append(row)
        rows.sort(key=lambda r: r.get("name", ""))
        return rows

    def stats(self) -> dict:
        return {
            str(shard): self._roundtrip(shard, "__stats__", None)[1]
            for shard in range(self.shards)
        }

    def metrics_payload(self) -> dict:
        return {
            str(shard): self._roundtrip(shard, "__metrics__", None)[1]
            for shard in range(self.shards)
        }

    def close(self) -> None:
        for shard in range(self.shards):
            try:
                self._roundtrip(shard, "__stop__", None)
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


# ----------------------------------------------------------------------
# The frontend proper
# ----------------------------------------------------------------------
class Frontend:
    """Admission + coalescing + routing in front of a dispatch backend.

    ``handle(op, body)`` is the single entry point the HTTP handler
    calls for every POST; it returns ``(status, payload, headers)``.
    GET-side observability paths (``/graphs``, ``/stats``,
    ``/metrics``, ``/trace``, ``/frontend``) bypass admission — an
    operator must be able to inspect an overloaded server.
    """

    #: POST ops exempt from admission control: reconfiguring the gate
    #: must work even when the gate itself is saturated.
    EXEMPT_OPS = frozenset({"frontend"})

    def __init__(
        self,
        backend,
        *,
        max_inflight: int = 64,
        max_queue: int = 256,
        queue_timeout_s: float = 2.0,
        retry_after_s: float = 1.0,
        coalesce: bool = True,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.backend = backend
        if tracer is None:
            tracer = getattr(
                getattr(backend, "service", None), "tracer", None
            ) or Tracer()
        if metrics is None:
            metrics = getattr(
                getattr(backend, "service", None), "metrics", None
            )
            if metrics is None:
                metrics = MetricsRegistry()
        self.tracer = tracer
        self.metrics = metrics
        self.coalesce = bool(coalesce)
        self.gate = AdmissionGate(
            max_inflight=max_inflight,
            max_queue=max_queue,
            queue_timeout_s=queue_timeout_s,
            retry_after_s=retry_after_s,
        )
        self.coalescer = QueryCoalescer()
        scope = metrics.scope("frontend")
        self._admitted = scope.counter("admitted")
        self._shed = scope.counter("shed")
        self._coalesced_hits = scope.counter("coalesced_hits")
        self._coalesce_leaders = scope.counter("coalesce_leaders")
        self._queue_wait = scope.histogram("queue_wait_s")
        self._inflight_gauge = scope.gauge("inflight")
        self._disconnects = metrics.scope("http").counter("client_disconnects")
        self._started_at = time.time()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def handle(self, op: str, body) -> tuple[int, dict, dict]:
        """Admit, coalesce, dispatch.  Returns (status, payload, headers)."""
        if op in self.EXEMPT_OPS:
            status, payload = self._admin(body)
            return status, payload, {}
        try:
            waited = self._admit()
        except Overloaded as exc:
            self._shed.inc()
            retry = exc.retry_after_s
            payload = {"error": str(exc), "retry_after_s": retry}
            headers = {"Retry-After": str(max(1, math.ceil(retry)))}
            return 429, payload, headers
        self._admitted.inc()
        if waited:
            self._queue_wait.record(waited)
        self._inflight_gauge.set(self.gate.inflight)
        try:
            if op == "batch":
                status, payload = self._handle_batch(body)
            else:
                status, payload = self._dispatch_coalesced(op, body)
            return status, payload, {}
        finally:
            self.gate.release()
            self._inflight_gauge.set(self.gate.inflight)

    def _admit(self) -> float:
        """Acquire an admission slot, tracing time spent queued."""
        gate = self.gate
        # Fast path: no span when a slot is free (keeps the replayed
        # doc traces stable and the hot path allocation-free).
        if gate.try_acquire():
            return 0.0
        with self.tracer.span("queue.wait") as sp:
            waited = gate.acquire()
            if sp:
                sp.set(waited_s=round(waited, 6), depth=gate.waiting)
            return waited

    def _dispatch_coalesced(self, op: str, body) -> tuple[int, dict]:
        key = self._coalesce_key(op, body)
        if key is None:
            return self.backend.dispatch(op, body, self.tracer)
        leader, flight = self.coalescer.join(key)
        if not leader:
            with self.tracer.span("coalesce.wait") as sp:
                if sp:
                    sp.set(op=op)
                flight.done.wait(timeout=600.0)
            self._coalesced_hits.inc()
            # Shallow copy: the HTTP layer stamps trace_id into error
            # payloads in place, and each follower must stamp its own.
            return flight.status, dict(flight.payload)
        self._coalesce_leaders.inc()
        status, payload = 500, {"error": "internal error: leader crashed"}
        try:
            status, payload = self.backend.dispatch(op, body, self.tracer)
        finally:
            self.coalescer.finish(key, flight, status, payload)
        return status, dict(payload)

    def _coalesce_key(self, op: str, body) -> tuple | None:
        if not self.coalesce or op not in COALESCABLE_OPS:
            return None
        if not isinstance(body, dict):
            return None
        fingerprint = self.backend.fingerprint_of(body.get("graph"))
        if fingerprint is None:
            return None  # unknown graph: dispatch for the real 404
        try:
            canonical = json.dumps(body, sort_keys=True)
        except (TypeError, ValueError):
            return None
        return (op, fingerprint, canonical)

    def _handle_batch(self, body) -> tuple[int, dict]:
        """``/batch``: dispatch each item, errors inline (with trace_id)."""
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}
        requests = body.get("requests")
        if not isinstance(requests, list):
            return 400, {"error": "batch body needs a 'requests' list"}
        root = self.tracer.current()
        responses = []
        for i, item in enumerate(requests):
            op = item.get("op") if isinstance(item, dict) else None
            with self.tracer.span("batch.item") as sp:
                if sp:
                    sp.set(op=op, index=i)
                status, payload = self._dispatch_coalesced(op, item)
                if sp:
                    sp.set(status=status)
            if status >= 400:
                payload["trace_id"] = root.trace_id if root else None
            responses.append(payload)
        return 200, {"responses": responses}

    # ------------------------------------------------------------------
    # Admin + observability
    # ------------------------------------------------------------------
    def _admin(self, body) -> tuple[int, dict]:
        """``POST /frontend``: reconfigure admission limits at runtime."""
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}
        allowed = {
            "max_inflight", "max_queue", "queue_timeout_s", "retry_after_s"
        }
        unknown = set(body) - allowed
        if unknown:
            return 400, {
                "error": f"unknown frontend setting(s): "
                f"{', '.join(sorted(unknown))}"
            }
        try:
            self.gate.configure(**{k: body.get(k) for k in allowed})
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        return 200, self.describe()

    def describe(self) -> dict:
        """The ``GET /frontend`` body: config + live admission state."""
        desc = {
            "mode": self.backend.mode,
            "shards": self.backend.shards,
            "coalesce": self.coalesce,
        }
        desc.update(self.gate.describe())
        desc.update(
            {
                "admitted": self._admitted.value,
                "shed": self._shed.value,
                "coalesced_hits": self._coalesced_hits.value,
                "coalesce_leaders": self._coalesce_leaders.value,
                "client_disconnects": self._disconnects.value,
            }
        )
        return desc

    def note_client_disconnect(self) -> None:
        self._disconnects.inc()

    def observe_request(
        self, op: str, seconds: float, *, error: bool = False,
        shed: bool = False,
    ) -> None:
        service = getattr(self.backend, "service", None)
        if service is not None:
            service.observe_request(op, seconds, error=error, shed=shed)
            return
        scope = self.metrics.scope("requests").scope(op)
        scope.counter("count").inc()
        if error:
            scope.counter("errors").inc()
        if shed:
            scope.counter("shed").inc()
        scope.histogram("latency_s").record(seconds)

    def graphs(self) -> list[dict]:
        return self.backend.graphs()

    def stats(self) -> dict:
        if self.backend.mode == "inline":
            payload = self.backend.stats()
            payload["frontend"] = self.describe()
            return payload
        return {
            "uptime_s": time.time() - self._started_at,
            "frontend": self.describe(),
            "requests": self._request_summary(),
            "shards": self.backend.stats(),
        }

    def _request_summary(self) -> dict:
        summary: dict[str, dict] = {}
        for name, hist in self.metrics.histograms("requests.").items():
            op = name[len("requests."):].rsplit(".", 1)[0]
            digest = hist.summary()
            summary[op] = {
                "count": digest["count"],
                "errors": self.metrics.counter(f"requests.{op}.errors").value,
                "p50_s": digest["p50"],
                "p95_s": digest["p95"],
                "p99_s": digest["p99"],
                "mean_s": digest["mean"],
            }
        return summary

    def metrics_payload(self) -> dict:
        if self.backend.mode == "inline":
            return self.backend.metrics_payload()
        payload = self.metrics.snapshot()
        payload["shards"] = self.backend.metrics_payload()
        return payload

    def trace_payload(self, limit: int | None) -> dict:
        return {
            "spans": self.tracer.snapshot(limit),
            "stats": self.tracer.stats(),
        }

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "Frontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
def make_frontend(
    service: CutService | None = None,
    *,
    shards: int = 1,
    service_kwargs: dict | None = None,
    max_inflight: int = 64,
    max_queue: int = 256,
    queue_timeout_s: float = 2.0,
    retry_after_s: float = 1.0,
    coalesce: bool = True,
    tracer: Tracer | None = None,
    start_method: str | None = None,
) -> Frontend:
    """Build a frontend: inline for ``shards <= 1``, sharded otherwise.

    Inline mode reuses the service's tracer and metrics registry, so
    ``frontend.*`` counters land in the same ``GET /metrics`` snapshot
    as everything else.  Sharded mode owns its own tracer/registry
    frontend-side and fans ``/stats`` + ``/metrics`` out per shard.
    """
    if shards <= 1:
        if service is None:
            service = CutService(**(service_kwargs or {}))
        backend = InlineBackend(service)
        return Frontend(
            backend,
            max_inflight=max_inflight,
            max_queue=max_queue,
            queue_timeout_s=queue_timeout_s,
            retry_after_s=retry_after_s,
            coalesce=coalesce,
            tracer=tracer or service.tracer,
            metrics=service.metrics,
        )
    if service is not None:
        raise ValueError(
            "pass service_kwargs (not a live service) in sharded mode"
        )
    backend = ShardPool(
        shards, service_kwargs=service_kwargs, start_method=start_method
    )
    return Frontend(
        backend,
        max_inflight=max_inflight,
        max_queue=max_queue,
        queue_timeout_s=queue_timeout_s,
        retry_after_s=retry_after_s,
        coalesce=coalesce,
        tracer=tracer or Tracer(),
        metrics=MetricsRegistry(),
    )
