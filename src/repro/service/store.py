"""GraphStore — the resident-graph registry of the serving layer.

A one-shot CLI re-parses its input on every invocation; a query engine
loads each graph **once**, fingerprints it (content hash over the
columnar edge structure, :meth:`repro.graph.Graph.fingerprint` — one
pass over the edge columns), and keeps it resident so every later
query skips parsing and hashing.  Residency also keeps the graph's
lazily built derived views (CSR adjacency, degree vector) warm across
queries.  Registered graphs change only through the store's own
mutation path (:meth:`GraphStore.apply_delta` — edge deltas applied in
place, fingerprints advanced by **chaining** the delta digest), which
selectively invalidates or revalidates derived state; out-of-band
mutation of a registered graph is undefined behaviour.
Graphs are addressed by a caller-chosen name; the fingerprint makes
result caches content-addressed, so re-registering the same graph under
a new name (or after an eviction) still hits warm cache entries.

Capacity is bounded: with more named graphs than ``capacity`` the
least-recently-*queried* one is evicted (its dependents — e.g. the
per-graph Gomory–Hu oracle — are released through ``on_evict``).

The store also owns the **kernelization cache**: one
:class:`~repro.preprocess.CutKernel` per (fingerprint, level), built
lazily by :meth:`GraphStore.kernel_for`, so every preprocessed query on
a resident graph starts from the reduced graph instead of re-running
the reduction pipeline.  Kernels are dropped when the last entry
holding their fingerprint leaves the store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..graph import Graph, load_any
from ..obs.metrics import MetricsRegistry, MetricsScope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..preprocess import CutKernel
    from .deltas import GraphDelta, MutationRecord


@dataclass
class GraphEntry:
    """One resident graph plus its registration metadata.

    ``generation`` counts content-changing deltas applied since
    registration (``fingerprint`` is then the *chained* delta
    fingerprint — see :func:`repro.service.deltas.chain_fingerprint`);
    ``mutations`` counts every ``apply_delta`` call, no-ops included.
    """

    name: str
    graph: Graph
    fingerprint: str
    num_vertices: int
    num_edges: int
    queries: int = 0
    source: str | None = None
    generation: int = 0
    mutations: int = 0

    def describe(self) -> dict:
        """JSON-able summary (the ``/graphs`` row)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "queries": self.queries,
            "source": self.source,
            "generation": self.generation,
            "mutations": self.mutations,
        }


class StoreStats:
    """Store counters, registry-backed (``store.*`` in ``GET /metrics``).

    Attribute reads return plain ints (``store.stats.hits``) — the
    shape the tests and ``/stats`` consumers always saw — while the
    underlying instruments are shared with the service-wide
    :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    FIELDS = (
        "registered",
        "replaced",
        "evictions",
        "hits",
        "misses",
        "kernel_builds",
        "kernel_hits",
        "mutations",
        "kernels_revalidated",
        "kernels_dropped_on_mutate",
        "reductions_replayed",
        "deltas_applied",
        "cow_copies",
    )

    def __init__(self, metrics: MetricsScope | None = None):
        if metrics is None:
            metrics = MetricsRegistry().scope("store")
        self._counters = {f: metrics.counter(f) for f in self.FIELDS}

    def inc(self, name: str, n: int = 1) -> None:
        self._counters[name].inc(n)

    def __getattr__(self, name: str) -> int:
        try:
            return self._counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def as_dict(self) -> dict:
        return {f: self._counters[f].value for f in self.FIELDS}


class GraphStore:
    """Named registry of resident graphs with LRU eviction.

    ``capacity=None`` means unbounded.  ``on_evict`` (if given) is
    called with each evicted :class:`GraphEntry` so owners of derived
    state (oracles, etc.) can release it.

    >>> from repro.graph import Graph
    >>> store = GraphStore(capacity=2)
    >>> entry = store.register("g", Graph(edges=[(0, 1, 2.0)]))
    >>> entry.num_edges, entry.generation
    (1, 0)
    >>> store.get("g") is entry
    True
    >>> from repro.service.deltas import GraphDelta
    >>> entry, record = store.apply_delta(
    ...     "g", GraphDelta.from_json({"adds": [[1, 2, 1.0]]}))
    >>> entry.num_edges, entry.generation
    (2, 1)
    >>> record.new_fingerprint != record.old_fingerprint
    True
    """

    def __init__(
        self,
        *,
        capacity: int | None = None,
        on_evict: Callable[[GraphEntry], None] | None = None,
        metrics: MetricsScope | None = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._entries: OrderedDict[str, GraphEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._on_evict = on_evict
        self.stats = StoreStats(metrics)
        # kernelization cache: (fingerprint, level) -> CutKernel and
        # (fingerprint, ("kcut", k, level)) -> KCutKernel, so every
        # preprocessed query on a resident graph starts from the
        # kernel.  Content-addressed like the oracle cache: two names
        # holding the same graph share one kernel per level.
        self._kernels: dict[tuple, "CutKernel"] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, graph: Graph, *, source: str | None = None
    ) -> GraphEntry:
        """Admit ``graph`` under ``name`` (replacing any previous holder).

        Fingerprinting happens here, exactly once per registration; the
        entry is marked most-recently-used.
        """
        if not name:
            raise ValueError("graph name must be non-empty")
        entry = GraphEntry(
            name=name,
            graph=graph,
            fingerprint=graph.fingerprint(),
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            source=source,
        )
        evicted: list[GraphEntry] = []
        with self._lock:
            replaced = self._entries.pop(name, None)
            if replaced is not None:
                # The old holder leaves the store like any eviction, so
                # derived state (oracles) keyed on its content is freed.
                self.stats.inc("replaced")
                evicted.append(replaced)
            self._entries[name] = entry
            self.stats.inc("registered")
            while self.capacity is not None and len(self._entries) > self.capacity:
                _, old = self._entries.popitem(last=False)
                self.stats.inc("evictions")
                evicted.append(old)
            self._drop_orphan_kernels(evicted)
        for old in evicted:
            if self._on_evict is not None:
                self._on_evict(old)
        return entry

    def register_file(self, name: str, path: Path | str) -> GraphEntry:
        """Load ``path`` (edge list / DIMACS / METIS) and register it."""
        return self.register(name, load_any(path), source=str(path))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> GraphEntry:
        """Fetch an entry, refreshing its LRU recency and query count."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                self.stats.inc("misses")
                raise KeyError(f"no graph registered under {name!r}")
            self._entries.move_to_end(name)
            self.stats.inc("hits")
            entry.queries += 1
            return entry

    def peek_fingerprint(self, name: str) -> str | None:
        """Current fingerprint of ``name`` without touching LRU recency
        or the hit/miss counters — the coalescer's key lookup must not
        perturb eviction order or the store's stats."""
        with self._lock:
            entry = self._entries.get(name)
            return entry.fingerprint if entry is not None else None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def names(self) -> list[str]:
        """Registered names, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def entries(self) -> list[GraphEntry]:
        with self._lock:
            return list(self._entries.values())

    def evict(self, name: str) -> GraphEntry:
        """Explicitly drop ``name``; returns the evicted entry."""
        with self._lock:
            if name not in self._entries:
                raise KeyError(f"no graph registered under {name!r}")
            entry = self._entries.pop(name)
            self.stats.inc("evictions")
            self._drop_orphan_kernels([entry])
        if self._on_evict is not None:
            self._on_evict(entry)
        return entry

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        name: str,
        delta: "GraphDelta",
        *,
        expected_fingerprint: str | None = None,
    ) -> tuple[GraphEntry, "MutationRecord"]:
        """Mutate the resident graph under ``name`` in place.

        The tentpole path of the dynamic-workload scenario: the delta
        is validated against the pre-state (atomic — a rejected delta
        changes nothing), applied through the columnar mutators of
        :class:`~repro.graph.Graph`, and the entry's fingerprint
        advances by **chaining** the delta digest
        (:func:`repro.service.deltas.chain_fingerprint`, ``O(|delta|)``
        instead of an ``O(m log m)`` re-hash).  The entry counts as
        most-recently-used.

        ``expected_fingerprint`` is optimistic concurrency: when given
        and stale, :class:`~repro.service.deltas.FingerprintMismatch`
        (HTTP 409) is raised and nothing is applied.

        Invalidation is *selective*:

        * if another resident entry still holds the old content (same
          fingerprint), the graph is **copied on write** first, so the
          sibling's graph object — and every kernel/oracle built from
          it — stays frozen and nothing of the old content is dropped;
        * otherwise the old fingerprint's kernels are refreshed where
          a reduction certificate survives the delta
          (:func:`repro.preprocess.refresh_kernel` — re-keyed to the
          new fingerprint, counted in ``kernels_revalidated`` with the
          re-run reduction steps in ``reductions_replayed``) and
          dropped where not;
        * a no-op delta (content and row order bit-identical) keeps the
          fingerprint and invalidates nothing.

        Result-cache and oracle invalidation live one layer up in
        :meth:`repro.service.service.CutService.mutate`, which wraps
        this and fills the remaining :class:`MutationRecord` fields.

        Concurrency caveat: the store's own state is mutated under its
        lock, but a query that already fetched this entry's graph
        object races with an in-place mutation of the same name (the
        usual non-MVCC contract).  Copy-on-write shields only siblings
        that share content, not in-flight readers of this entry.
        """
        from ..preprocess import refresh_kernel
        from .deltas import (
            DeltaEffect,
            FingerprintMismatch,
            MutationRecord,
            apply_delta,
            chain_fingerprint,
            is_noop_for,
        )

        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                self.stats.inc("misses")
                raise KeyError(f"no graph registered under {name!r}")
            self._entries.move_to_end(name)
            if (
                expected_fingerprint is not None
                and expected_fingerprint != entry.fingerprint
            ):
                raise FingerprintMismatch(
                    name, expected_fingerprint, entry.fingerprint
                )
            old_fp = entry.fingerprint
            shared = any(
                e is not entry and e.fingerprint == old_fp
                for e in self._entries.values()
            )
            if is_noop_for(entry.graph, delta):
                # Provably-untouched content: skip copy-on-write, the
                # column writes and the derived-cache invalidation
                # entirely (O(|delta|) instead of O(n + m)).
                entry.mutations += 1
                self.stats.inc("mutations")
                return entry, MutationRecord(
                    name=name,
                    old_fingerprint=old_fp,
                    new_fingerprint=old_fp,
                    generation=entry.generation,
                    delta=delta,
                    effect=DeltaEffect(),
                    shared=shared,
                )
            copied = False
            if shared:
                # Copy-on-write: siblings (and any kernel/oracle built
                # from this object) keep the frozen old content.
                entry.graph = entry.graph.copy()
                copied = True
                self.stats.inc("cow_copies")
            effect = apply_delta(entry.graph, delta)
            entry.mutations += 1
            self.stats.inc("mutations")
            record = MutationRecord(
                name=name,
                old_fingerprint=old_fp,
                new_fingerprint=old_fp,
                generation=entry.generation,
                delta=delta,
                effect=effect,
                shared=shared,
                copied_on_write=copied,
            )
            if effect.is_noop:
                return entry, record
            self.stats.inc("deltas_applied")
            entry.fingerprint = chain_fingerprint(old_fp, delta)
            entry.generation += 1
            entry.num_vertices = entry.graph.num_vertices
            entry.num_edges = entry.graph.num_edges
            record.new_fingerprint = entry.fingerprint
            record.generation = entry.generation
            pending: list = []  # (level, kernel) candidates to revalidate
            if not shared:
                for key in [k for k in self._kernels if k[0] == old_fp]:
                    kernel = self._kernels.pop(key)
                    if isinstance(key[1], str):  # min-cut kernel level
                        pending.append((key[1], kernel))
                    else:  # k-cut kernels have no revalidation rule
                        record.kernels_dropped += 1
                        self.stats.inc("kernels_dropped_on_mutate")
        # Revalidation may kernelize (O(n + m)); run it outside the
        # store lock — the same discipline as kernel_for — and install
        # only while the new fingerprint is still resident (a second
        # mutation or an eviction in the gap orphans the result).
        revalidated: list = []
        cut_drops = 0
        replayed = 0
        for level, kernel in pending:
            fresh, _rule = refresh_kernel(kernel, entry.graph)
            if fresh is None:
                cut_drops += 1
            else:
                replayed += len(fresh.steps)
                revalidated.append((level, fresh))
        with self._lock:
            new_fp = record.new_fingerprint
            resident = any(
                e.fingerprint == new_fp for e in self._entries.values()
            )
            if not resident:
                cut_drops += len(revalidated)
                revalidated = []
                replayed = 0
            for level, fresh in revalidated:
                self._kernels.setdefault((new_fp, level), fresh)
                record.kernels_revalidated += 1
                self.stats.inc("kernels_revalidated")
            record.kernels_dropped += cut_drops
            record.reductions_replayed += replayed
            self.stats.inc("kernels_dropped_on_mutate", cut_drops)
            self.stats.inc("reductions_replayed", replayed)
        return entry, record

    # ------------------------------------------------------------------
    # Kernelization cache
    # ------------------------------------------------------------------
    def kernel_for(self, entry: GraphEntry, level: str) -> "CutKernel":
        """The cached :class:`~repro.preprocess.CutKernel` of an entry.

        Built lazily, once per (fingerprint, level): every later query
        on a resident graph starts from the kernel instead of the raw
        graph.  The fingerprint keys the cache, so a kernel can only
        serve the content it was built from — :meth:`apply_delta`
        moves the entry to a new fingerprint and revalidates or drops
        its kernels; eviction of the last entry holding a fingerprint
        drops them too.
        """
        from ..preprocess import kernelize, validate_level

        level = validate_level(level)
        fp = entry.fingerprint  # captured: a concurrent mutation moves it
        key = (fp, level)
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self.stats.inc("kernel_hits")
                return kernel
        # Kernelize outside the lock: reductions are O(m) per round and
        # must not wedge concurrent store lookups.
        kernel = kernelize(entry.graph, level=level)
        with self._lock:
            self.stats.inc("kernel_builds")
            # Cache only while the fingerprint is still resident — the
            # entry may have been evicted (or mutated) mid-build, and
            # caching then would pin a stale kernel forever (same rule
            # as the oracle cache in CutService._oracle_for).
            if any(
                e.fingerprint == fp for e in self._entries.values()
            ):
                self._kernels.setdefault(key, kernel)
                kernel = self._kernels[key]
        return kernel

    def kcut_kernel_for(self, entry: GraphEntry, k: int, level: str):
        """The cached :class:`~repro.preprocess.KCutKernel` of an entry.

        Same contract as :meth:`kernel_for`, keyed by ``(fingerprint,
        ("kcut", k, level))`` so the eviction sweep (which matches on
        the fingerprint element) releases both kinds of kernel.
        """
        from ..preprocess import kernelize_for_kcut, validate_level

        level = validate_level(level)
        fp = entry.fingerprint  # captured: a concurrent mutation moves it
        key = (fp, ("kcut", k, level))
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self.stats.inc("kernel_hits")
                return kernel
        kernel = kernelize_for_kcut(entry.graph, k, level=level)
        with self._lock:
            self.stats.inc("kernel_builds")
            if any(
                e.fingerprint == fp for e in self._entries.values()
            ):
                self._kernels.setdefault(key, kernel)
                kernel = self._kernels[key]
        return kernel

    def has_kernel(self, fingerprint: str, level_key) -> bool:
        """Whether a kernel is cached under ``(fingerprint, level_key)``.

        ``level_key`` is a level name for min-cut kernels or the
        ``("kcut", k, level)`` tuple — the ``/kernelize`` endpoint and
        the mutation path's result-rekey test use this to observe cache
        state without building anything.
        """
        with self._lock:
            return (fingerprint, level_key) in self._kernels

    def cached_kernel(self, fingerprint: str, level_key):
        """The cached kernel under ``(fingerprint, level_key)`` or None."""
        with self._lock:
            return self._kernels.get((fingerprint, level_key))

    def _drop_orphan_kernels(self, evicted: list[GraphEntry]) -> None:
        """Drop kernels whose fingerprint no longer has a resident entry.

        Caller must hold ``self._lock``.
        """
        if not self._kernels or not evicted:
            return
        resident = {e.fingerprint for e in self._entries.values()}
        for entry in evicted:
            if entry.fingerprint in resident:
                continue
            for key in [k for k in self._kernels if k[0] == entry.fingerprint]:
                del self._kernels[key]

    def describe(self) -> dict:
        """JSON-able store summary (the ``/stats`` section)."""
        with self._lock:
            return {
                "resident": len(self._entries),
                "capacity": self.capacity,
                "kernels_resident": len(self._kernels),
                **self.stats.as_dict(),
            }
