"""GraphStore — the resident-graph registry of the serving layer.

A one-shot CLI re-parses its input on every invocation; a query engine
loads each graph **once**, fingerprints it (content hash over the
columnar edge structure, :meth:`repro.graph.Graph.fingerprint`), and
keeps it resident so every later query skips parsing and hashing.
Graphs are addressed by a caller-chosen name; the fingerprint makes
result caches content-addressed, so re-registering the same graph under
a new name (or after an eviction) still hits warm cache entries.

Capacity is bounded: with more named graphs than ``capacity`` the
least-recently-*queried* one is evicted (its dependents — e.g. the
per-graph Gomory–Hu oracle — are released through ``on_evict``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..graph import Graph, load_any


@dataclass
class GraphEntry:
    """One resident graph plus its registration metadata."""

    name: str
    graph: Graph
    fingerprint: str
    num_vertices: int
    num_edges: int
    queries: int = 0
    source: str | None = None

    def describe(self) -> dict:
        """JSON-able summary (the ``/graphs`` row)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "queries": self.queries,
            "source": self.source,
        }


@dataclass
class StoreStats:
    registered: int = 0
    replaced: int = 0
    evictions: int = 0
    hits: int = 0
    misses: int = 0

    def as_dict(self) -> dict:
        return {
            "registered": self.registered,
            "replaced": self.replaced,
            "evictions": self.evictions,
            "hits": self.hits,
            "misses": self.misses,
        }


class GraphStore:
    """Named registry of resident graphs with LRU eviction.

    ``capacity=None`` means unbounded.  ``on_evict`` (if given) is
    called with each evicted :class:`GraphEntry` so owners of derived
    state (oracles, etc.) can release it.
    """

    def __init__(
        self,
        *,
        capacity: int | None = None,
        on_evict: Callable[[GraphEntry], None] | None = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._entries: OrderedDict[str, GraphEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._on_evict = on_evict
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, graph: Graph, *, source: str | None = None
    ) -> GraphEntry:
        """Admit ``graph`` under ``name`` (replacing any previous holder).

        Fingerprinting happens here, exactly once per registration; the
        entry is marked most-recently-used.
        """
        if not name:
            raise ValueError("graph name must be non-empty")
        entry = GraphEntry(
            name=name,
            graph=graph,
            fingerprint=graph.fingerprint(),
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            source=source,
        )
        evicted: list[GraphEntry] = []
        with self._lock:
            replaced = self._entries.pop(name, None)
            if replaced is not None:
                # The old holder leaves the store like any eviction, so
                # derived state (oracles) keyed on its content is freed.
                self.stats.replaced += 1
                evicted.append(replaced)
            self._entries[name] = entry
            self.stats.registered += 1
            while self.capacity is not None and len(self._entries) > self.capacity:
                _, old = self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted.append(old)
        for old in evicted:
            if self._on_evict is not None:
                self._on_evict(old)
        return entry

    def register_file(self, name: str, path: Path | str) -> GraphEntry:
        """Load ``path`` (edge list / DIMACS / METIS) and register it."""
        return self.register(name, load_any(path), source=str(path))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> GraphEntry:
        """Fetch an entry, refreshing its LRU recency and query count."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                self.stats.misses += 1
                raise KeyError(f"no graph registered under {name!r}")
            self._entries.move_to_end(name)
            self.stats.hits += 1
            entry.queries += 1
            return entry

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def names(self) -> list[str]:
        """Registered names, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def entries(self) -> list[GraphEntry]:
        with self._lock:
            return list(self._entries.values())

    def evict(self, name: str) -> GraphEntry:
        """Explicitly drop ``name``; returns the evicted entry."""
        with self._lock:
            if name not in self._entries:
                raise KeyError(f"no graph registered under {name!r}")
            entry = self._entries.pop(name)
            self.stats.evictions += 1
        if self._on_evict is not None:
            self._on_evict(entry)
        return entry

    def describe(self) -> dict:
        """JSON-able store summary (the ``/stats`` section)."""
        with self._lock:
            return {
                "resident": len(self._entries),
                "capacity": self.capacity,
                **self.stats.as_dict(),
            }
