"""GraphStore — the resident-graph registry of the serving layer.

A one-shot CLI re-parses its input on every invocation; a query engine
loads each graph **once**, fingerprints it (content hash over the
columnar edge structure, :meth:`repro.graph.Graph.fingerprint` — one
pass over the edge columns), and keeps it resident so every later
query skips parsing and hashing.  Residency also keeps the graph's
lazily built derived views (CSR adjacency, degree vector) warm across
queries: registered graphs are treated as frozen, so those caches —
like the kernels below — never go stale.
Graphs are addressed by a caller-chosen name; the fingerprint makes
result caches content-addressed, so re-registering the same graph under
a new name (or after an eviction) still hits warm cache entries.

Capacity is bounded: with more named graphs than ``capacity`` the
least-recently-*queried* one is evicted (its dependents — e.g. the
per-graph Gomory–Hu oracle — are released through ``on_evict``).

The store also owns the **kernelization cache**: one
:class:`~repro.preprocess.CutKernel` per (fingerprint, level), built
lazily by :meth:`GraphStore.kernel_for`, so every preprocessed query on
a resident graph starts from the reduced graph instead of re-running
the reduction pipeline.  Kernels are dropped when the last entry
holding their fingerprint leaves the store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..graph import Graph, load_any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..preprocess import CutKernel


@dataclass
class GraphEntry:
    """One resident graph plus its registration metadata."""

    name: str
    graph: Graph
    fingerprint: str
    num_vertices: int
    num_edges: int
    queries: int = 0
    source: str | None = None

    def describe(self) -> dict:
        """JSON-able summary (the ``/graphs`` row)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "queries": self.queries,
            "source": self.source,
        }


@dataclass
class StoreStats:
    registered: int = 0
    replaced: int = 0
    evictions: int = 0
    hits: int = 0
    misses: int = 0
    kernel_builds: int = 0
    kernel_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "registered": self.registered,
            "replaced": self.replaced,
            "evictions": self.evictions,
            "hits": self.hits,
            "misses": self.misses,
            "kernel_builds": self.kernel_builds,
            "kernel_hits": self.kernel_hits,
        }


class GraphStore:
    """Named registry of resident graphs with LRU eviction.

    ``capacity=None`` means unbounded.  ``on_evict`` (if given) is
    called with each evicted :class:`GraphEntry` so owners of derived
    state (oracles, etc.) can release it.
    """

    def __init__(
        self,
        *,
        capacity: int | None = None,
        on_evict: Callable[[GraphEntry], None] | None = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._entries: OrderedDict[str, GraphEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._on_evict = on_evict
        self.stats = StoreStats()
        # kernelization cache: (fingerprint, level) -> CutKernel and
        # (fingerprint, ("kcut", k, level)) -> KCutKernel, so every
        # preprocessed query on a resident graph starts from the
        # kernel.  Content-addressed like the oracle cache: two names
        # holding the same graph share one kernel per level.
        self._kernels: dict[tuple, "CutKernel"] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, graph: Graph, *, source: str | None = None
    ) -> GraphEntry:
        """Admit ``graph`` under ``name`` (replacing any previous holder).

        Fingerprinting happens here, exactly once per registration; the
        entry is marked most-recently-used.
        """
        if not name:
            raise ValueError("graph name must be non-empty")
        entry = GraphEntry(
            name=name,
            graph=graph,
            fingerprint=graph.fingerprint(),
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            source=source,
        )
        evicted: list[GraphEntry] = []
        with self._lock:
            replaced = self._entries.pop(name, None)
            if replaced is not None:
                # The old holder leaves the store like any eviction, so
                # derived state (oracles) keyed on its content is freed.
                self.stats.replaced += 1
                evicted.append(replaced)
            self._entries[name] = entry
            self.stats.registered += 1
            while self.capacity is not None and len(self._entries) > self.capacity:
                _, old = self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted.append(old)
            self._drop_orphan_kernels(evicted)
        for old in evicted:
            if self._on_evict is not None:
                self._on_evict(old)
        return entry

    def register_file(self, name: str, path: Path | str) -> GraphEntry:
        """Load ``path`` (edge list / DIMACS / METIS) and register it."""
        return self.register(name, load_any(path), source=str(path))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> GraphEntry:
        """Fetch an entry, refreshing its LRU recency and query count."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                self.stats.misses += 1
                raise KeyError(f"no graph registered under {name!r}")
            self._entries.move_to_end(name)
            self.stats.hits += 1
            entry.queries += 1
            return entry

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def names(self) -> list[str]:
        """Registered names, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def entries(self) -> list[GraphEntry]:
        with self._lock:
            return list(self._entries.values())

    def evict(self, name: str) -> GraphEntry:
        """Explicitly drop ``name``; returns the evicted entry."""
        with self._lock:
            if name not in self._entries:
                raise KeyError(f"no graph registered under {name!r}")
            entry = self._entries.pop(name)
            self.stats.evictions += 1
            self._drop_orphan_kernels([entry])
        if self._on_evict is not None:
            self._on_evict(entry)
        return entry

    # ------------------------------------------------------------------
    # Kernelization cache
    # ------------------------------------------------------------------
    def kernel_for(self, entry: GraphEntry, level: str) -> "CutKernel":
        """The cached :class:`~repro.preprocess.CutKernel` of an entry.

        Built lazily, once per (fingerprint, level): every later query
        on a resident graph starts from the kernel instead of the raw
        graph.  Registered graphs are frozen (see
        :meth:`repro.graph.Graph.fingerprint`), so the kernel never
        goes stale; eviction of the last entry holding a fingerprint
        drops its kernels.
        """
        from ..preprocess import kernelize, validate_level

        level = validate_level(level)
        key = (entry.fingerprint, level)
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self.stats.kernel_hits += 1
                return kernel
        # Kernelize outside the lock: reductions are O(m) per round and
        # must not wedge concurrent store lookups.
        kernel = kernelize(entry.graph, level=level)
        with self._lock:
            self.stats.kernel_builds += 1
            # Cache only while the fingerprint is still resident — the
            # entry may have been evicted mid-build, and caching then
            # would pin the graph forever (same rule as the oracle
            # cache in CutService._oracle_for).
            if any(
                e.fingerprint == entry.fingerprint
                for e in self._entries.values()
            ):
                self._kernels.setdefault(key, kernel)
                kernel = self._kernels[key]
        return kernel

    def kcut_kernel_for(self, entry: GraphEntry, k: int, level: str):
        """The cached :class:`~repro.preprocess.KCutKernel` of an entry.

        Same contract as :meth:`kernel_for`, keyed by ``(fingerprint,
        ("kcut", k, level))`` so the eviction sweep (which matches on
        the fingerprint element) releases both kinds of kernel.
        """
        from ..preprocess import kernelize_for_kcut, validate_level

        level = validate_level(level)
        key = (entry.fingerprint, ("kcut", k, level))
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self.stats.kernel_hits += 1
                return kernel
        kernel = kernelize_for_kcut(entry.graph, k, level=level)
        with self._lock:
            self.stats.kernel_builds += 1
            if any(
                e.fingerprint == entry.fingerprint
                for e in self._entries.values()
            ):
                self._kernels.setdefault(key, kernel)
                kernel = self._kernels[key]
        return kernel

    def _drop_orphan_kernels(self, evicted: list[GraphEntry]) -> None:
        """Drop kernels whose fingerprint no longer has a resident entry.

        Caller must hold ``self._lock``.
        """
        if not self._kernels or not evicted:
            return
        resident = {e.fingerprint for e in self._entries.values()}
        for entry in evicted:
            if entry.fingerprint in resident:
                continue
            for key in [k for k in self._kernels if k[0] == entry.fingerprint]:
                del self._kernels[key]

    def describe(self) -> dict:
        """JSON-able store summary (the ``/stats`` section)."""
        with self._lock:
            return {
                "resident": len(self._entries),
                "capacity": self.capacity,
                "kernels_resident": len(self._kernels),
                **self.stats.as_dict(),
            }
