"""Serving layer: a long-lived cut-query engine over the SPAA'22 kernels.

The library answers one question per process; this package turns it
into a system that answers millions.  Amortisation points, in query
order:

* parse + fingerprint once — :class:`GraphStore`;
* boosting trials in parallel — :class:`TrialExecutor` (deterministic:
  worker count never changes the answer);
* repeated s–t queries from one Gomory–Hu tree — :class:`CutOracle`;
* repeated identical queries from an LRU — :class:`LRUCache`.

:class:`CutService` composes the four; :func:`make_server` /
:func:`serve` put a stdlib JSON-over-HTTP front end on top
(``repro-cut serve`` / ``repro-cut query``).  Graphs are not frozen:
:class:`GraphDelta` batches of edge adds/removes/reweights mutate a
resident graph in place (``/mutate`` / ``repro-cut mutate``) with
selective invalidation of the caches above — see
:mod:`repro.service.deltas` and the request-lifecycle walkthrough in
``docs/ARCHITECTURE.md``.  Future scaling PRs (sharding, async I/O,
alternative backends) plug in behind the same :class:`CutService`
surface.
"""

from ..graph import load_any
from .cache import LRUCache
from .deltas import (
    DeltaEffect,
    FingerprintMismatch,
    GraphDelta,
    MutationRecord,
    apply_delta,
    chain_fingerprint,
)
from .executor import TrialExecutor, default_trials, trial_seeds
from .oracle import CutOracle
from .service import CutService
from .store import GraphEntry, GraphStore
from .frontend import (
    AdmissionGate,
    Frontend,
    HashRing,
    InlineBackend,
    Overloaded,
    QueryCoalescer,
    ShardPool,
    make_frontend,
)
from .http import (
    ServiceHTTPServer,
    make_server,
    request_json,
    request_status_json,
    serve,
)

__all__ = [
    "AdmissionGate",
    "CutOracle",
    "CutService",
    "DeltaEffect",
    "FingerprintMismatch",
    "Frontend",
    "GraphDelta",
    "GraphEntry",
    "GraphStore",
    "HashRing",
    "InlineBackend",
    "LRUCache",
    "MutationRecord",
    "Overloaded",
    "QueryCoalescer",
    "ServiceHTTPServer",
    "ShardPool",
    "TrialExecutor",
    "apply_delta",
    "chain_fingerprint",
    "default_trials",
    "load_any",
    "make_frontend",
    "make_server",
    "request_json",
    "request_status_json",
    "serve",
    "trial_seeds",
]
