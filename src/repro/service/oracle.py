"""CutOracle — amortised s–t min-cut queries via a Gomory–Hu tree.

A fresh max-flow per ``/stcut`` query costs ``O(n * m)``-ish per query;
a Gomory–Hu tree (Definition 8, :mod:`repro.flow.gomory_hu`) costs
``n - 1`` max-flows **once** and then answers *every* pair query with
an ``O(n)`` tree-path walk.  That trade is the whole point of a
long-lived serving process: the first query on a graph pays the build,
every later query on the same graph is near-free.

The oracle is lazy (no tree until the first query) and thread-safe
with two locks: ``_build_lock`` serialises the expensive tree build /
repair, while ``_lock`` guards only counters, state snapshots and the
pair memo — so ``stats()`` (the ``/stats`` liveness path) never blocks
behind a build in progress.  ``builds``, ``tree_queries`` (answered by
walking an already-built tree) and ``pair_hits`` (answered from the
bounded per-pair memo without even walking) feed ``/stats``, which is
how the acceptance test verifies the second query was served from
cache.

Surviving mutations — the fully dynamic story
---------------------------------------------
``/mutate`` (:meth:`repro.service.service.CutService.mutate`) calls
:meth:`CutOracle.apply_delta` instead of discarding the oracle.  s–t
min-cut *values* are exact and unique, so a retained answer is
automatically bit-identical to a recomputation — retention only has to
be *sound*.  The oracle tracks the **net** weight change per vertex
pair since its last *exactness point* (the last full build or repair,
when every tree label was an exact min-cut value) and settles lazily
on the next query:

* **increase-only net** (adds between known vertices, reinforcements,
  upward reweights) — the tree is *masked*: edges whose recorded cut
  (``child_side``) some net pair crosses are marked touched, and every
  later answer must pass a per-query certificate (below) or trigger a
  rebuild.  No max-flows are spent.
* **any net decrease** (removes, downward reweights) — the tree is
  *repaired* in place by :func:`repro.flow.gomory_hu.repair_gomory_hu`:
  only tree edges whose recorded cut a net pair crosses, or whose
  label exceeds the cheapest new min-cut over the decreased pairs (the
  L-guard), are recomputed with one max-flow each; untouched subtrees
  are kept verbatim.  A successful repair is a new exactness point.
  When the repair cannot beat a rebuild (too many edges affected, a
  disconnecting delta, …) the tree is dropped and rebuilt lazily —
  ``repair_fallbacks`` counts those.
* **new vertices** — the tree cannot know them; dropped and rebuilt
  lazily.

The per-query certificate: a retained answer is served only if some
path edge achieving the tree-path minimum is (a) **untouched** and (b)
its recorded side **separates** ``s`` from ``t`` — then that cut still
exists in the mutated graph at the served weight (upper bound), while
the path minimum over exact labels is a lower bound by the min-cut
triangle inequality.  Check (b) matters because Gusfield trees are
only flow-equivalent: recorded sides need not match tree bipartitions,
which is also why repaired trees keep certifying every answer (an
uncertifiable query falls back to a full rebuild, counted in
``mask_rebuilds``).  ``mask_hits`` counts certificate saves;
``repairs`` / ``repaired_edges`` count localized repairs and the tree
edges they recomputed.
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable

from ..flow import GomoryHuTree, gomory_hu_tree, repair_gomory_hu
from ..graph import Graph
from ..obs.metrics import MetricsRegistry, MetricsScope
from ..obs.tracing import NULL_TRACER, Tracer
from .cache import LRUCache
from .deltas import _pair_key

Vertex = Hashable

#: pairs memoised per graph; bounded so a server answering diverse
#: pairs on a big graph cannot grow O(n^2) state (the tree walk behind
#: a memo miss is O(n) anyway)
PAIR_MEMO_CAPACITY = 4096

_MISS = object()


class CutOracle:
    """Per-graph oracle answering s–t min-cut queries from one GH tree."""

    #: the registry-counter fields behind the ``stats()`` dict; each
    #: oracle owns a private scope so per-fingerprint stats stay
    #: distinguishable (the service aggregates them for ``/metrics``)
    COUNTER_FIELDS = (
        "builds",
        "tree_queries",
        "mask_hits",
        "mask_rebuilds",
        "deltas_retained",
        "deltas_dropped",
        "repairs",
        "repaired_edges",
        "repair_fallbacks",
    )

    def __init__(
        self,
        graph: Graph,
        *,
        engine: str = "dinic",
        metrics: MetricsScope | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.graph = graph
        self.engine = engine
        self._tree: GomoryHuTree | None = None
        self._lock = threading.Lock()
        self._build_lock = threading.Lock()
        if metrics is None:
            metrics = MetricsRegistry().scope("oracle")
        self._counters = {
            f: metrics.counter(f) for f in self.COUNTER_FIELDS
        }
        self._tracer = tracer
        self._pair_memo = LRUCache(
            PAIR_MEMO_CAPACITY, metrics=metrics.scope("pairs")
        )
        #: bumped by every absorbed delta, repair and rebuild; a query
        #: memoises its value only if the epoch it computed under is
        #: still current, so an in-flight query racing a mutation can
        #: never re-populate the just-cleared memo with a pre-mutation
        #: answer.
        self._epoch = 0
        #: children of tree edges whose labels may be stale (their
        #: recorded cut is crossed by some net change); None = every
        #: query may skip certificates (fresh full build, no pending
        #: net).  A *repaired* tree keeps an **empty** set here: all
        #: labels are exact, but certificates stay required because
        #: repaired sides need not be tree bipartitions.
        self._touched: set[Vertex] | None = None
        #: net weight change per pair since the last exactness point:
        #: pair_key -> (u, v, base, new).  Pairs whose change cancels
        #: out are removed, so masking / repair never pays for
        #: reverted edits.  Guarded by ``_build_lock`` for writes.
        self._net: dict = {}
        #: True when ``_net`` changed since the last settle; queries
        #: settle (mask or repair) before answering.
        self._dirty = False
        #: True when the current tree's exactness point was a repair
        #: (certificates required even with an empty net).
        self._repaired_base = False

    def __getattr__(self, name: str) -> int:
        # counter reads stay plain ints (``oracle.builds``), matching
        # the pre-registry attribute contract
        try:
            return self.__dict__["_counters"][name].value
        except KeyError:
            raise AttributeError(name) from None

    def _inc(self, name: str) -> None:
        self._counters[name].inc()

    # ------------------------------------------------------------------
    def tree(self) -> GomoryHuTree:
        """The Gomory–Hu tree, built on first demand.

        Concurrent first queries serialise on the build lock; only the
        winner builds.  The counter lock is never held during the
        ``n - 1`` max-flows, so ``stats()`` stays responsive.
        """
        tree = self._tree
        if tree is not None:
            return tree
        with self._build_lock:
            if self._tree is None:
                with self._tracer.span("oracle.build") as sp:
                    if sp:
                        sp.set(
                            engine=self.engine,
                            num_vertices=self.graph.num_vertices,
                        )
                    built = gomory_hu_tree(self.graph, engine=self.engine)
                with self._lock:
                    self._tree = built
                    self._touched = None
                    self._net = {}
                    self._dirty = False
                    self._repaired_base = False
                    self._inc("builds")
            return self._tree

    @property
    def built(self) -> bool:
        return self._tree is not None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        graph: Graph,
        changed: Iterable[tuple[Vertex, Vertex, float, float]],
        *,
        has_new_vertices: bool,
    ) -> str:
        """Absorb a graph mutation; returns the action taken.

        ``graph`` is the (possibly copied-on-write) mutated graph this
        oracle now answers for; ``changed`` lists the delta's effective
        weight changes as ``(u, v, old, new)`` tuples (``0.0`` = pair
        absent).  Actions:

        * ``"unbuilt"`` — no tree yet, nothing to invalidate;
        * ``"masked"`` — the accumulated net change is increase-only
          (or empty): the tree is kept and later answers are gated by
          per-query certificates against the touched-edge mask;
        * ``"repair-pending"`` — the net contains a decrease: the tree
          is kept and a localized repair runs lazily on the next query
          (falling back to a rebuild when repair cannot win);
        * ``"dropped"`` — the delta introduces new vertices the tree
          cannot know; discarded and rebuilt lazily.

        Settling is lazy in every retained case: ``apply_delta`` only
        folds the changes into the running per-pair net (so reverted
        edits cancel instead of accumulating) and marks the oracle
        dirty.  The pair memo is cleared in every case except
        ``"unbuilt"`` — memoised values were computed for the old
        content.
        """
        with self._build_lock:
            self.graph = graph
            with self._lock:
                self._epoch += 1
                self._pair_memo.clear()
            if self._tree is None:
                return "unbuilt"
            if has_new_vertices:
                with self._lock:
                    self._tree = None
                    self._touched = None
                    self._net = {}
                    self._dirty = False
                    self._repaired_base = False
                    self._inc("deltas_dropped")
                return "dropped"
            net = self._net
            for u, v, old, new in changed:
                key = _pair_key(u, v)
                prior = net.get(key)
                base = old if prior is None else prior[2]
                if base == new:
                    net.pop(key, None)
                else:
                    net[key] = (u, v, base, new)
            has_decrease = any(
                new < base for _, _, base, new in net.values()
            )
            with self._lock:
                self._dirty = True
                self._inc("deltas_retained")
            return "repair-pending" if has_decrease else "masked"

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Fold the pending net into the tree (mask or repair).

        Runs under the build lock on the first query after a retained
        mutation.  Increase-only nets just recompute the touched-edge
        mask (zero max-flows); nets with decreases run the localized
        repair, falling back to a lazy full rebuild when the repair
        cannot beat one (``repair_fallbacks``).
        """
        with self._build_lock:
            if not self._dirty or self._tree is None:
                return
            tree = self._tree
            net = self._net
            has_decrease = any(
                new < base for _, _, base, new in net.values()
            )
            if not has_decrease:
                if not net and not self._repaired_base:
                    touched = None
                else:
                    pairs = [(u, v) for u, v, _, _ in net.values()]
                    touched = {
                        e.child
                        for e in tree.edges
                        if any(
                            (u in e.child_side) != (v in e.child_side)
                            for u, v in pairs
                        )
                    }
                with self._lock:
                    self._touched = touched
                    self._dirty = False
                return
            # Net contains a decrease: repair.  A disconnecting delta
            # cannot be repaired — drop, so the next build raises the
            # same "graph must be connected" a cold upload would.
            n = self.graph.num_vertices
            repaired = None
            if len(self.graph.components()) == 1:
                with self._tracer.span("oracle.repair") as sp:
                    repaired = repair_gomory_hu(
                        tree,
                        self.graph,
                        net.values(),
                        engine=self.engine,
                        max_flows=max(n - 2, 0),
                    )
                    if sp:
                        sp.set(
                            num_vertices=n,
                            net_pairs=len(net),
                            repaired_edges=(
                                len(repaired[1]) if repaired else -1
                            ),
                        )
            if repaired is None:
                with self._lock:
                    self._tree = None
                    self._touched = None
                    self._net = {}
                    self._dirty = False
                    self._repaired_base = False
                    self._epoch += 1
                    self._inc("repair_fallbacks")
                return
            new_tree, recomputed = repaired
            with self._lock:
                self._tree = new_tree
                self._touched = set()
                self._net = {}
                self._dirty = False
                self._repaired_base = True
                self._epoch += 1
                self._inc("repairs")
                self._counters["repaired_edges"].inc(len(recomputed))

    def _rebuild(self) -> GomoryHuTree:
        """Rebuild from the (mutated) graph; clears mask and net.

        Bumps the epoch: a concurrent query that fetched the old masked
        tree and then observed ``_touched is None`` would otherwise
        skip certification against a stale tree *and* pass the memo
        guard — the epoch bump makes its (pre-mutation-exact) value
        non-memoisable.
        """
        with self._build_lock:
            if (
                self._tree is not None
                and self._touched is None
                and not self._dirty
            ):
                return self._tree  # another thread rebuilt first
            with self._tracer.span("oracle.build") as sp:
                if sp:
                    sp.set(
                        engine=self.engine,
                        num_vertices=self.graph.num_vertices,
                        rebuild=True,
                    )
                built = gomory_hu_tree(self.graph, engine=self.engine)
            with self._lock:
                self._tree = built
                self._touched = None
                self._net = {}
                self._dirty = False
                self._repaired_base = False
                self._epoch += 1
                self._inc("builds")
                self._inc("mask_rebuilds")
            return built

    def _snapshot(
        self,
    ) -> tuple[GomoryHuTree | None, set | None, int, bool]:
        """Consistent (tree, touched, epoch, dirty) tuple.

        Tree and mask must be read together: ``_rebuild`` / ``_settle``
        swap them as a pair, and a torn read (old tree + cleared mask)
        would serve uncertified stale labels.  Every writer updates
        both under ``_lock``.
        """
        with self._lock:
            return self._tree, self._touched, self._epoch, self._dirty

    def _current(self) -> tuple[GomoryHuTree, set | None, int]:
        """A built, settled, consistent (tree, touched, epoch) —
        building / settling lazily and retrying if a concurrent delta
        dirties the state mid-read."""
        while True:
            tree, touched, epoch, dirty = self._snapshot()
            if tree is not None and not dirty:
                return tree, touched, epoch
            if tree is None:
                self.tree()
            else:
                self._settle()

    # ------------------------------------------------------------------
    def st_min_cut(self, s: Vertex, t: Vertex) -> float:
        """Min s–t cut value = min edge weight on the tree path.

        After a retained mutation (masked or repaired tree) the path
        minimum is only served if certified — some argmin edge is
        untouched *and* its recorded cut separates ``s`` from ``t``
        (see the module docstring for why that makes the value exact).
        Uncertified queries rebuild the tree from the mutated graph.
        """
        if s == t:
            raise ValueError("s == t")
        key = (s, t) if repr(s) <= repr(t) else (t, s)
        with self._tracer.span("oracle.query") as sp:
            value = self._pair_memo.get(key, _MISS)
            if value is not _MISS:
                if sp:
                    sp.set(tier="memo")
                return value
            tree, touched, epoch = self._current()
            if touched is None:
                value = tree.min_cut_between(s, t)
                tier = "tree"
            else:
                value = self._certified_value(tree, touched, s, t)
                if value is None:
                    value = self._rebuild().min_cut_between(s, t)
                    tier = "rebuild"
                else:
                    tier = "certified"
                    with self._lock:
                        self._inc("mask_hits")
            if sp:
                sp.set(tier=tier)
            with self._lock:
                self._inc("tree_queries")
                # Memoise only if no delta arrived while computing: the
                # value describes the graph as of `epoch`, and a
                # concurrent apply_delta has already cleared the memo
                # for good reason.
                if self._epoch == epoch:
                    self._pair_memo.put(key, value)
            return value

    def _certified_value(
        self, tree: GomoryHuTree, touched: set, s: Vertex, t: Vertex
    ) -> float | None:
        """Path minimum, if some argmin edge certifies it; else None."""
        path = tree.path_edges(s, t)
        value = min(e.weight for e in path)
        for e in path:
            if e.weight != value or e.child in touched:
                continue
            if (s in e.child_side) != (t in e.child_side):
                return value
        return None

    def all_pairs(self) -> dict:
        """Every pairwise min-cut value ``{u: {v: value}}`` — exact on
        every settle path.

        A fresh tree answers the whole matrix with one ``O(n^2)`` walk
        (:meth:`GomoryHuTree.all_pairs_min_cuts`).  Masked or repaired
        trees fall back to per-pair :meth:`st_min_cut`, whose
        certify-or-rebuild contract keeps each value exact — and whose
        first uncertifiable pair upgrades the oracle to a fresh tree,
        so the remaining pairs are plain walks.  Either way the values
        are the unique min-cut values of the current graph, which is
        what lets ``/gomoryhu`` promise bit-identical payloads across
        the fresh, masked and repaired paths.
        """
        with self._tracer.span("oracle.allpairs") as sp:
            tree, touched, _ = self._current()
            if touched is None:
                if sp:
                    sp.set(tier="tree",
                           num_vertices=self.graph.num_vertices)
                with self._lock:
                    self._inc("tree_queries")
                return tree.all_pairs_min_cuts()
            if sp:
                sp.set(tier="pairwise",
                       num_vertices=self.graph.num_vertices)
            vs = self.graph.vertices()
            out: dict = {v: {} for v in vs}
            for i, s in enumerate(vs):
                for t in vs[i + 1:]:
                    value = self.st_min_cut(s, t)
                    out[s][t] = value
                    out[t][s] = value
            return out

    @property
    def pair_hits(self) -> int:
        return self._pair_memo.hits

    def global_min_cut(self) -> float:
        """Global min cut = lightest tree edge (exact, not approximate).

        Under a mutation mask the lightest edge certifies itself the
        same way a path argmin does (its recorded side is a real cut of
        unchanged weight, and increase-only deltas can't have produced
        a lighter cut); a touched lightest edge forces a rebuild.  On a
        repaired tree every label is exact, so the lightest edge always
        certifies (the tree-path argument makes the minimum label the
        exact global min cut with no side check needed).
        """
        tree, touched, _ = self._current()
        if touched is None:
            return tree.min_cut_value()
        value = tree.min_cut_value()
        if not touched or any(
            e.weight == value and e.child not in touched for e in tree.edges
        ):
            with self._lock:
                self._inc("mask_hits")
            return value
        return self._rebuild().min_cut_value()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            built = self._tree is not None
            if self._dirty:
                mode = "pending"
            elif self._touched is None:
                mode = "fresh"
            elif self._repaired_base and not self._touched:
                mode = "repaired"
            else:
                mode = "masked"
            stats = {
                "built": built,
                "mode": mode,
                "builds": self.builds,
                "tree_queries": self.tree_queries,
                "mask_hits": self.mask_hits,
                "mask_rebuilds": self.mask_rebuilds,
                "deltas_retained": self.deltas_retained,
                "deltas_dropped": self.deltas_dropped,
                "repairs": self.repairs,
                "repaired_edges": self.repaired_edges,
                "repair_fallbacks": self.repair_fallbacks,
                "pending_pairs": len(self._net),
            }
        memo = self._pair_memo.stats()
        stats["pair_hits"] = memo["hits"]
        stats["memoised_pairs"] = memo["size"]
        return stats
