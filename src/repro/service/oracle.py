"""CutOracle — amortised s–t min-cut queries via a Gomory–Hu tree.

A fresh max-flow per ``/stcut`` query costs ``O(n * m)``-ish per query;
a Gomory–Hu tree (Definition 8, :mod:`repro.flow.gomory_hu`) costs
``n - 1`` max-flows **once** and then answers *every* pair query with
an ``O(n)`` tree-path walk.  That trade is the whole point of a
long-lived serving process: the first query on a graph pays the build,
every later query on the same graph is near-free.

The oracle is lazy (no tree until the first query) and thread-safe
with two locks: ``_build_lock`` serialises the expensive tree build,
while ``_lock`` guards only counters and the pair memo — so ``stats()``
(the ``/stats`` liveness path) never blocks behind a build in progress.
``builds``, ``tree_queries`` (answered by walking an already-built
tree) and ``pair_hits`` (answered from the bounded per-pair memo
without even walking) feed ``/stats``, which is how the acceptance
test verifies the second query was served from cache.

Surviving mutations
-------------------
``/mutate`` (:meth:`repro.service.service.CutService.mutate`) calls
:meth:`CutOracle.apply_delta` instead of discarding the oracle.  s–t
min-cut *values* are exact and unique, so a retained answer is
automatically bit-identical to a recomputation — retention only has to
be *sound*, and the monotone case makes it cheaply checkable:

* a delta that only **increases** edge weights (adds between known
  vertices, reinforces, upward reweights) can only raise cut values;
* every tree edge records the concrete cut side its max-flow found
  (``child_side``); a changed edge with both endpoints on one side of
  that cut leaves the cut's weight untouched;
* so on a later query, if some path edge achieving the path minimum is
  (a) **uncrossed** by every changed pair and (b) its recorded side
  **separates** ``s`` from ``t``, that cut still exists in the mutated
  graph at the old weight — the value can't have dropped (it's a cut)
  and can't have risen (increase-only), hence it is exact and the old
  tree answers.  (Check (b) matters because Gusfield trees are only
  flow-equivalent: recorded sides need not match tree bipartitions.)

Queries whose certificate fails — and any delta that removes edges,
lowers weights, or introduces new vertices — fall back to a rebuild
from the mutated graph (lazily, on the next query that needs it).
``mask_hits`` / ``mask_rebuilds`` in :meth:`stats` count how often the
certificate saved the ``n - 1`` max-flows.
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable

from ..flow import GomoryHuTree, gomory_hu_tree
from ..graph import Graph
from ..obs.metrics import MetricsRegistry, MetricsScope
from ..obs.tracing import NULL_TRACER, Tracer
from .cache import LRUCache

Vertex = Hashable

#: pairs memoised per graph; bounded so a server answering diverse
#: pairs on a big graph cannot grow O(n^2) state (the tree walk behind
#: a memo miss is O(n) anyway)
PAIR_MEMO_CAPACITY = 4096

_MISS = object()


class CutOracle:
    """Per-graph oracle answering s–t min-cut queries from one GH tree."""

    #: the registry-counter fields behind the ``stats()`` dict; each
    #: oracle owns a private scope so per-fingerprint stats stay
    #: distinguishable (the service aggregates them for ``/metrics``)
    COUNTER_FIELDS = (
        "builds",
        "tree_queries",
        "mask_hits",
        "mask_rebuilds",
        "deltas_retained",
        "deltas_dropped",
    )

    def __init__(
        self,
        graph: Graph,
        *,
        engine: str = "dinic",
        metrics: MetricsScope | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.graph = graph
        self.engine = engine
        self._tree: GomoryHuTree | None = None
        self._lock = threading.Lock()
        self._build_lock = threading.Lock()
        if metrics is None:
            metrics = MetricsRegistry().scope("oracle")
        self._counters = {
            f: metrics.counter(f) for f in self.COUNTER_FIELDS
        }
        self._tracer = tracer
        self._pair_memo = LRUCache(
            PAIR_MEMO_CAPACITY, metrics=metrics.scope("pairs")
        )
        #: bumped by every absorbed delta; a query memoises its value
        #: only if the epoch it computed under is still current, so an
        #: in-flight query racing a mutation can never re-populate the
        #: just-cleared memo with a pre-mutation answer.
        self._epoch = 0
        #: children of tree edges whose recorded cut some delta crossed
        #: (their labels may be stale); None = no mutation since build,
        #: certificates not required.
        self._touched: set[Vertex] | None = None

    def __getattr__(self, name: str) -> int:
        # counter reads stay plain ints (``oracle.builds``), matching
        # the pre-registry attribute contract
        try:
            return self.__dict__["_counters"][name].value
        except KeyError:
            raise AttributeError(name) from None

    def _inc(self, name: str) -> None:
        self._counters[name].inc()

    # ------------------------------------------------------------------
    def tree(self) -> GomoryHuTree:
        """The Gomory–Hu tree, built on first demand.

        Concurrent first queries serialise on the build lock; only the
        winner builds.  The counter lock is never held during the
        ``n - 1`` max-flows, so ``stats()`` stays responsive.
        """
        tree = self._tree
        if tree is not None:
            return tree
        with self._build_lock:
            if self._tree is None:
                with self._tracer.span("oracle.build") as sp:
                    if sp:
                        sp.set(
                            engine=self.engine,
                            num_vertices=self.graph.num_vertices,
                        )
                    built = gomory_hu_tree(self.graph, engine=self.engine)
                with self._lock:
                    self._tree = built
                    self._inc("builds")
            return self._tree

    @property
    def built(self) -> bool:
        return self._tree is not None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        graph: Graph,
        changed_pairs: Iterable[tuple[Vertex, Vertex]],
        *,
        increase_only: bool,
        has_new_vertices: bool,
    ) -> str:
        """Absorb a graph mutation; returns the action taken.

        ``graph`` is the (possibly copied-on-write) mutated graph this
        oracle now answers for.  Actions:

        * ``"unbuilt"`` — no tree yet, nothing to invalidate;
        * ``"masked"`` — increase-only delta over known vertices: the
          tree is kept, edges whose recorded cut a changed pair crosses
          are marked touched, and every later answer must pass the
          certificate in :meth:`st_min_cut` or trigger a rebuild;
        * ``"dropped"`` — removes / weight decreases / new vertices:
          cut values may have fallen (or the tree doesn't know the
          vertex), so the tree is discarded and rebuilt lazily.

        The pair memo is cleared in every case except ``"unbuilt"``
        with no prior tree — memoised values were computed for the old
        content.
        """
        with self._build_lock:
            self.graph = graph
            with self._lock:
                self._epoch += 1
                self._pair_memo.clear()
            if self._tree is None:
                return "unbuilt"
            if not increase_only or has_new_vertices:
                with self._lock:
                    self._tree = None
                    self._touched = None
                    self._inc("deltas_dropped")
                return "dropped"
            touched = self._touched if self._touched is not None else set()
            pairs = list(changed_pairs)
            for e in self._tree.edges:
                if e.child in touched:
                    continue
                side = e.child_side
                for u, v in pairs:
                    if (u in side) != (v in side):
                        touched.add(e.child)
                        break
            with self._lock:
                self._touched = touched
                self._inc("deltas_retained")
            return "masked"

    def _rebuild(self) -> GomoryHuTree:
        """Rebuild from the (mutated) graph; clears the mask.

        Bumps the epoch: a concurrent query that fetched the old masked
        tree and then observed ``_touched is None`` would otherwise
        skip certification against a stale tree *and* pass the memo
        guard — the epoch bump makes its (pre-mutation-exact) value
        non-memoisable.
        """
        with self._build_lock:
            if self._touched is None and self._tree is not None:
                return self._tree  # another thread rebuilt first
            with self._tracer.span("oracle.build") as sp:
                if sp:
                    sp.set(
                        engine=self.engine,
                        num_vertices=self.graph.num_vertices,
                        rebuild=True,
                    )
                built = gomory_hu_tree(self.graph, engine=self.engine)
            with self._lock:
                self._tree = built
                self._touched = None
                self._epoch += 1
                self._inc("builds")
                self._inc("mask_rebuilds")
            return built

    def _snapshot(self) -> tuple[GomoryHuTree | None, set | None, int]:
        """Consistent (tree, touched, epoch) triple.

        Tree and mask must be read together: ``_rebuild`` swaps them as
        a pair, and a torn read (old tree + cleared mask) would serve
        uncertified stale labels.  Every writer updates both under
        ``_lock``.
        """
        with self._lock:
            return self._tree, self._touched, self._epoch

    def _current(self) -> tuple[GomoryHuTree, set | None, int]:
        """A built, consistent (tree, touched, epoch) — building lazily
        and retrying if a concurrent delta drops the tree mid-read."""
        while True:
            tree, touched, epoch = self._snapshot()
            if tree is not None:
                return tree, touched, epoch
            self.tree()

    # ------------------------------------------------------------------
    def st_min_cut(self, s: Vertex, t: Vertex) -> float:
        """Min s–t cut value = min edge weight on the tree path.

        After a retained (``"masked"``) mutation the path minimum is
        only served if certified — some argmin edge is uncrossed by
        every change *and* its recorded cut separates ``s`` from ``t``
        (see the module docstring for why that makes the value exact).
        Uncertified queries rebuild the tree from the mutated graph.
        """
        if s == t:
            raise ValueError("s == t")
        key = (s, t) if repr(s) <= repr(t) else (t, s)
        with self._tracer.span("oracle.query") as sp:
            value = self._pair_memo.get(key, _MISS)
            if value is not _MISS:
                if sp:
                    sp.set(tier="memo")
                return value
            tree, touched, epoch = self._current()
            if touched is None:
                value = tree.min_cut_between(s, t)
                tier = "tree"
            else:
                value = self._certified_value(tree, touched, s, t)
                if value is None:
                    value = self._rebuild().min_cut_between(s, t)
                    tier = "rebuild"
                else:
                    tier = "certified"
                    with self._lock:
                        self._inc("mask_hits")
            if sp:
                sp.set(tier=tier)
            with self._lock:
                self._inc("tree_queries")
                # Memoise only if no delta arrived while computing: the
                # value describes the graph as of `epoch`, and a
                # concurrent apply_delta has already cleared the memo
                # for good reason.
                if self._epoch == epoch:
                    self._pair_memo.put(key, value)
            return value

    def _certified_value(
        self, tree: GomoryHuTree, touched: set, s: Vertex, t: Vertex
    ) -> float | None:
        """Path minimum, if some argmin edge certifies it; else None."""
        path = tree.path_edges(s, t)
        value = min(e.weight for e in path)
        for e in path:
            if e.weight != value or e.child in touched:
                continue
            if (s in e.child_side) != (t in e.child_side):
                return value
        return None

    @property
    def pair_hits(self) -> int:
        return self._pair_memo.hits

    def global_min_cut(self) -> float:
        """Global min cut = lightest tree edge (exact, not approximate).

        Under a mutation mask the lightest edge certifies itself the
        same way a path argmin does (its recorded side is a real cut of
        unchanged weight, and increase-only deltas can't have produced
        a lighter cut); a touched lightest edge forces a rebuild.
        """
        tree, touched, _ = self._current()
        if touched is None:
            return tree.min_cut_value()
        value = tree.min_cut_value()
        if any(
            e.weight == value and e.child not in touched for e in tree.edges
        ):
            with self._lock:
                self._inc("mask_hits")
            return value
        return self._rebuild().min_cut_value()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            built = self._tree is not None
            masked = self._touched is not None
            stats = {
                "built": built,
                "mode": "masked" if masked else "fresh",
                "builds": self.builds,
                "tree_queries": self.tree_queries,
                "mask_hits": self.mask_hits,
                "mask_rebuilds": self.mask_rebuilds,
                "deltas_retained": self.deltas_retained,
                "deltas_dropped": self.deltas_dropped,
            }
        memo = self._pair_memo.stats()
        stats["pair_hits"] = memo["hits"]
        stats["memoised_pairs"] = memo["size"]
        return stats
