"""CutOracle — amortised s–t min-cut queries via a Gomory–Hu tree.

A fresh max-flow per ``/stcut`` query costs ``O(n * m)``-ish per query;
a Gomory–Hu tree (Definition 8, :mod:`repro.flow.gomory_hu`) costs
``n - 1`` max-flows **once** and then answers *every* pair query with
an ``O(n)`` tree-path walk.  That trade is the whole point of a
long-lived serving process: the first query on a graph pays the build,
every later query on the same graph is near-free.

The oracle is lazy (no tree until the first query) and thread-safe
with two locks: ``_build_lock`` serialises the expensive tree build,
while ``_lock`` guards only counters and the pair memo — so ``stats()``
(the ``/stats`` liveness path) never blocks behind a build in progress.
``builds``, ``tree_queries`` (answered by walking an already-built
tree) and ``pair_hits`` (answered from the bounded per-pair memo
without even walking) feed ``/stats``, which is how the acceptance
test verifies the second query was served from cache.
"""

from __future__ import annotations

import threading
from typing import Hashable

from ..flow import GomoryHuTree, gomory_hu_tree
from ..graph import Graph
from .cache import LRUCache

Vertex = Hashable

#: pairs memoised per graph; bounded so a server answering diverse
#: pairs on a big graph cannot grow O(n^2) state (the tree walk behind
#: a memo miss is O(n) anyway)
PAIR_MEMO_CAPACITY = 4096

_MISS = object()


class CutOracle:
    """Per-graph oracle answering s–t min-cut queries from one GH tree."""

    def __init__(self, graph: Graph, *, engine: str = "dinic"):
        self.graph = graph
        self.engine = engine
        self._tree: GomoryHuTree | None = None
        self._lock = threading.Lock()
        self._build_lock = threading.Lock()
        self._pair_memo = LRUCache(PAIR_MEMO_CAPACITY)
        self.builds = 0
        self.tree_queries = 0

    # ------------------------------------------------------------------
    def tree(self) -> GomoryHuTree:
        """The Gomory–Hu tree, built on first demand.

        Concurrent first queries serialise on the build lock; only the
        winner builds.  The counter lock is never held during the
        ``n - 1`` max-flows, so ``stats()`` stays responsive.
        """
        tree = self._tree
        if tree is not None:
            return tree
        with self._build_lock:
            if self._tree is None:
                built = gomory_hu_tree(self.graph, engine=self.engine)
                with self._lock:
                    self._tree = built
                    self.builds += 1
            return self._tree

    @property
    def built(self) -> bool:
        return self._tree is not None

    # ------------------------------------------------------------------
    def st_min_cut(self, s: Vertex, t: Vertex) -> float:
        """Min s–t cut value = min edge weight on the tree path."""
        if s == t:
            raise ValueError("s == t")
        key = (s, t) if repr(s) <= repr(t) else (t, s)
        value = self._pair_memo.get(key, _MISS)
        if value is not _MISS:
            return value
        tree = self.tree()
        value = tree.min_cut_between(s, t)
        with self._lock:
            self.tree_queries += 1
        self._pair_memo.put(key, value)
        return value

    @property
    def pair_hits(self) -> int:
        return self._pair_memo.hits

    def global_min_cut(self) -> float:
        """Global min cut = lightest tree edge (exact, not approximate)."""
        return self.tree().min_cut_value()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            built = self._tree is not None
            builds = self.builds
            tree_queries = self.tree_queries
        memo = self._pair_memo.stats()
        return {
            "built": built,
            "builds": builds,
            "tree_queries": tree_queries,
            "pair_hits": memo["hits"],
            "memoised_pairs": memo["size"],
        }
