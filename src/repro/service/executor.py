"""TrialExecutor — deterministic fan-out of boosting trials.

Algorithm 1's w.h.p. guarantee comes from boosting: many independent
trials, best cut wins (:func:`repro.core.ampc_min_cut_boosted` runs
them in a Python loop).  The trials share nothing, so a serving layer
can fan them out over a ``concurrent.futures`` process pool — the
engineering move Henzinger et al.'s practical min-cut study makes with
shared-memory parallel Karger trials.

Determinism is the contract here: results must not depend on worker
count or completion order.  Achieved by

* deriving the per-trial seed from the trial *index* (the same
  ``seed + 7919 * t`` schedule the serial booster uses),
* collecting futures in submission order (never ``as_completed``),
* breaking weight ties by the earliest trial index — exactly the
  ``res.weight < best.weight`` rule of the serial loop,
* merging the per-trial ledgers with the model's parallel-group rule
  (:meth:`~repro.ampc.ledger.RoundLedger.absorb_parallel`, max rounds /
  summed total space), in trial order.

So ``workers=8`` returns bit-identical cut weights, sides, and ledger
aggregates to ``workers=1`` for the same seed list, and ``workers=1``
is bit-identical to ``ampc_min_cut_boosted`` itself.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import threading
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Callable, Sequence

from ..ampc import RoundLedger
from ..core import (
    BOOST_SEED_STRIDE,
    ampc_min_cut,
    apx_split_kcut,
    default_boost_trials,
)
from ..core.kcut import KCutResult
from ..core.mincut import MinCutResult
from ..graph import Graph
from ..obs.metrics import MetricsRegistry, MetricsScope
from ..obs.tracing import NULL_TRACER, Tracer

#: re-exported under the serving layer's historical names; the single
#: source of truth is ``repro.core.mincut`` (shared with the booster)
SEED_STRIDE = BOOST_SEED_STRIDE
default_trials = default_boost_trials


def trial_seeds(seed: int, trials: int) -> list[int]:
    """The boosting seed schedule: ``seed + BOOST_SEED_STRIDE * t``.

    >>> trial_seeds(3, 4)
    [3, 7922, 15841, 23760]
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    return [seed + SEED_STRIDE * t for t in range(trials)]


# ----------------------------------------------------------------------
# Module-level trial kernels (must be picklable for the process pool).
#
# The parent pickles the graph ONCE per batch and ships the same bytes
# to every future (re-pickling a ``bytes`` is a memcpy, re-pickling a
# Graph is an object walk); each worker unpickles a given graph once
# and memoises it by digest, so a batch costs O(1) (de)serialisations
# per process instead of O(trials).
# ----------------------------------------------------------------------
_GRAPH_MEMO: OrderedDict[str, Graph] = OrderedDict()
_GRAPH_MEMO_CAPACITY = 4


def _resolve_graph(ref) -> Graph:
    if isinstance(ref, Graph):
        return ref
    digest, blob = ref
    graph = _GRAPH_MEMO.get(digest)
    if graph is None:
        graph = pickle.loads(blob)
        _GRAPH_MEMO[digest] = graph
        while len(_GRAPH_MEMO) > _GRAPH_MEMO_CAPACITY:
            _GRAPH_MEMO.popitem(last=False)
    else:
        _GRAPH_MEMO.move_to_end(digest)
    return graph


def _mincut_trial(
    ref, eps: float, seed: int, max_copies: int, backend: str | None = None
) -> MinCutResult:
    return ampc_min_cut(
        _resolve_graph(ref), eps=eps, seed=seed, max_copies=max_copies,
        backend=backend,
    )


def _kcut_trial(
    ref, k: int, eps: float, seed: int, max_copies: int,
    backend: str | None = None,
) -> KCutResult:
    return apx_split_kcut(
        _resolve_graph(ref), k, eps=eps, seed=seed, max_copies=max_copies,
        backend=backend,
    )


def _worker_init() -> None:
    # Ctrl-C on `repro-cut serve` hits the whole foreground process
    # group; workers must leave SIGINT to the parent (whose pool
    # shutdown ends them) or they spew KeyboardInterrupt tracebacks.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class TrialExecutor:
    """Runs independent boosting trials serially or on a process pool.

    ``workers=1`` (default) executes in-process with zero overhead;
    ``workers>1`` lazily spins up a ``ProcessPoolExecutor`` that is
    reused across queries until :meth:`shutdown`.  Usable as a context
    manager.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        ampc_backend: str | None = None,
        metrics: MetricsScope | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        #: AMPC round backend each trial runs its rounds under (None =
        #: the AMPC_BACKEND env default).  Orthogonal to trial fan-out:
        #: ``workers`` parallelises across trials, the round backend
        #: parallelises machines within each trial's rounds.  Results
        #: are bit-identical either way.
        self.ampc_backend = ampc_backend
        self._pool: Executor | None = None
        self._lock = threading.Lock()
        self._ref_memo: OrderedDict[int, tuple[Graph, tuple[str, bytes]]] = (
            OrderedDict()
        )
        if metrics is None:
            metrics = MetricsRegistry().scope("executor")
        self._trials_run = metrics.counter("trials_run")
        self._batches = metrics.counter("batches")
        self._tracer = tracer

    @property
    def trials_run(self) -> int:
        return self._trials_run.value

    @property
    def batches(self) -> int:
        return self._batches.value

    # ------------------------------------------------------------------
    def _run_batch(self, fn: Callable, arg_tuples: Sequence[tuple]) -> list:
        """Run ``fn(*args)`` for each tuple, preserving input order."""
        self._batches.inc()
        self._trials_run.inc(len(arg_tuples))
        pooled = self.workers > 1 and len(arg_tuples) > 1
        with self._tracer.span("executor.fanout") as sp:
            if sp:
                sp.set(
                    trials=len(arg_tuples),
                    workers=self.workers,
                    pooled=pooled,
                )
            if not pooled:
                return [fn(*args) for args in arg_tuples]
            pool = self._ensure_pool()
            futures = [pool.submit(fn, *args) for args in arg_tuples]
            # submission order, not completion
            return [f.result() for f in futures]

    def _graph_ref(self, graph: Graph, trials: int):
        """The graph itself (serial) or one (digest, pickle) pair (pool).

        Serial batches — one worker *or* one trial — never touch the
        pool (see :meth:`_run_batch`), so they get the object through
        with zero serialization.  For pool batches the pair is memoised
        per graph *object* (the memo holds a strong reference, so
        ``id`` stays valid), sparing a warm server the O(n+m) re-pickle
        on every repeated query over a resident graph.  Object identity
        is a sound cache key only while the object's content is fixed,
        so owners must call :meth:`forget` when they evict a graph *or
        mutate it in place* (the serving layer's ``/mutate`` path does,
        in :meth:`repro.service.service.CutService._absorb_mutation`).
        """
        if self.workers == 1 or trials == 1:
            return graph
        memo_key = id(graph)
        with self._lock:
            entry = self._ref_memo.get(memo_key)
            if entry is not None and entry[0] is graph:
                self._ref_memo.move_to_end(memo_key)
                return entry[1]
        blob = pickle.dumps(graph, pickle.HIGHEST_PROTOCOL)
        ref = (hashlib.sha1(blob).hexdigest(), blob)
        with self._lock:
            self._ref_memo[memo_key] = (graph, ref)
            while len(self._ref_memo) > _GRAPH_MEMO_CAPACITY:
                self._ref_memo.popitem(last=False)
        return ref

    def _ensure_pool(self) -> Executor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, initializer=_worker_init
                )
            return self._pool

    # ------------------------------------------------------------------
    def run_mincut(
        self,
        graph: Graph,
        *,
        eps: float = 0.5,
        trials: int | None = None,
        seed: int = 0,
        max_copies: int = 4,
    ) -> MinCutResult:
        """Boosted Algorithm 1 over the pool; best trial wins.

        Matches ``ampc_min_cut_boosted(graph, eps=eps, trials=trials,
        seed=seed, max_copies=max_copies)`` bit for bit.
        """
        if trials is None:
            trials = default_trials(graph.num_vertices)
        seeds = trial_seeds(seed, trials)
        ref = self._graph_ref(graph, trials)
        results: list[MinCutResult] = self._run_batch(
            _mincut_trial,
            [(ref, eps, s, max_copies, self.ampc_backend) for s in seeds],
        )
        best = results[0]
        for res in results[1:]:
            if res.weight < best.weight:
                best = res
        combined = RoundLedger()
        combined.absorb_parallel(
            [r.ledger for r in results], f"boosting over {trials} parallel trials"
        )
        best.ledger = combined
        return best

    def run_kcut(
        self,
        graph: Graph,
        k: int,
        *,
        eps: float = 0.5,
        trials: int = 1,
        seed: int = 0,
        max_copies: int = 2,
    ) -> KCutResult:
        """Best APX-SPLIT run over ``trials`` independent seeds."""
        seeds = trial_seeds(seed, trials)
        ref = self._graph_ref(graph, trials)
        results: list[KCutResult] = self._run_batch(
            _kcut_trial,
            [(ref, k, eps, s, max_copies, self.ampc_backend) for s in seeds],
        )
        best = results[0]
        for res in results[1:]:
            if res.weight < best.weight:
                best = res
        if trials > 1:
            combined = RoundLedger()
            combined.absorb_parallel(
                [r.ledger for r in results],
                f"APX-SPLIT boosting over {trials} parallel trials",
            )
            best.ledger = combined
        return best

    def forget(self, graph: Graph) -> None:
        """Drop the pickled-blob memo for ``graph`` (owner evicted it).

        Without this a ``store_capacity``-bounded server would keep up
        to ``_GRAPH_MEMO_CAPACITY`` evicted graphs (and their blobs)
        pinned in the parent process.
        """
        with self._lock:
            self._ref_memo.pop(id(graph), None)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            pool_live = self._pool is not None
        return {
            "workers": self.workers,
            "ampc_backend": self.ampc_backend
            or os.environ.get("AMPC_BACKEND")
            or "serial",
            "pool_live": pool_live,
            "batches": self.batches,
            "trials_run": self.trials_run,
        }

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
