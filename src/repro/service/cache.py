"""Thread-safe LRU cache with hit/miss/eviction counters.

The serving layer caches two kinds of expensive artifacts: whole query
results (keyed by graph fingerprint + algorithm + params + seed) and
per-graph Gomory–Hu trees.  Both need the same small primitive — a
bounded mapping with least-recently-used eviction whose behaviour is
observable through ``/stats`` — so it lives here once.

Stdlib only (``collections.OrderedDict`` + a lock); safe under the
``ThreadingHTTPServer`` front end where handler threads share one
:class:`~repro.service.service.CutService`.

Counters live on a :class:`~repro.obs.metrics.MetricsRegistry` scope
(``results.hits`` etc. in ``GET /metrics``); a cache constructed
without one gets a private scope, so standalone use needs no wiring.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator

from ..obs.metrics import MetricsRegistry, MetricsScope

_MISSING = object()


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry.

    ``capacity <= 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — useful for benchmarking cold paths.

    >>> cache = LRUCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")                 # refreshes "a"; "b" is now LRU
    1
    >>> cache.put("c", 3)              # evicts "b"
    >>> "b" in cache, sorted(cache)
    (False, ['a', 'c'])
    >>> cache.stats()["evictions"]
    1
    """

    def __init__(
        self, capacity: int = 128, *, metrics: MetricsScope | None = None
    ):
        self.capacity = int(capacity)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        if metrics is None:
            metrics = MetricsRegistry().scope("cache")
        self._hits = metrics.counter("hits")
        self._misses = metrics.counter("misses")
        self._evictions = metrics.counter("evictions")

    # counters stay readable as plain ints (``cache.hits``) — the
    # pre-registry attribute contract the oracle and tests rely on
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses.inc()
                return default
            self._data.move_to_end(key)
            self._hits.inc()
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry if full."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions.inc()

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key``'s value (no hit/miss accounting).

        The mutation path's selective-invalidation sweep uses this to
        drop or re-key entries a delta touched; removals are not
        evictions (``evictions`` counts capacity pressure only).
        """
        with self._lock:
            value = self._data.pop(key, _MISSING)
            return default if value is _MISSING else value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data))

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> dict:
        """Counters as a JSON-able dict (rendered by ``/stats``)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
