"""Graph deltas — the mutation vocabulary of the serving layer.

The paper's headline claim is that AMPC cut computations *adapt*
cheaply as the input evolves; a frozen-graph server forfeits that.
This module defines the wire-level mutation unit, :class:`GraphDelta`
(edge adds, removes and reweights), and the in-place application path
:func:`apply_delta` that turns a resident columnar
:class:`~repro.graph.Graph` into its successor without re-parsing or
re-uploading anything.

Semantics (all of them mirrored by the differential harness in
``tests/test_mutation.py`` against a plain edge-list reference model):

* ops apply in the order **reweights, removes, adds** — so
  ``remove (u,v)`` + ``add (u,v,w)`` in one delta replaces the edge
  (the new row lands at the end, exactly as a fresh ``add_edge``
  would place it);
* a **reweight to zero drops the edge** — the same canonicalization
  every file reader applies to zero-weight lines (see
  :mod:`repro.graph.io`); it is rewritten into a remove at parse time;
* adds of an existing edge **reinforce** it (weights sum in place),
  matching :meth:`repro.graph.Graph.add_edge`;
* removes and reweights of a **nonexistent edge raise**
  :class:`ValueError` naming both endpoints, matching
  :meth:`repro.graph.Graph.remove_edge`;
* application is **atomic per delta**: every op is validated against
  the pre-state before the first column is touched, so a rejected
  delta leaves the graph (and its fingerprint) untouched.

Fingerprints chain instead of re-hashing: ``chain_fingerprint`` folds
the delta's canonical digest into the parent fingerprint in
``O(|delta|)``, so a mutation costs proportional to its size, not the
graph's.  Two graphs reach the same chained fingerprint only by the
same (registration, delta, delta, ...) history, which keeps every
fingerprint-keyed cache sound — a re-upload of identical content takes
the content-hash route and simply misses warm, never hits wrong.

>>> from repro.graph import Graph
>>> g = Graph(edges=[(0, 1, 2.0), (1, 2, 2.0)])
>>> delta = GraphDelta.from_json({"adds": [[0, 2, 1.0]],
...                               "reweights": [[0, 1, 5.0]]})
>>> effect = apply_delta(g, delta)
>>> sorted(g.edges())
[(0, 1, 5.0), (0, 2, 1.0), (1, 2, 2.0)]
>>> effect.increase_only
True
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Hashable, Sequence

from ..graph import Graph

Vertex = Hashable


class FingerprintMismatch(ValueError):
    """Optimistic-concurrency conflict: the graph moved under the caller.

    Raised by :meth:`repro.service.store.GraphStore.apply_delta` when
    the caller's ``expected_fingerprint`` no longer matches the resident
    entry (another client mutated or replaced the graph first).  The
    HTTP layer maps it to **409 Conflict**.
    """

    def __init__(self, name: str, expected: str, actual: str):
        super().__init__(
            f"graph {name!r} fingerprint mismatch: expected "
            f"{expected[:16]}..., resident graph is {actual[:16]}..."
        )
        self.name = name
        self.expected = expected
        self.actual = actual


def resolve_vertex(graph: Graph, v) -> Vertex:
    """Map a wire-format vertex id onto a graph vertex.

    JSON round-trips lose the int/str distinction users type at a CLI,
    so fall back across the two spellings before failing.

    >>> g = Graph(edges=[(0, 1, 1.0)])
    >>> resolve_vertex(g, "1")
    1
    """
    candidates = [v]
    if isinstance(v, str):
        try:
            candidates.append(int(v))
        except ValueError:
            pass
    else:
        candidates.append(str(v))
    for c in candidates:
        try:
            graph.index_of(c)
            return c
        except KeyError:
            continue
    raise KeyError(f"vertex {v!r} not in graph")


def _resolve_soft(graph: Graph, v) -> Vertex:
    """Like :func:`resolve_vertex` but unknown vertices pass through.

    Adds may legitimately introduce new vertices; this keeps ``"1"``
    from shadowing an existing int ``1`` while letting genuinely new
    labels in unchanged.
    """
    try:
        return resolve_vertex(graph, v)
    except KeyError:
        return v


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphDelta:
    """One batch of edge mutations, canonicalized at construction.

    ``adds`` are ``(u, v, w)`` with ``w > 0`` (an existing edge is
    reinforced by ``w``); ``removes`` are ``(u, v)`` pairs that must
    exist; ``reweights`` are ``(u, v, w)`` setting the edge's weight to
    ``w > 0`` outright.  Reweights to exactly zero are canonicalized
    into removes (``zero_reweights`` counts them); negative weights and
    self-loops are rejected here, before any graph is touched.

    >>> d = GraphDelta.from_json({"reweights": [[0, 1, 0]]})
    >>> d.removes, d.zero_reweights
    (((0, 1),), 1)
    >>> GraphDelta.from_json({"adds": [[2, 2, 1.0]]})
    Traceback (most recent call last):
        ...
    ValueError: self-loop on 2 rejected in delta adds
    """

    adds: tuple[tuple[Vertex, Vertex, float], ...] = ()
    removes: tuple[tuple[Vertex, Vertex], ...] = ()
    reweights: tuple[tuple[Vertex, Vertex, float], ...] = ()
    zero_reweights: int = 0

    @classmethod
    def from_json(cls, body: dict) -> "GraphDelta":
        """Parse the ``/mutate`` wire format (``adds``/``removes``/
        ``reweights`` lists of ``[u, v(, w)]`` rows)."""
        if not isinstance(body, dict):
            raise ValueError("delta must be a JSON object")
        adds = []
        for row in _rows(body, "adds"):
            u, v, w = _edge_row(row, "adds", default_weight=1.0)
            if w <= 0:
                raise ValueError(
                    f"delta add {u!r} -- {v!r} needs positive weight, got {w}"
                )
            adds.append((u, v, w))
        removes = [
            _edge_row(row, "removes", weightless=True)
            for row in _rows(body, "removes")
        ]
        reweights = []
        zero = 0
        for row in _rows(body, "reweights"):
            u, v, w = _edge_row(row, "reweights", default_weight=None)
            if w < 0:
                raise ValueError(
                    f"delta reweight {u!r} -- {v!r} must be >= 0, got {w}"
                )
            if w == 0:
                # The reader rule: a zero-weight edge cannot cross any
                # cut; it is dropped, not stored.
                removes.append((u, v))
                zero += 1
            else:
                reweights.append((u, v, w))
        return cls(
            adds=tuple(adds),
            removes=tuple(removes),
            reweights=tuple(reweights),
            zero_reweights=zero,
        )

    @property
    def is_empty(self) -> bool:
        return not (self.adds or self.removes or self.reweights)

    @property
    def size(self) -> int:
        """Number of ops (the O(|delta|) in every cost statement)."""
        return len(self.adds) + len(self.removes) + len(self.reweights)

    def digest(self) -> str:
        """Stable content hash of the delta (hex SHA-256).

        Ops are hashed in application order (reweights, removes, adds)
        with the same type-qualified vertex encoding
        :meth:`repro.graph.Graph.fingerprint` uses, so ``1`` and
        ``"1"`` never collide and equal deltas hash equally.
        """
        h = hashlib.sha256()
        h.update(b"repro.delta.v1\x1e")
        for tag, rows in (
            (b"rw", self.reweights),
            (b"rm", self.removes),
            (b"ad", self.adds),
        ):
            h.update(tag)
            h.update(b"\x1e")
            for row in rows:
                for item in row:
                    h.update(f"{type(item).__name__}:{item!r}".encode())
                    h.update(b"\x1f")
                h.update(b"\x1e")
        return h.hexdigest()

    def describe(self) -> dict:
        """JSON-able op counts (the ``applied`` block of ``/mutate``)."""
        return {
            "adds": len(self.adds),
            "removes": len(self.removes) - self.zero_reweights,
            "reweights": len(self.reweights),
            "zero_reweight_drops": self.zero_reweights,
        }


def _rows(body: dict, key: str) -> Sequence:
    rows = body.get(key) or ()
    if not isinstance(rows, (list, tuple)):
        raise ValueError(f"delta {key!r} must be a list of edge rows")
    return rows

def _edge_row(row, kind: str, *, default_weight=None, weightless: bool = False):
    want = "[u, v]" if weightless else "[u, v, w]"
    if not isinstance(row, (list, tuple)):
        raise ValueError(f"bad row {row!r} in delta {kind}: want {want}")
    if weightless:
        if len(row) != 2:
            raise ValueError(f"bad row {row!r} in delta {kind}: want {want}")
        u, v = row
    elif len(row) == 3:
        u, v, w = row
    elif len(row) == 2 and default_weight is not None:
        u, v = row
        w = default_weight
    else:
        raise ValueError(f"bad row {row!r} in delta {kind}: want {want}")
    if u == v:
        raise ValueError(f"self-loop on {u!r} rejected in delta {kind}")
    if weightless:
        return (u, v)
    w = float(w)
    if not math.isfinite(w):
        # json.loads happily parses NaN/Infinity; neither may reach the
        # columnar weights (every later cut value would be poisoned).
        raise ValueError(
            f"delta {kind} weight for {u!r} -- {v!r} must be finite, got {w}"
        )
    return (u, v, w)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeltaEffect:
    """What a delta actually did to a graph.

    ``changed`` records every edge whose stored weight changed, as
    ``(u, v, old_w, new_w)`` with ``0.0`` standing for absent; no-op
    reweights (same weight) are excluded.  The conservative
    invalidation tests in the service layer read exactly these fields:
    ``increase_only`` gates Gomory–Hu tree retention, ``new_vertices``
    forces a rebuild (the tree does not know them), ``edges_added``
    gates the kernel's still-disconnected certificate.
    """

    changed: tuple[tuple[Vertex, Vertex, float, float], ...] = ()
    new_vertices: tuple[Vertex, ...] = ()
    edges_added: int = 0
    edges_removed: int = 0
    reinforced: int = 0
    #: pairs removed and re-added within one delta: the weight may be
    #: unchanged but the edge's storage row moved to the end, which
    #: reorders the per-edge randomness downstream solvers draw — so a
    #: restructured delta is never a no-op even at equal content.
    restructured: int = 0

    @property
    def is_noop(self) -> bool:
        """True when the stored columns are bit-identical to before."""
        return (
            not self.changed
            and not self.new_vertices
            and self.restructured == 0
        )

    @property
    def increase_only(self) -> bool:
        """Every touched edge got strictly heavier (no removes/cuts
        lightened) — the monotone case where cached exact cut values
        can survive (weight of any cut only grows)."""
        return all(new > old for _, _, old, new in self.changed)

    @property
    def changed_pairs(self) -> tuple[tuple[Vertex, Vertex], ...]:
        return tuple((u, v) for u, v, _, _ in self.changed)

    def describe(self) -> dict:
        return {
            "edges_changed": len(self.changed),
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "edges_reinforced": self.reinforced,
            "edges_restructured": self.restructured,
            "new_vertices": len(self.new_vertices),
            "increase_only": self.increase_only,
            "no_op": self.is_noop,
        }


def apply_delta(graph: Graph, delta: GraphDelta) -> DeltaEffect:
    """Apply ``delta`` to ``graph`` **in place**, atomically.

    Validation happens entirely against the pre-state: every reweight
    and remove target must exist (``ValueError`` names the endpoints),
    every add must be loop-free with positive weight (already enforced
    by :class:`GraphDelta`).  Only after every check passes does the
    first mutation land, so a failing delta changes nothing.

    The mutation path is the columnar one the tentpole relies on:
    reweights are O(1) row writes, removes are one vectorized
    mask-and-slice pass (:meth:`repro.graph.Graph.remove_edges`), adds
    are amortised O(1) column appends.

    >>> g = Graph(edges=[(0, 1, 2.0), (1, 2, 3.0)])
    >>> apply_delta(g, GraphDelta.from_json({"removes": [[9, 1]]}))
    Traceback (most recent call last):
        ...
    ValueError: no edge 9 -- 1 to remove
    >>> sorted(g.edges())      # rejected delta touched nothing
    [(0, 1, 2.0), (1, 2, 3.0)]
    """
    # -- resolve + validate against the pre-state (no mutation yet) ----
    reweights = []
    for u, v, w in delta.reweights:
        u, v = resolve_vertex_pair(graph, u, v, "reweight")
        reweights.append((u, v, w))
    removes = []
    for u, v in delta.removes:
        u, v = resolve_vertex_pair(graph, u, v, "remove")
        removes.append((u, v))
    adds = []
    for u, v, w in delta.adds:
        ru, rv = _resolve_soft(graph, u), _resolve_soft(graph, v)
        if ru == rv:
            # Distinct wire spellings ("1" vs 1) can resolve onto one
            # vertex; catching the collapse here keeps the delta atomic
            # (add_edge would raise after removes already landed).
            raise ValueError(
                f"self-loop on {ru!r} rejected in delta adds "
                f"({u!r} and {v!r} name the same vertex)"
            )
        adds.append((ru, rv, w))

    before = {v for v in graph.vertices()}
    changed: dict[tuple[Vertex, Vertex], list[float]] = {}

    def note(u, v, old: float, new: float) -> None:
        key = _pair_key(u, v)
        slot = changed.get(key)
        if slot is None:
            changed[key] = [old, new]
        else:
            slot[1] = new

    # -- apply: reweights, removes, adds (the documented order) --------
    for u, v, w in reweights:
        old = graph.set_edge_weight(u, v, w)
        if old != w:
            note(u, v, old, w)
    removed_pairs: set[tuple[Vertex, Vertex]] = set()
    if removes:
        for (u, v), old in zip(removes, graph.remove_edges(removes)):
            note(u, v, old, 0.0)
            removed_pairs.add(_pair_key(u, v))
    reinforced = added = restructured = 0
    for u, v, w in adds:
        old = graph.weight(u, v) if graph.has_edge(u, v) else 0.0
        graph.add_edge(u, v, w)
        pair = _pair_key(u, v)
        if old > 0:
            reinforced += 1
        elif pair in removed_pairs:
            restructured += 1
        else:
            added += 1
        note(u, v, old, graph.weight(u, v))

    new_vertices = tuple(v for v in graph.vertices() if v not in before)
    return DeltaEffect(
        changed=tuple(
            (u, v, old, new)
            for (u, v), (old, new) in changed.items()
            if old != new
        ),
        new_vertices=new_vertices,
        edges_added=added,
        edges_removed=len(removed_pairs),
        reinforced=reinforced,
        restructured=restructured,
    )


def _pair_key(u: Vertex, v: Vertex) -> tuple[Vertex, Vertex]:
    """Orientation-free pair key (same type-qualified order everywhere)."""
    return (
        (u, v)
        if repr((type(u).__name__, u)) <= repr((type(v).__name__, v))
        else (v, u)
    )


def resolve_vertex_pair(graph: Graph, u, v, verb: str):
    """Resolve both endpoints of an existing edge or raise naming them."""
    try:
        ru, rv = resolve_vertex(graph, u), resolve_vertex(graph, v)
    except KeyError:
        raise ValueError(f"no edge {u!r} -- {v!r} to {verb}") from None
    if not graph.has_edge(ru, rv):
        raise ValueError(f"no edge {u!r} -- {v!r} to {verb}")
    return ru, rv


def is_noop_for(graph: Graph, delta: GraphDelta) -> bool:
    """Cheaply decide whether ``delta`` would leave ``graph`` untouched.

    Only reweights can be no-ops (adds always reinforce or append,
    removes always delete); a reweights-only delta whose every target
    exists at exactly the requested weight changes nothing.  The store
    consults this *before* copy-on-write and before mutating, so a
    no-op on a shared fingerprint costs O(|delta|) instead of an
    O(n + m) graph copy plus derived-cache invalidation.

    >>> from repro.graph import Graph
    >>> g = Graph(edges=[(0, 1, 2.0)])
    >>> is_noop_for(g, GraphDelta.from_json({"reweights": [[0, 1, 2.0]]}))
    True
    >>> is_noop_for(g, GraphDelta.from_json({"reweights": [[0, 1, 3.0]]}))
    False
    """
    if delta.adds or delta.removes:
        return False
    for u, v, w in delta.reweights:
        try:
            ru, rv = resolve_vertex(graph, u), resolve_vertex(graph, v)
        except KeyError:
            return False  # let apply_delta raise the proper error
        if not graph.has_edge(ru, rv) or graph.weight(ru, rv) != w:
            return False
    return True


# ----------------------------------------------------------------------
def chain_fingerprint(parent: str, delta: GraphDelta) -> str:
    """Fold a delta into its parent fingerprint (hex SHA-256).

    ``O(|delta|)`` instead of the ``O(m log m)`` full content re-hash:
    the new fingerprint commits to the *history* (registration content
    hash, then each delta digest in order), which identifies the
    content just as uniquely — identical histories produce identical
    graphs because :func:`apply_delta` is deterministic.  Distinct
    histories reaching the same content fingerprint differently is a
    cache *miss*, never a wrong hit.

    >>> a = chain_fingerprint("00" * 32, GraphDelta(adds=((0, 1, 2.0),)))
    >>> b = chain_fingerprint("00" * 32, GraphDelta(adds=((0, 1, 2.0),)))
    >>> a == b and a != "00" * 32
    True
    """
    h = hashlib.sha256()
    h.update(b"repro.graph.delta-chain.v1\x1e")
    h.update(parent.encode())
    h.update(b"\x1e")
    h.update(delta.digest().encode())
    return h.hexdigest()


@dataclass
class MutationRecord:
    """Bookkeeping for one applied delta (the ``/mutate`` response row)."""

    name: str
    old_fingerprint: str
    new_fingerprint: str
    generation: int
    delta: GraphDelta
    effect: DeltaEffect
    shared: bool = False          #: old content still resident elsewhere
    copied_on_write: bool = False
    kernels_revalidated: int = 0
    kernels_dropped: int = 0
    reductions_replayed: int = 0
    results_dropped: int = 0
    results_rekeyed: int = 0
    oracle: str = "absent"

    def as_dict(self) -> dict:
        return {
            "old_fingerprint": self.old_fingerprint,
            "new_fingerprint": self.new_fingerprint,
            "generation": self.generation,
            "delta_digest": self.delta.digest(),
            "applied": self.delta.describe(),
            "effect": self.effect.describe(),
            "invalidation": {
                "copied_on_write": self.copied_on_write,
                "kernels_revalidated": self.kernels_revalidated,
                "kernels_dropped": self.kernels_dropped,
                "reductions_replayed": self.reductions_replayed,
                "results_dropped": self.results_dropped,
                "results_rekeyed": self.results_rekeyed,
                "oracle": self.oracle,
            },
        }
