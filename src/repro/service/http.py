"""JSON-over-HTTP front end for :class:`~repro.service.service.CutService`.

Stdlib only: ``http.server.ThreadingHTTPServer`` (one thread per
connection) plus ``json``.  Every POST flows through a
:class:`~repro.service.frontend.Frontend` — bounded admission with
429 + ``Retry-After`` shedding, coalescing of identical in-flight
queries, and (optionally) consistent-hash sharding of the graph store
across worker processes; see :mod:`repro.service.frontend`.  The wire
protocol is deliberately boring — every response is a JSON object,
errors are ``{"error": ...}`` with a 4xx status:

========  =========  ====================================================
method    path       body / result
========  =========  ====================================================
GET       /healthz   liveness probe
GET       /graphs    list of registered-graph descriptions
GET       /stats     cache/pool/oracle counters (the observability seam)
GET       /metrics   the full metrics-registry snapshot (counters,
                     gauges, latency histograms with p50/p95/p99)
GET       /trace     recent finished spans from the tracer ring buffer
                     (``?limit=N`` caps the count; a non-integer or
                     negative limit is a 400)
GET       /frontend  admission/coalescing config + live counters
POST      /frontend  reconfigure admission limits at runtime
                     (``{"max_inflight"?, "max_queue"?,
                     "queue_timeout_s"?, "retry_after_s"?}``)
POST      /graphs    ``{"name", "edges": [[u,v,w],...]}`` or
                     ``{"name", "path": "file-on-server"}`` (non-finite
                     weights are a 400)
POST      /mincut    ``{"graph", "eps"?, "trials"?, "seed"?,
                     "preprocess"?}`` (``preprocess`` in off/safe/
                     aggressive; responses carry the kernel stats)
POST      /kcut      ``{"graph", "k", "eps"?, "trials"?, "seed"?,
                     "preprocess"?}``
POST      /stcut     ``{"graph", "s", "t"}``
POST      /gomoryhu  ``{"graph", "sides"?}`` — the full cut tree:
                     all-pairs min-cut matrix, canonical tree edges,
                     per-pair bottleneck indices (``sides=true`` adds
                     a real cut bipartition per tree edge)
POST      /sparsestcut ``{"graph", "seed"?, "trials"?, "kernel"?}`` —
                     uniform sparsest cut (exact to 16 vertices,
                     Gomory–Hu sweep above; ``kernel=true`` contracts
                     provably-uncut edges first)
POST      /mutate    ``{"graph", "adds"?, "removes"?, "reweights"?}``
                     or ``{"graph", "deltas": [...]}`` — in-place edge
                     deltas with selective cache invalidation; stale
                     ``"expected_fingerprint"`` → 409
POST      /kernelize ``{"graph", "level"?, "k"?}`` — build/warm the
                     graph's kernel, returns the reduction stats
POST      /batch     ``{"requests": [{"op": "mincut"|..., ...}, ...]}``
                     → ``{"responses": [...]}``, one per request, errors
                     inline so one bad request doesn't kill the batch
========  =========  ====================================================

Any POST (except ``/frontend``) may come back **429** with a
``Retry-After`` header and ``{"error", "retry_after_s", "trace_id"}``
body when the admission gate is saturated — clients back off and
retry.  The full wire contract, with replayed request/response
examples, is documented in ``docs/HTTP_API.md`` (kept honest by
``tests/test_http_api_docs.py``, which replays every example against a
live server).

Observability: every request runs under an ``http.request`` root span
(child spans cover body parse, queue wait, shard dispatch, store
lookup, kernelization, cache tiers, oracle path and executor fan-out —
see ``docs/OBSERVABILITY.md`` for the vocabulary), every error
response carries the request's ``trace_id`` so failures correlate with
exported spans, and per-op latency histograms feed ``GET /metrics``
and the ``requests`` section of ``/stats``.  The root span closes and
the request is counted *before* the reply bytes are written, so a
client holding a response always finds its own request in ``/trace``
and ``/metrics`` (read-your-own-trace; the recorded duration excludes
the socket write).  A client that hangs up before the reply lands is
swallowed and counted (``http.client_disconnects``) instead of dumping
a traceback from the handler thread.

``make_server(service, port=0)`` binds an ephemeral port for tests;
``serve(...)`` is the blocking entry point ``repro-cut serve`` uses.
A tiny ``urllib`` client (:func:`request_json` /
:func:`request_status_json`) backs ``repro-cut query``, the loadgen
and the end-to-end tests.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .frontend import Frontend, make_frontend
from .service import CutService

_MAX_BODY = 64 * 1024 * 1024

#: Sockets idle longer than this mid-request are dropped: a client
#: that sends headers and then stalls must not pin a handler thread
#: forever (satellite of the Content-Length hardening).
_SOCKET_TIMEOUT_S = 120.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a :class:`Frontend`.

    ``service`` stays available (``None`` in sharded mode) so existing
    callers and tests can keep reaching the in-process
    :class:`CutService` behind an inline frontend.
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        service: CutService | None = None,
        *,
        frontend: Frontend | None = None,
        quiet: bool = True,
    ):
        if frontend is None:
            if service is None:
                raise ValueError("need a service or a frontend")
            frontend = make_frontend(service)
        self.frontend = frontend
        self.service = service if service is not None else getattr(
            frontend.backend, "service", None
        )
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    timeout = _SOCKET_TIMEOUT_S

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        frontend = self.server.frontend
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path
        op = path.lstrip("/") or "unknown"
        t0 = time.perf_counter()
        with frontend.tracer.span("http.request") as root:
            if root:
                root.set(method="GET", path=path, op=op)
            if path == "/healthz":
                status, payload = 200, {"ok": True}
            elif path == "/graphs":
                status, payload = 200, {"graphs": frontend.graphs()}
            elif path == "/stats":
                status, payload = 200, frontend.stats()
            elif path == "/metrics":
                status, payload = 200, frontend.metrics_payload()
            elif path == "/frontend":
                status, payload = 200, frontend.describe()
            elif path == "/trace":
                status, payload = self._trace_payload(frontend, parsed.query)
            else:
                status, payload = 404, {"error": f"unknown path {path!r}"}
            if status >= 400:
                payload = _with_trace_id(root, payload)
            if root:
                root.set(status=status)
        # span closed and metrics recorded *before* the reply bytes go
        # out: a client that has the response can immediately read its
        # own request in /trace and /metrics (the recorded duration
        # excludes the socket write)
        frontend.observe_request(
            op, time.perf_counter() - t0, error=status >= 400
        )
        self._reply(status, payload)

    @staticmethod
    def _trace_payload(frontend: Frontend, query: str) -> tuple[int, dict]:
        """``GET /trace``: a bad ``limit`` is a 400, not silently the
        full snapshot — an operator typo'ing ``?limit=abc`` under
        incident pressure must hear about it."""
        params = urllib.parse.parse_qs(query)
        limit = None
        if "limit" in params:
            raw = params["limit"][0]
            try:
                limit = int(raw)
            except ValueError:
                return 400, {
                    "error": f"limit must be an integer, got {raw!r}"
                }
            if limit < 0:
                return 400, {"error": f"limit must be >= 0, got {limit}"}
        return 200, frontend.trace_payload(limit)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        frontend = self.server.frontend
        tracer = frontend.tracer
        op = self.path.lstrip("/") or "unknown"
        t0 = time.perf_counter()
        headers: dict[str, str] = {}
        with tracer.span("http.request") as root:
            if root:
                root.set(method="POST", path=self.path, op=op)
            try:
                with tracer.span("http.parse") as sp:
                    body = self._read_json()
                    if sp:
                        # _read_json validated the header already
                        sp.set(
                            content_length=int(
                                self.headers.get("Content-Length")
                            )
                        )
            except ValueError as exc:
                status, payload = 400, {"error": str(exc)}
            else:
                status, payload, headers = frontend.handle(op, body)
            if status >= 400:
                payload = _with_trace_id(root, payload)
            if root:
                root.set(status=status)
        # as in do_GET: trace + metrics land before the reply is sent
        frontend.observe_request(
            op,
            time.perf_counter() - t0,
            error=status >= 400 and status != 429,
            shed=status == 429,
        )
        self._reply(status, payload, headers)

    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        """Read and decode the request body, validating Content-Length.

        The raw header value is untrusted: ``rfile.read(-1)`` on a
        negative length blocks until the client closes the socket
        (pinning a handler thread indefinitely), and a non-numeric
        value used to crash the handler.  Both are a 400 now.
        """
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise ValueError("missing Content-Length; expected a JSON body")
        try:
            length = int(raw_length)
        except ValueError:
            raise ValueError(
                f"invalid Content-Length {raw_length!r}: not an integer"
            ) from None
        if length <= 0:
            raise ValueError(
                f"invalid Content-Length {length}: must be positive"
            )
        if length > _MAX_BODY:
            raise ValueError(f"request body exceeds {_MAX_BODY} bytes")
        raw = self.rfile.read(length)
        if not raw:
            raise ValueError("empty request body; expected JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON: {exc}") from exc

    def _reply(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        """Serialise and send; a client that already hung up is counted
        (``http.client_disconnects``), not a handler-thread traceback."""
        data = json.dumps(payload).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            self.server.frontend.note_client_disconnect()
            self.close_connection = True

    def handle_one_request(self) -> None:
        """One request, with disconnect noise downgraded to a counter."""
        try:
            super().handle_one_request()
        except (BrokenPipeError, ConnectionResetError):
            self.server.frontend.note_client_disconnect()
            self.close_connection = True

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if not self.server.quiet:
            super().log_message(fmt, *args)


def _with_trace_id(root, payload: dict) -> dict:
    """Stamp the request's trace id onto an error payload.

    Every 4xx/5xx body (and every inline ``/batch`` error) carries the
    ``trace_id`` of its ``http.request`` span, so a failure seen by a
    client is correlatable with the exported span tree.  ``None`` when
    the service runs with tracing disabled.
    """
    payload["trace_id"] = root.trace_id if root else None
    return payload


# ----------------------------------------------------------------------
# Server + client entry points
# ----------------------------------------------------------------------
def make_server(
    service: CutService | None = None,
    *,
    frontend: Frontend | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind (``port=0`` → ephemeral) without starting the accept loop.

    Pass a live ``service`` for the classic single-process server (it
    gets wrapped in an inline :class:`Frontend` with default admission
    limits), or a pre-built ``frontend`` (e.g. from
    :func:`~repro.service.frontend.make_frontend` with ``shards=4``)
    for sharded serving.
    """
    return ServiceHTTPServer(
        (host, port), service, frontend=frontend, quiet=quiet
    )


def serve(
    service: CutService | None = None,
    *,
    frontend: Frontend | None = None,
    host: str = "127.0.0.1",
    port: int = 8008,
) -> None:
    """Blocking accept loop (Ctrl-C to stop) — ``repro-cut serve``."""
    with make_server(
        service, frontend=frontend, host=host, port=port, quiet=False
    ) as server:
        print(f"serving on {server.url}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass


def request_status_json(
    url: str, path: str, payload: dict | None = None, *, timeout: float = 60.0
) -> tuple[int, dict]:
    """One JSON round-trip returning ``(status, body)``.

    4xx/5xx responses come back decoded rather than raising, so
    callers (the loadgen, the CLI) can tell a shed (429) from a real
    error without exception plumbing.
    """
    full = url.rstrip("/") + path
    if payload is None:
        req = urllib.request.Request(full)
    else:
        req = urllib.request.Request(
            full,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            return exc.code, json.loads(body)
        except json.JSONDecodeError:
            raise RuntimeError(f"HTTP {exc.code}: {body[:200]!r}") from exc
    except urllib.error.URLError as exc:
        raise ConnectionError(
            f"cannot reach {full}: {exc.reason}"
        ) from exc


def request_json(
    url: str, path: str, payload: dict | None = None, *, timeout: float = 60.0
) -> dict:
    """One JSON round-trip: GET when ``payload`` is None, else POST.

    4xx responses come back as their decoded ``{"error": ...}`` body
    rather than raising, so CLI users see the server's message.
    """
    return request_status_json(url, path, payload, timeout=timeout)[1]
