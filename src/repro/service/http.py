"""JSON-over-HTTP front end for :class:`~repro.service.service.CutService`.

Stdlib only: ``http.server.ThreadingHTTPServer`` (one thread per
connection; the service underneath is thread-safe) plus ``json``.  The
wire protocol is deliberately boring — every response is a JSON object,
errors are ``{"error": ...}`` with a 4xx status:

========  =========  ====================================================
method    path       body / result
========  =========  ====================================================
GET       /healthz   liveness probe
GET       /graphs    list of registered-graph descriptions
GET       /stats     cache/pool/oracle counters (the observability seam)
GET       /metrics   the full metrics-registry snapshot (counters,
                     gauges, latency histograms with p50/p95/p99)
GET       /trace     recent finished spans from the tracer ring buffer
                     (``?limit=N`` caps the count)
POST      /graphs    ``{"name", "edges": [[u,v,w],...]}`` or
                     ``{"name", "path": "file-on-server"}``
POST      /mincut    ``{"graph", "eps"?, "trials"?, "seed"?,
                     "preprocess"?}`` (``preprocess`` in off/safe/
                     aggressive; responses carry the kernel stats)
POST      /kcut      ``{"graph", "k", "eps"?, "trials"?, "seed"?,
                     "preprocess"?}``
POST      /stcut     ``{"graph", "s", "t"}``
POST      /mutate    ``{"graph", "adds"?, "removes"?, "reweights"?}``
                     or ``{"graph", "deltas": [...]}`` — in-place edge
                     deltas with selective cache invalidation; stale
                     ``"expected_fingerprint"`` → 409
POST      /kernelize ``{"graph", "level"?, "k"?}`` — build/warm the
                     graph's kernel, returns the reduction stats
POST      /batch     ``{"requests": [{"op": "mincut"|..., ...}, ...]}``
                     → ``{"responses": [...]}``, one per request, errors
                     inline so one bad request doesn't kill the batch
========  =========  ====================================================

The full wire contract, with replayed request/response examples, is
documented in ``docs/HTTP_API.md`` (kept honest by
``tests/test_http_api_docs.py``, which replays every example against a
live server).

Observability: every request runs under an ``http.request`` root span
(child spans cover body parse, store lookup, kernelization, cache
tiers, oracle path and executor fan-out — see ``docs/OBSERVABILITY.md``
for the vocabulary), every error response carries the request's
``trace_id`` so failures correlate with exported spans, and per-op
latency histograms feed ``GET /metrics`` and the ``requests`` section
of ``/stats``.  The root span closes and the request is counted
*before* the reply bytes are written, so a client holding a response
always finds its own request in ``/trace`` and ``/metrics``
(read-your-own-trace; the recorded duration excludes the socket
write).

``make_server(service, port=0)`` binds an ephemeral port for tests;
``serve(...)`` is the blocking entry point ``repro-cut serve`` uses.
A tiny ``urllib`` client (:func:`request_json`) backs ``repro-cut
query`` and the end-to-end tests.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..graph import Graph, load_any
from .deltas import FingerprintMismatch
from .service import CutService

_MAX_BODY = 64 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a :class:`CutService`."""

    daemon_threads = True

    def __init__(self, address, service: CutService, *, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service = self.server.service
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path
        op = path.lstrip("/") or "unknown"
        t0 = time.perf_counter()
        with service.tracer.span("http.request") as root:
            if root:
                root.set(method="GET", path=path, op=op)
            if path == "/healthz":
                status, payload = 200, {"ok": True}
            elif path == "/graphs":
                status, payload = 200, {"graphs": service.graphs()}
            elif path == "/stats":
                status, payload = 200, service.stats()
            elif path == "/metrics":
                status, payload = 200, service.metrics_payload()
            elif path == "/trace":
                query = urllib.parse.parse_qs(parsed.query)
                try:
                    limit = int(query["limit"][0]) if "limit" in query else None
                except ValueError:
                    limit = None
                status, payload = 200, {
                    "spans": service.tracer.snapshot(limit),
                    "stats": service.tracer.stats(),
                }
            else:
                status, payload = 404, {"error": f"unknown path {path!r}"}
            if status >= 400:
                payload = _with_trace_id(root, payload)
            if root:
                root.set(status=status)
        # span closed and metrics recorded *before* the reply bytes go
        # out: a client that has the response can immediately read its
        # own request in /trace and /metrics (the recorded duration
        # excludes the socket write)
        service.observe_request(
            op, time.perf_counter() - t0, error=status >= 400
        )
        self._reply(status, payload)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        service = self.server.service
        tracer = service.tracer
        op = self.path.lstrip("/") or "unknown"
        t0 = time.perf_counter()
        with tracer.span("http.request") as root:
            if root:
                root.set(method="POST", path=self.path, op=op)
            try:
                with tracer.span("http.parse") as sp:
                    body = self._read_json()
                    if sp:
                        sp.set(
                            content_length=int(
                                self.headers.get("Content-Length") or 0
                            )
                        )
            except ValueError as exc:
                status, payload = 400, {"error": str(exc)}
            else:
                if self.path == "/batch":
                    status, payload = self._handle_batch(root, body)
                else:
                    status, payload = self._dispatch_safe(op, body)
            if status >= 400:
                payload = _with_trace_id(root, payload)
            if root:
                root.set(status=status)
        # as in do_GET: trace + metrics land before the reply is sent
        service.observe_request(
            op, time.perf_counter() - t0, error=status >= 400
        )
        self._reply(status, payload)

    def _handle_batch(self, root, body: dict) -> tuple[int, dict]:
        """``/batch``: dispatch each item, errors inline (with trace_id)."""
        requests = body.get("requests")
        if not isinstance(requests, list):
            return 400, {"error": "batch body needs a 'requests' list"}
        tracer = self.server.service.tracer
        responses = []
        for i, item in enumerate(requests):
            op = item.get("op") if isinstance(item, dict) else None
            with tracer.span("batch.item") as sp:
                if sp:
                    sp.set(op=op, index=i)
                status, payload = self._dispatch_safe(op, item)
                if sp:
                    sp.set(status=status)
            if status >= 400:
                payload = _with_trace_id(root, payload)
            responses.append(payload)
        return 200, {"responses": responses}

    def _dispatch_safe(self, op: str | None, body) -> tuple[int, dict]:
        """Dispatch with every failure mapped to a JSON (status, body).

        A handler must never die without replying — a thread killed by
        an uncaught exception drops the connection mid-request and, in
        ``/batch``, would break the errors-inline contract.
        """
        try:
            return 200, self._dispatch(op, body)
        except _BadRequest as exc:
            return 400, {"error": str(exc)}
        except FingerprintMismatch as exc:
            return 409, {
                "error": str(exc),
                "expected_fingerprint": exc.expected,
                "fingerprint": exc.actual,
            }
        except KeyError as exc:
            return 404, {"error": _key_error_message(exc)}
        except OSError as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    def _dispatch(self, op: str | None, body: dict) -> dict:
        service = self.server.service
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        try:
            if op == "graphs":
                return service.register(*_parse_registration(body))
            if op == "mincut":
                return service.mincut(
                    _require(body, "graph"),
                    eps=float(body.get("eps", 0.5)),
                    trials=_opt_int(body, "trials"),
                    seed=int(body.get("seed", 0)),
                    preprocess=body.get("preprocess"),
                )
            if op == "kcut":
                return service.kcut(
                    _require(body, "graph"),
                    int(_require(body, "k")),
                    eps=float(body.get("eps", 0.5)),
                    trials=int(body.get("trials", 1)),
                    seed=int(body.get("seed", 0)),
                    preprocess=body.get("preprocess"),
                )
            if op == "stcut":
                return service.stcut(
                    _require(body, "graph"),
                    _require(body, "s"),
                    _require(body, "t"),
                )
            if op == "mutate":
                return service.mutate(
                    _require(body, "graph"),
                    adds=body.get("adds") or (),
                    removes=body.get("removes") or (),
                    reweights=body.get("reweights") or (),
                    deltas=body.get("deltas"),
                    expected_fingerprint=body.get("expected_fingerprint"),
                )
            if op == "kernelize":
                return service.kernelize(
                    _require(body, "graph"),
                    level=body.get("level", "safe"),
                    k=body.get("k"),
                )
            if op == "evict":
                return service.evict(_require(body, "graph"))
        except FingerprintMismatch:
            raise
        except (TypeError, ValueError) as exc:
            raise _BadRequest(str(exc)) from exc
        raise _BadRequest(f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body exceeds {_MAX_BODY} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body; expected JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON: {exc}") from exc

    def _reply(self, status: int, payload: dict) -> None:
        data = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if not self.server.quiet:
            super().log_message(fmt, *args)


class _BadRequest(Exception):
    """Maps to HTTP 400."""


def _with_trace_id(root, payload: dict) -> dict:
    """Stamp the request's trace id onto an error payload.

    Every 4xx/5xx body (and every inline ``/batch`` error) carries the
    ``trace_id`` of its ``http.request`` span, so a failure seen by a
    client is correlatable with the exported span tree.  ``None`` when
    the service runs with tracing disabled.
    """
    payload["trace_id"] = root.trace_id if root else None
    return payload


def _key_error_message(exc: KeyError) -> str:
    # str(KeyError("x")) is "'x'" — unwrap the arg for clean JSON errors.
    return str(exc.args[0]) if exc.args else str(exc)


# ----------------------------------------------------------------------
def _require(body: dict, key: str):
    if key not in body:
        raise _BadRequest(f"missing required field {key!r}")
    return body[key]


def _opt_int(body: dict, key: str) -> int | None:
    value = body.get(key)
    return None if value is None else int(value)


def _parse_registration(body: dict) -> tuple[str, Graph]:
    name = _require(body, "name")
    if "path" in body:
        return name, load_any(body["path"])
    edges = _require(body, "edges")
    graph = Graph(vertices=body.get("vertices", ()))
    for edge in edges:
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise _BadRequest(f"bad edge {edge!r}: want [u, v] or [u, v, w]")
        u, v = edge[0], edge[1]
        w = float(edge[2]) if len(edge) == 3 else 1.0
        graph.add_edge(u, v, w)
    return name, graph


# ----------------------------------------------------------------------
# Server + client entry points
# ----------------------------------------------------------------------
def make_server(
    service: CutService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind (``port=0`` → ephemeral) without starting the accept loop."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


def serve(
    service: CutService, *, host: str = "127.0.0.1", port: int = 8008
) -> None:
    """Blocking accept loop (Ctrl-C to stop) — ``repro-cut serve``."""
    with make_server(service, host=host, port=port, quiet=False) as server:
        print(f"serving on {server.url}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass


def request_json(
    url: str, path: str, payload: dict | None = None, *, timeout: float = 60.0
) -> dict:
    """One JSON round-trip: GET when ``payload`` is None, else POST.

    4xx responses come back as their decoded ``{"error": ...}`` body
    rather than raising, so CLI users see the server's message.
    """
    full = url.rstrip("/") + path
    if payload is None:
        req = urllib.request.Request(full)
    else:
        req = urllib.request.Request(
            full,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            return json.loads(body)
        except json.JSONDecodeError:
            raise RuntimeError(f"HTTP {exc.code}: {body[:200]!r}") from exc
    except urllib.error.URLError as exc:
        raise ConnectionError(
            f"cannot reach {full}: {exc.reason}"
        ) from exc
