"""CutService — the query-engine facade the HTTP front end exposes.

Composition (each piece independently testable):

* :class:`~repro.service.store.GraphStore` — graphs parsed and
  fingerprinted once, resident thereafter, LRU-bounded;
* :class:`~repro.service.executor.TrialExecutor` — boosting trials
  fanned over a process pool, deterministically merged;
* :class:`~repro.service.oracle.CutOracle` — one lazy Gomory–Hu tree
  per resident graph for O(n) repeated s–t queries;
* :class:`~repro.service.cache.LRUCache` — finished query results keyed
  by ``(fingerprint, algorithm, params, seed)``.

Result-cache keys use the graph **fingerprint**, not the name, so the
cache is content-addressed: re-registering the same graph under another
name (or after an eviction) still hits.  Evicting a graph releases its
oracle; cached results survive (they are small summaries, and the LRU
bounds them).

Graphs are **mutable in place** through :meth:`CutService.mutate`
(edge adds/removes/reweights, batched): the store applies the delta to
the resident columnar graph, the fingerprint advances by chaining the
delta digest, and invalidation is selective — oracle trees survive
increase-only deltas behind per-query certificates, kernels revalidate
where their certificates stand, solved-kernel results re-key, and
everything else is dropped so the next query recomputes exactly what a
cold re-upload of the mutated edge list would (see
:mod:`repro.service.deltas` and ``docs/ARCHITECTURE.md``).

Every public query method returns a JSON-able ``dict`` — the same
payload the HTTP layer ships — with a ``"cached"`` flag so clients and
tests can observe amortisation directly.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Hashable

from ..graph import Graph
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..preprocess import validate_level
from .cache import LRUCache
from .deltas import GraphDelta, MutationRecord, resolve_vertex
from .executor import TrialExecutor, default_trials
from .oracle import CutOracle
from .store import GraphEntry, GraphStore

Vertex = Hashable


class CutService:
    """Long-lived cut-query engine over a registry of resident graphs.

    >>> from repro.graph import Graph
    >>> with CutService() as svc:
    ...     entry = svc.register(
    ...         "tri", Graph(edges=[(0, 1, 2.0), (1, 2, 1.0), (2, 0, 1.0)]))
    ...     before = svc.stcut("tri", 0, 1)["weight"]
    ...     resp = svc.mutate("tri", reweights=[[0, 1, 5.0]])
    ...     after = svc.stcut("tri", 0, 1)["weight"]
    >>> before, resp["generation"], after
    (3.0, 1, 6.0)
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        store_capacity: int | None = None,
        result_cache_capacity: int = 256,
        flow_engine: str = "dinic",
        ampc_backend: str | None = None,
        preprocess: str = "off",
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        #: service-wide instrument registry — every component below
        #: registers its counters/histograms here, so ``GET /metrics``
        #: is one snapshot() pass (oracles keep per-fingerprint private
        #: scopes, aggregated by :meth:`metrics_payload`)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: request-lifecycle span source; pass ``Tracer(enabled=False)``
        #: to turn tracing off (the disabled path is a no-op — see
        #: ``tests/test_tracing.py``)
        self.tracer = tracer if tracer is not None else Tracer()
        self.store = GraphStore(
            capacity=store_capacity,
            on_evict=self._release_oracle,
            metrics=self.metrics.scope("store"),
        )
        self.executor = TrialExecutor(
            workers=workers,
            ampc_backend=ampc_backend,
            metrics=self.metrics.scope("executor"),
            tracer=self.tracer,
        )
        self.results = LRUCache(
            result_cache_capacity, metrics=self.metrics.scope("results")
        )
        self.flow_engine = flow_engine
        #: default kernelization level for mincut/kcut queries; each
        #: query may override it with its own ``preprocess`` field.
        self.preprocess = validate_level(preprocess)
        self._oracles: dict[str, CutOracle] = {}  # fingerprint -> oracle
        self._lock = threading.Lock()
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(
        self, name: str, graph: Graph, *, source: str | None = None
    ) -> dict:
        """Admit a graph; returns its ``/graphs`` description."""
        with self.tracer.span("register") as sp:
            entry = self.store.register(name, graph, source=source)
            if sp:
                sp.set(
                    graph=name,
                    fingerprint=entry.fingerprint,
                    num_vertices=entry.num_vertices,
                    num_edges=entry.num_edges,
                )
            return entry.describe()

    def register_file(self, name: str, path: Path | str) -> dict:
        with self.tracer.span("register") as sp:
            entry = self.store.register_file(name, path)
            if sp:
                sp.set(
                    graph=name,
                    fingerprint=entry.fingerprint,
                    source=str(path),
                )
            return entry.describe()

    def evict(self, name: str) -> dict:
        return self.store.evict(name).describe()

    def graphs(self) -> list[dict]:
        return [e.describe() for e in self.store.entries()]

    def _release_oracle(self, entry: GraphEntry) -> None:
        # Called by the store on eviction.  Only drop the oracle if no
        # *other* resident entry shares the fingerprint (content-equal
        # graphs registered under two names share one oracle).
        with self._lock:
            if any(
                e.fingerprint == entry.fingerprint for e in self.store.entries()
            ):
                return
            self._oracles.pop(entry.fingerprint, None)
        self.executor.forget(entry.graph)

    def _oracle_for(self, entry: GraphEntry) -> CutOracle:
        with self._lock:
            oracle = self._oracles.get(entry.fingerprint)
            if oracle is None:
                oracle = CutOracle(
                    entry.graph, engine=self.flow_engine, tracer=self.tracer
                )
                # Only cache the oracle while its graph is still
                # resident: the entry may have been evicted between the
                # caller's store.get() and this point, and an oracle
                # cached after _release_oracle ran would be orphaned
                # (pinning graph + tree) forever.
                if any(
                    e.fingerprint == entry.fingerprint
                    for e in self.store.entries()
                ):
                    self._oracles[entry.fingerprint] = oracle
            return oracle

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def mincut(
        self,
        name: str,
        *,
        eps: float = 0.5,
        trials: int | None = None,
        seed: int = 0,
        max_copies: int = 4,
        preprocess: str | None = None,
    ) -> dict:
        """Boosted (2+eps)-approximate min cut of a registered graph.

        ``preprocess`` overrides the service default kernelization
        level.  With a non-``off`` level the boosting trials run on the
        graph's cached :class:`~repro.preprocess.CutKernel` (built once
        per fingerprint, resident alongside the graph) and the winning
        cut is lifted back; the response carries the kernel stats.
        """
        tracer = self.tracer
        with tracer.span("query.mincut") as qsp:
            with tracer.span("store.lookup") as sp:
                entry = self.store.get(name)
                if sp:
                    sp.set(graph=name, fingerprint=entry.fingerprint)
            level = validate_level(
                preprocess if preprocess is not None else self.preprocess
            )
            kernel = None
            if level != "off":
                with tracer.span("kernel") as sp:
                    kernel = self.store.kernel_for(entry, level)
                    if sp:
                        sp.set(
                            level=level,
                            solved=kernel.is_solved,
                            shrink=kernel.graph.num_vertices
                            / max(1, entry.num_vertices),
                        )
            solved = kernel is not None and kernel.is_solved
            if trials is None:
                target_n = (
                    kernel.graph.num_vertices
                    if kernel is not None
                    else entry.num_vertices
                )
                trials = 0 if solved else default_trials(max(2, target_n))
            key = (
                entry.fingerprint,
                "mincut",
                (
                    "eps", eps, "trials", trials, "max_copies", max_copies,
                    "preprocess", level,
                ),
                seed,
            )
            with tracer.span("cache.lookup") as sp:
                cached = self.results.get(key)
                if sp:
                    sp.set(tier="hit" if cached is not None else "miss")
            if qsp:
                qsp.set(
                    graph=name,
                    fingerprint=entry.fingerprint,
                    algorithm="ampc-mincut-boosted",
                    cached=cached is not None,
                )
            if cached is not None:
                # Content-addressed hit: rewrite the name the caller
                # used (the cached payload may have been computed under
                # another).
                return {**cached, "graph": name, "cached": True}
            t0 = time.perf_counter()
            if solved:
                cut = kernel.trivial_cut()
                rounds = 0
            elif kernel is not None:
                result = self.executor.run_mincut(
                    kernel.graph, eps=eps, trials=trials, seed=seed,
                    max_copies=max_copies,
                )
                with tracer.span("lift") as sp:
                    cut = kernel.lift(result.cut.side)
                    if sp:
                        sp.set(side=len(cut.side))
                rounds = result.ledger.rounds
            else:
                result = self.executor.run_mincut(
                    entry.graph, eps=eps, trials=trials, seed=seed,
                    max_copies=max_copies,
                )
                cut = result.cut
                rounds = result.ledger.rounds
            payload = {
                "graph": name,
                "fingerprint": entry.fingerprint,
                "algorithm": "ampc-mincut-boosted",
                "weight": cut.weight,
                "side": _vertex_list(cut.side),
                "rounds": rounds,
                "trials": trials,
                "seed": seed,
                "eps": eps,
                "elapsed_s": time.perf_counter() - t0,
            }
            if kernel is not None:
                payload["preprocess"] = kernel.stats()
            self.results.put(key, payload)
            return {**payload, "cached": False}

    def kcut(
        self,
        name: str,
        k: int,
        *,
        eps: float = 0.5,
        trials: int = 1,
        seed: int = 0,
        max_copies: int = 2,
        preprocess: str | None = None,
    ) -> dict:
        """(4+eps)-approximate min k-cut of a registered graph.

        With a non-``off`` ``preprocess`` level the trials run on the
        cached k-cut kernel (built once per (fingerprint, k, level),
        like the min-cut kernel) and the winning partition is lifted
        back to the original vertex set.
        """
        tracer = self.tracer
        with tracer.span("query.kcut") as qsp:
            with tracer.span("store.lookup") as sp:
                entry = self.store.get(name)
                if sp:
                    sp.set(graph=name, fingerprint=entry.fingerprint)
            level = validate_level(
                preprocess if preprocess is not None else self.preprocess
            )
            kernel = None
            if level != "off":
                with tracer.span("kernel") as sp:
                    kernel = self.store.kcut_kernel_for(entry, k, level)
                    if sp:
                        sp.set(level=level, reduced=kernel.reduced)
            key = (
                entry.fingerprint,
                "kcut",
                (
                    "k", k, "eps", eps, "trials", trials, "max_copies",
                    max_copies, "preprocess", level,
                ),
                seed,
            )
            with tracer.span("cache.lookup") as sp:
                cached = self.results.get(key)
                if sp:
                    sp.set(tier="hit" if cached is not None else "miss")
            if qsp:
                qsp.set(
                    graph=name,
                    fingerprint=entry.fingerprint,
                    algorithm="apx-split-kcut",
                    cached=cached is not None,
                )
            if cached is not None:
                return {**cached, "graph": name, "cached": True}
            t0 = time.perf_counter()
            target = (
                kernel.graph
                if kernel is not None and kernel.reduced
                else entry.graph
            )
            result = self.executor.run_kcut(
                target, k, eps=eps, trials=trials, seed=seed,
                max_copies=max_copies,
            )
            if kernel is not None:
                if kernel.reduced:
                    with tracer.span("lift"):
                        result.kcut = kernel.lift(result.kcut.parts)
                result.kernel_stats = kernel.stats()
            return self._kcut_payload(
                name, entry, k, result, trials, seed, eps, key, t0
            )

    def _kcut_payload(
        self, name, entry, k, result, trials, seed, eps, key, t0
    ) -> dict:
        payload = {
            "graph": name,
            "fingerprint": entry.fingerprint,
            "algorithm": "apx-split-kcut",
            "weight": result.weight,
            "k": k,
            "parts": [
                _vertex_list(p)
                for p in sorted(result.kcut.parts, key=len, reverse=True)
            ],
            "rounds": result.ledger.rounds,
            "iterations": result.iterations,
            "trials": trials,
            "seed": seed,
            "eps": eps,
            "elapsed_s": time.perf_counter() - t0,
        }
        if result.kernel_stats is not None:
            payload["preprocess"] = result.kernel_stats
        self.results.put(key, payload)
        return {**payload, "cached": False}

    def stcut(self, name: str, s: Vertex, t: Vertex) -> dict:
        """Exact s–t min-cut value via the graph's Gomory–Hu oracle."""
        tracer = self.tracer
        with tracer.span("query.stcut") as qsp:
            with tracer.span("store.lookup") as sp:
                entry = self.store.get(name)
                if sp:
                    sp.set(graph=name, fingerprint=entry.fingerprint)
            oracle = self._oracle_for(entry)
            s = resolve_vertex(entry.graph, s)
            t = resolve_vertex(entry.graph, t)
            was_built = oracle.built
            t0 = time.perf_counter()
            value = oracle.st_min_cut(s, t)
            if qsp:
                qsp.set(
                    graph=name,
                    fingerprint=entry.fingerprint,
                    algorithm="gomory-hu",
                    cached=was_built,
                )
            return self._stcut_payload(name, entry, s, t, value, was_built, t0)

    def _stcut_payload(self, name, entry, s, t, value, was_built, t0) -> dict:
        return {
            "graph": name,
            "fingerprint": entry.fingerprint,
            "algorithm": "gomory-hu",
            "s": s,
            "t": t,
            "weight": value,
            "cached": was_built,
            "elapsed_s": time.perf_counter() - t0,
        }

    def gomoryhu(self, name: str, *, sides: bool = False) -> dict:
        """The full cut tree of a registered graph (`/gomoryhu`).

        One response carries every pairwise min-cut value (``matrix``),
        a flow-equivalent cut tree (``tree``), and per-pair bottleneck
        tree-edge indices (``bottleneck``); with ``sides=True`` each
        tree edge also records a real cut bipartition of its weight.

        The *values* come from the graph's resident
        :class:`~repro.service.oracle.CutOracle` — exact on the fresh,
        masked and repaired settle paths alike — but the served tree is
        **reconstructed canonically** from the value matrix (a maximum
        spanning tree under a fixed tie-break, which is itself a valid
        flow-equivalent Gomory–Hu tree).  Raw Gusfield trees depend on
        build history; the canonical reconstruction is a pure function
        of the matrix, which is how warm, cold, repaired and
        cross-backend replicas all serve bit-identical payloads
        (``tests/test_dynamic_stream.py``).

        A disconnected graph (e.g. after a reweight-to-zero delta) is
        served per component — cross-component entries are ``null`` and
        ``connected`` is false — exactly as a cold rebuild would report
        it, instead of failing on the oracle's connectivity check.
        """
        tracer = self.tracer
        with tracer.span("query.gomoryhu") as qsp:
            with tracer.span("store.lookup") as sp:
                entry = self.store.get(name)
                if sp:
                    sp.set(graph=name, fingerprint=entry.fingerprint)
            sides = bool(sides)
            key = (entry.fingerprint, "gomoryhu", ("sides", sides), 0)
            with tracer.span("cache.lookup") as sp:
                cached = self.results.get(key)
                if sp:
                    sp.set(tier="hit" if cached is not None else "miss")
            if qsp:
                qsp.set(
                    graph=name,
                    fingerprint=entry.fingerprint,
                    algorithm="gomory-hu-allpairs",
                    cached=cached is not None,
                )
            if cached is not None:
                return {**cached, "graph": name, "cached": True}
            if entry.graph.num_vertices < 2:
                raise ValueError("need n >= 2")
            self.metrics.scope("scenarios").counter("gomoryhu").inc()
            t0 = time.perf_counter()
            payload = self._gomoryhu_payload(name, entry, sides)
            payload["elapsed_s"] = time.perf_counter() - t0
            self.results.put(key, payload)
            return {**payload, "cached": False}

    def _gomoryhu_payload(self, name: str, entry: GraphEntry,
                          sides: bool) -> dict:
        from ..flow import DinicSolver, gomory_hu_tree

        graph = entry.graph
        vertices = _vertex_list(graph.vertices())
        index = {v: i for i, v in enumerate(vertices)}
        n = len(vertices)
        components = graph.components()
        connected = len(components) == 1
        if connected:
            values = self._oracle_for(entry).all_pairs()
        else:
            # Per-component trees, built cold: the oracle (rightly)
            # refuses disconnected graphs, and cross-component pairs
            # have no finite min cut (served as null).
            values = {}
            for comp in components:
                if len(comp) < 2:
                    continue
                sub = gomory_hu_tree(
                    graph.induced_subgraph(comp), engine=self.flow_engine
                )
                for u, row in sub.all_pairs_min_cuts().items():
                    values.setdefault(u, {}).update(row)
        matrix: list[list] = [[None] * n for _ in range(n)]
        for u, row in values.items():
            for v, w in row.items():
                matrix[index[u]][index[v]] = float(w)

        # Canonical cut tree: the maximum spanning forest of the value
        # matrix under a fixed tie-break.  Adjacent matrix pairs are
        # joined by a single tree edge, so each edge's weight is
        # exactly that pair's min-cut value.
        pairs = [
            (i, j, matrix[i][j])
            for i in range(n)
            for j in range(i + 1, n)
            if matrix[i][j] is not None
        ]
        pairs.sort(key=lambda e: (-e[2], e[0], e[1]))
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        tree: list[dict] = []
        adjacency: list[list] = [[] for _ in range(n)]
        for i, j, w in pairs:
            ri, rj = find(i), find(j)
            if ri == rj:
                continue
            parent[rj] = ri
            eidx = len(tree)
            tree.append({"u": vertices[i], "v": vertices[j], "weight": w})
            adjacency[i].append((j, eidx, w))
            adjacency[j].append((i, eidx, w))

        # Bottleneck edge per pair: the argmin-weight edge on the tree
        # path (lowest edge index on ties) — symmetric because both
        # directions argmin over the same path.
        bottleneck: list[list] = [[None] * n for _ in range(n)]
        for s in range(n):
            stack: list[tuple] = [(s, None)]
            seen = {s}
            while stack:
                v, best = stack.pop()
                for nbr, eidx, w in adjacency[v]:
                    if nbr in seen:
                        continue
                    seen.add(nbr)
                    cand = best
                    if (cand is None or w < cand[0]
                            or (w == cand[0] and eidx < cand[1])):
                        cand = (w, eidx)
                    bottleneck[s][nbr] = cand[1]
                    stack.append((nbr, cand))

        if sides:
            for eidx, rec in enumerate(tree):
                iu = index[rec["u"]]
                reach = {iu}
                stack = [iu]
                while stack:
                    v = stack.pop()
                    for nbr, other, _ in adjacency[v]:
                        if other != eidx and nbr not in reach:
                            reach.add(nbr)
                            stack.append(nbr)
                side = frozenset(vertices[i] for i in reach)
                if graph.cut_weight(side) != rec["weight"]:
                    # The canonical tree is flow-equivalent, not
                    # cut-equivalent: when the fundamental side misses,
                    # one deterministic max-flow recovers a real cut of
                    # exactly this value.
                    side = DinicSolver(graph).max_flow(
                        rec["u"], rec["v"]
                    ).source_side
                rec["side"] = _vertex_list(side)

        return {
            "graph": name,
            "fingerprint": entry.fingerprint,
            "algorithm": "gomory-hu-allpairs",
            "num_vertices": n,
            "connected": connected,
            "components": len(components),
            "vertices": vertices,
            "matrix": matrix,
            "tree": tree,
            "bottleneck": bottleneck,
            "sides": sides,
        }

    def sparsestcut(self, name: str, *, seed: int = 0, trials: int = 2,
                    kernel: bool = False) -> dict:
        """Uniform sparsest cut of a registered graph (`/sparsestcut`).

        Exact enumeration up to 16 vertices, the Gomory–Hu
        single-commodity sweep (:mod:`repro.analysis.sparsest`) above
        it.  ``kernel=True`` first contracts edges provably uncut by
        any solution sparser than a certified upper bound — shrinking
        the instance without moving the optimum, and often pulling a
        large graph under the exact-enumeration limit.

        The solver never touches the mutable oracle state: it is a
        pure function of graph content, so warm and cold replicas (and
        every AMPC backend) return bit-identical answers.
        """
        from ..analysis.sparsest import (
            EXACT_LIMIT,
            approx_sparsest_cut,
            exact_sparsest_cut,
            lift_side,
            sparsest_kernel,
        )

        tracer = self.tracer
        with tracer.span("query.sparsestcut") as qsp:
            with tracer.span("store.lookup") as sp:
                entry = self.store.get(name)
                if sp:
                    sp.set(graph=name, fingerprint=entry.fingerprint)
            seed, trials, kernel = int(seed), int(trials), bool(kernel)
            key = (
                entry.fingerprint,
                "sparsestcut",
                ("trials", trials, "kernel", kernel),
                seed,
            )
            with tracer.span("cache.lookup") as sp:
                cached = self.results.get(key)
                if sp:
                    sp.set(tier="hit" if cached is not None else "miss")
            if qsp:
                qsp.set(
                    graph=name,
                    fingerprint=entry.fingerprint,
                    algorithm="sparsest-cut",
                    cached=cached is not None,
                )
            if cached is not None:
                return {**cached, "graph": name, "cached": True}
            graph = entry.graph
            n = graph.num_vertices
            if n < 2:
                raise ValueError("need n >= 2")
            self.metrics.scope("scenarios").counter("sparsestcut").inc()
            t0 = time.perf_counter()
            target, sizes, blocks, kstats = graph, None, None, None
            if kernel:
                with tracer.span("sparsest.kernel") as sp:
                    bound = approx_sparsest_cut(
                        graph, seed=seed, trials=max(1, trials)
                    )
                    target, sizes, blocks = sparsest_kernel(
                        graph, upper=bound.sparsity
                    )
                    kstats = {
                        "original_vertices": n,
                        "kernel_vertices": target.num_vertices,
                        "original_edges": graph.num_edges,
                        "kernel_edges": target.num_edges,
                        "upper_bound": bound.sparsity,
                    }
                    if sp:
                        sp.set(**kstats)
                if target.num_vertices < 2:
                    # Unreachable when the bound comes from a real cut;
                    # kept as a guard against float-boundary surprises.
                    target, sizes, blocks = graph, None, None
            with tracer.span("sparsest.solve") as sp:
                if target.num_vertices <= EXACT_LIMIT:
                    result = exact_sparsest_cut(target, sizes=sizes)
                else:
                    result = approx_sparsest_cut(
                        target, sizes=sizes, seed=seed, trials=trials
                    )
                if sp:
                    sp.set(method=result.method,
                           solve_vertices=target.num_vertices)
            side = result.side if blocks is None else lift_side(
                result.side, blocks
            )
            payload = {
                "graph": name,
                "fingerprint": entry.fingerprint,
                "algorithm": "sparsest-cut",
                "sparsity": result.sparsity,
                "weight": result.weight,
                "demand": result.demand,
                "side": _vertex_list(side),
                "method": result.method,
                "exact": result.method == "exact-enum",
                "num_vertices": n,
                "seed": seed,
                "trials": trials,
                "kernel": kernel,
                "elapsed_s": time.perf_counter() - t0,
            }
            if kstats is not None:
                payload["sparsest_kernel"] = kstats
            self.results.put(key, payload)
            return {**payload, "cached": False}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mutate(
        self,
        name: str,
        *,
        adds: list | tuple = (),
        removes: list | tuple = (),
        reweights: list | tuple = (),
        deltas: list | None = None,
        expected_fingerprint: str | None = None,
    ) -> dict:
        """Apply edge deltas to a resident graph **in place** (`/mutate`).

        Pass either one delta through the top-level
        ``adds``/``removes``/``reweights`` lists (rows ``[u, v, w]`` /
        ``[u, v]``) or a batch through ``deltas`` (a list of such
        objects, applied in order).  Each delta is atomic — validated
        against its pre-state before anything lands — and advances the
        graph's fingerprint by chaining
        (:mod:`repro.service.deltas`), so the warm path costs
        ``O(|delta|)`` plus selective invalidation instead of the
        re-upload's full parse + hash.

        Invalidation is scoped to what the delta can touch: other
        graphs' cache entries survive untouched; this graph's
        Gomory–Hu oracle survives arbitrary mixed-sign deltas —
        increase-only nets mask the tree behind per-query certificates,
        nets with decreases trigger a lazy localized repair
        (:meth:`repro.service.oracle.CutOracle.apply_delta`); kernels
        refresh where their reduction certificates stand
        (:func:`repro.preprocess.refresh_kernel`); solved-kernel
        mincut results are re-keyed to the new fingerprint.  Everything
        else is dropped, and the next query recomputes — bit-identical
        to a cold re-upload of the mutated edge list, which is the
        contract ``tests/test_mutation.py`` and
        ``tests/test_dynamic_stream.py`` enforce step by step.

        ``expected_fingerprint`` (checked against the state before the
        first delta) makes the call conditional — a mismatch raises
        :class:`~repro.service.deltas.FingerprintMismatch` (HTTP 409)
        and applies nothing.  A multi-delta batch that fails midway
        reports the failing index; earlier deltas remain applied.
        """
        if deltas is not None:
            if adds or removes or reweights:
                raise ValueError(
                    "pass either top-level adds/removes/reweights or a "
                    "'deltas' list, not both"
                )
            parsed = [
                d if isinstance(d, GraphDelta) else GraphDelta.from_json(d)
                for d in deltas
            ]
        else:
            parsed = [
                GraphDelta.from_json(
                    {"adds": adds, "removes": removes, "reweights": reweights}
                )
            ]
        if not parsed:
            raise ValueError("no deltas given")
        tracer = self.tracer
        with tracer.span("mutate") as msp:
            t0 = time.perf_counter()
            records: list[MutationRecord] = []
            entry: GraphEntry | None = None
            for i, delta in enumerate(parsed):
                try:
                    with tracer.span("mutate.apply") as sp:
                        entry, record = self.store.apply_delta(
                            name,
                            delta,
                            expected_fingerprint=(
                                expected_fingerprint if i == 0 else None
                            ),
                        )
                        if sp:
                            sp.set(
                                graph=name,
                                fingerprint=record.new_fingerprint,
                                noop=record.effect.is_noop,
                                copied_on_write=record.copied_on_write,
                            )
                except (ValueError, KeyError) as exc:
                    if not records:
                        raise
                    reason = exc.args[0] if exc.args else exc
                    raise ValueError(
                        f"delta {i} of {len(parsed)} failed: {reason} "
                        f"(deltas 0..{i - 1} remain applied; re-check "
                        "/graphs for the current fingerprint)"
                    ) from None
                with tracer.span("mutate.invalidate") as sp:
                    self._absorb_mutation(entry, record)
                    if sp:
                        sp.set(
                            oracle=record.oracle,
                            results_dropped=record.results_dropped,
                            results_rekeyed=record.results_rekeyed,
                        )
                records.append(record)
            if msp:
                msp.set(
                    graph=name,
                    fingerprint=entry.fingerprint,
                    deltas=len(records),
                )
            return {
                "graph": name,
                "fingerprint": entry.fingerprint,
                "generation": entry.generation,
                "mutations": entry.mutations,
                "num_vertices": entry.num_vertices,
                "num_edges": entry.num_edges,
                "deltas": [r.as_dict() for r in records],
                "elapsed_s": time.perf_counter() - t0,
            }

    def _absorb_mutation(self, entry: GraphEntry, record: MutationRecord) -> None:
        """Service-level selective invalidation for one applied delta.

        The store already moved the fingerprint and revalidated its
        kernels; here the executor's pickled-blob memo, the per-graph
        Gomory–Hu oracle and the result cache follow.  When the old
        content is still resident under another name (``record.shared``,
        after copy-on-write) nothing is invalidated — the delta cannot
        touch the sibling's state.
        """
        effect = record.effect
        if effect.is_noop:
            record.oracle = "kept"
            return
        # The executor memoises pickled graphs by object identity; the
        # mutated object's blob is stale (no-op after copy-on-write,
        # where the object is fresh).
        self.executor.forget(entry.graph)
        if record.shared:
            record.oracle = "kept"
            return
        old_fp, new_fp = record.old_fingerprint, record.new_fingerprint
        with self._lock:
            oracle = self._oracles.pop(old_fp, None)
        if oracle is None:
            record.oracle = "absent"
        else:
            record.oracle = oracle.apply_delta(
                entry.graph,
                effect.changed,
                has_new_vertices=bool(effect.new_vertices),
            )
            with self._lock:
                self._oracles[new_fp] = oracle
        dropped = rekeyed = 0
        for key in list(self.results):
            if not (isinstance(key, tuple) and key and key[0] == old_fp):
                continue
            if self.results.pop(key, None) is None:
                continue
            fresh = self._rekeyed_result(key, new_fp)
            if fresh is not None:
                self.results.put((new_fp,) + key[1:], fresh)
                rekeyed += 1
            else:
                dropped += 1
        record.results_dropped = dropped
        record.results_rekeyed = rekeyed

    def _rekeyed_result(self, key: tuple, new_fp: str) -> dict | None:
        """Regenerate a swept result under the new fingerprint, if sound.

        Only mincut entries whose kernel survived revalidation *solved*
        qualify: the cold path would answer straight from
        ``kernel.trivial_cut()`` (rounds 0, no solver, no randomness),
        so rebuilding the payload from the bit-identical revalidated
        kernel reproduces the recomputation exactly — the "endpoints
        vs. cached partition" style test with the strongest possible
        certificate.  Everything else returns ``None`` (drop).
        """
        _, kind, params_tuple, seed = key
        if kind != "mincut":
            return None
        params = dict(zip(params_tuple[0::2], params_tuple[1::2]))
        level = params.get("preprocess")
        if not level or level == "off":
            return None
        kernel = self.store.cached_kernel(new_fp, level)
        if kernel is None or not kernel.is_solved:
            return None
        cut = kernel.trivial_cut()
        return {
            "graph": "",  # rewritten with the caller's name on every hit
            "fingerprint": new_fp,
            "algorithm": "ampc-mincut-boosted",
            "weight": cut.weight,
            "side": _vertex_list(cut.side),
            "rounds": 0,
            "trials": params["trials"],
            "seed": seed,
            "eps": params["eps"],
            "elapsed_s": 0.0,
            "preprocess": kernel.stats(),
        }

    # ------------------------------------------------------------------
    # Kernel inspection
    # ------------------------------------------------------------------
    def kernelize(self, name: str, *, level: str = "safe", k: int | None = None) -> dict:
        """Build (or fetch) a resident graph's kernel (`/kernelize`).

        Warms the same per-fingerprint kernel cache the queries use, so
        a client can pay the reduction cost eagerly; ``cached`` reports
        whether the kernel was already resident.  With ``k`` the k-cut
        kernel is built instead.
        """
        entry = self.store.get(name)
        level = validate_level(level)
        t0 = time.perf_counter()
        if k is None:
            cached = self.store.has_kernel(entry.fingerprint, level)
            kernel = self.store.kernel_for(entry, level)
        else:
            k = int(k)
            cached = self.store.has_kernel(
                entry.fingerprint, ("kcut", k, level)
            )
            kernel = self.store.kcut_kernel_for(entry, k, level)
        payload = {
            "graph": name,
            "fingerprint": entry.fingerprint,
            "level": level,
            "cached": cached,
            "kernel": kernel.stats(),
            "elapsed_s": time.perf_counter() - t0,
        }
        if k is not None:
            payload["k"] = k
        return payload

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``/stats`` payload: every cache/pool counter in one dict."""
        with self._lock:
            # Snapshot only; oracle.stats() runs outside this lock so a
            # Gomory–Hu build in progress can't wedge the whole service.
            snapshot = dict(self._oracles)
        oracles = {fp: oracle.stats() for fp, oracle in snapshot.items()}
        store_stats = self.store.stats
        return {
            "uptime_s": time.time() - self.started_at,
            "preprocess": self.preprocess,
            "store": self.store.describe(),
            "results": self.results.stats(),
            "executor": self.executor.stats(),
            "oracles": oracles,
            "mutation": {
                "deltas_applied": store_stats.deltas_applied,
                "cow_copies": store_stats.cow_copies,
                "kernel_revalidations": store_stats.kernels_revalidated,
            },
            "requests": self.request_summary(),
            "tracer": self.tracer.stats(),
        }

    def observe_request(
        self, op: str, seconds: float, *, error: bool = False,
        shed: bool = False,
    ) -> None:
        """Record one served request into the per-op-class instruments.

        Called by the HTTP layer with the op name (``mincut``,
        ``stcut``, ``mutate``, ``graphs``, ``batch``, ...) and the
        handler-side wall time; feeds the ``requests.*`` histograms
        behind ``/metrics`` and the ``requests`` section of ``/stats``.
        A 429 from the admission gate counts as a *shed*, not an error
        — shedding under overload is the server working as designed.
        """
        scope = self.metrics.scope("requests").scope(op)
        scope.counter("count").inc()
        if error:
            scope.counter("errors").inc()
        if shed:
            scope.counter("shed").inc()
        scope.histogram("latency_s").record(seconds)

    def request_summary(self) -> dict:
        """Per-op-class latency tiles (the ``requests`` /stats section)."""
        summary: dict[str, dict] = {}
        for name, hist in self.metrics.histograms("requests.").items():
            op = name[len("requests."):].rsplit(".", 1)[0]
            digest = hist.summary()
            errors = self.metrics.counter(f"requests.{op}.errors").value
            summary[op] = {
                "count": digest["count"],
                "errors": errors,
                "p50_s": digest["p50"],
                "p95_s": digest["p95"],
                "p99_s": digest["p99"],
                "mean_s": digest["mean"],
            }
        return summary

    def metrics_payload(self) -> dict:
        """The ``GET /metrics`` body: one registry snapshot plus the
        per-fingerprint oracle counters aggregated under ``oracle.*``."""
        snap = self.metrics.snapshot()
        with self._lock:
            oracles = list(self._oracles.values())
        agg = {f: 0 for f in CutOracle.COUNTER_FIELDS}
        pair_hits = 0
        for oracle in oracles:
            for f in CutOracle.COUNTER_FIELDS:
                agg[f] += getattr(oracle, f)
            pair_hits += oracle.pair_hits
        snap["counters"].update(
            {f"oracle.{f}": v for f, v in sorted(agg.items())}
        )
        snap["counters"]["oracle.pair_hits"] = pair_hits
        # Fold in the shm round backend's process-wide counters so the
        # serving tier exposes pool/segment health (attaches, warm
        # rounds, bytes shared) without a second scrape target.
        from ..ampc.backends.shm import METRICS as shm_metrics

        snap["counters"].update(shm_metrics.snapshot()["counters"])
        snap["gauges"]["oracles.resident"] = len(oracles)
        snap["gauges"]["uptime_s"] = time.time() - self.started_at
        return snap

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "CutService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
def _vertex_list(side) -> list:
    """A cut side as a JSON-able, deterministically ordered list."""
    return sorted(side, key=lambda v: (type(v).__name__, repr(v)))
