"""CutService — the query-engine facade the HTTP front end exposes.

Composition (each piece independently testable):

* :class:`~repro.service.store.GraphStore` — graphs parsed and
  fingerprinted once, resident thereafter, LRU-bounded;
* :class:`~repro.service.executor.TrialExecutor` — boosting trials
  fanned over a process pool, deterministically merged;
* :class:`~repro.service.oracle.CutOracle` — one lazy Gomory–Hu tree
  per resident graph for O(n) repeated s–t queries;
* :class:`~repro.service.cache.LRUCache` — finished query results keyed
  by ``(fingerprint, algorithm, params, seed)``.

Result-cache keys use the graph **fingerprint**, not the name, so the
cache is content-addressed: re-registering the same graph under another
name (or after an eviction) still hits.  Evicting a graph releases its
oracle; cached results survive (they are small summaries, and the LRU
bounds them).

Every public query method returns a JSON-able ``dict`` — the same
payload the HTTP layer ships — with a ``"cached"`` flag so clients and
tests can observe amortisation directly.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Hashable

from ..graph import Graph
from ..preprocess import validate_level
from .cache import LRUCache
from .executor import TrialExecutor, default_trials
from .oracle import CutOracle
from .store import GraphEntry, GraphStore

Vertex = Hashable


class CutService:
    """Long-lived cut-query engine over a registry of resident graphs."""

    def __init__(
        self,
        *,
        workers: int = 1,
        store_capacity: int | None = None,
        result_cache_capacity: int = 256,
        flow_engine: str = "dinic",
        ampc_backend: str | None = None,
        preprocess: str = "off",
    ):
        self.store = GraphStore(
            capacity=store_capacity, on_evict=self._release_oracle
        )
        self.executor = TrialExecutor(workers=workers, ampc_backend=ampc_backend)
        self.results = LRUCache(result_cache_capacity)
        self.flow_engine = flow_engine
        #: default kernelization level for mincut/kcut queries; each
        #: query may override it with its own ``preprocess`` field.
        self.preprocess = validate_level(preprocess)
        self._oracles: dict[str, CutOracle] = {}  # fingerprint -> oracle
        self._lock = threading.Lock()
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(
        self, name: str, graph: Graph, *, source: str | None = None
    ) -> dict:
        """Admit a graph; returns its ``/graphs`` description."""
        entry = self.store.register(name, graph, source=source)
        return entry.describe()

    def register_file(self, name: str, path: Path | str) -> dict:
        return self.store.register_file(name, path).describe()

    def evict(self, name: str) -> dict:
        return self.store.evict(name).describe()

    def graphs(self) -> list[dict]:
        return [e.describe() for e in self.store.entries()]

    def _release_oracle(self, entry: GraphEntry) -> None:
        # Called by the store on eviction.  Only drop the oracle if no
        # *other* resident entry shares the fingerprint (content-equal
        # graphs registered under two names share one oracle).
        with self._lock:
            if any(
                e.fingerprint == entry.fingerprint for e in self.store.entries()
            ):
                return
            self._oracles.pop(entry.fingerprint, None)
        self.executor.forget(entry.graph)

    def _oracle_for(self, entry: GraphEntry) -> CutOracle:
        with self._lock:
            oracle = self._oracles.get(entry.fingerprint)
            if oracle is None:
                oracle = CutOracle(entry.graph, engine=self.flow_engine)
                # Only cache the oracle while its graph is still
                # resident: the entry may have been evicted between the
                # caller's store.get() and this point, and an oracle
                # cached after _release_oracle ran would be orphaned
                # (pinning graph + tree) forever.
                if any(
                    e.fingerprint == entry.fingerprint
                    for e in self.store.entries()
                ):
                    self._oracles[entry.fingerprint] = oracle
            return oracle

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def mincut(
        self,
        name: str,
        *,
        eps: float = 0.5,
        trials: int | None = None,
        seed: int = 0,
        max_copies: int = 4,
        preprocess: str | None = None,
    ) -> dict:
        """Boosted (2+eps)-approximate min cut of a registered graph.

        ``preprocess`` overrides the service default kernelization
        level.  With a non-``off`` level the boosting trials run on the
        graph's cached :class:`~repro.preprocess.CutKernel` (built once
        per fingerprint, resident alongside the graph) and the winning
        cut is lifted back; the response carries the kernel stats.
        """
        entry = self.store.get(name)
        level = validate_level(
            preprocess if preprocess is not None else self.preprocess
        )
        kernel = (
            self.store.kernel_for(entry, level) if level != "off" else None
        )
        solved = kernel is not None and kernel.is_solved
        if trials is None:
            target_n = (
                kernel.graph.num_vertices if kernel is not None else entry.num_vertices
            )
            trials = 0 if solved else default_trials(max(2, target_n))
        key = (
            entry.fingerprint,
            "mincut",
            (
                "eps", eps, "trials", trials, "max_copies", max_copies,
                "preprocess", level,
            ),
            seed,
        )
        cached = self.results.get(key)
        if cached is not None:
            # Content-addressed hit: rewrite the name the caller used
            # (the cached payload may have been computed under another).
            return {**cached, "graph": name, "cached": True}
        t0 = time.perf_counter()
        if solved:
            cut = kernel.trivial_cut()
            rounds = 0
        elif kernel is not None:
            result = self.executor.run_mincut(
                kernel.graph, eps=eps, trials=trials, seed=seed,
                max_copies=max_copies,
            )
            cut = kernel.lift(result.cut.side)
            rounds = result.ledger.rounds
        else:
            result = self.executor.run_mincut(
                entry.graph, eps=eps, trials=trials, seed=seed,
                max_copies=max_copies,
            )
            cut = result.cut
            rounds = result.ledger.rounds
        payload = {
            "graph": name,
            "fingerprint": entry.fingerprint,
            "algorithm": "ampc-mincut-boosted",
            "weight": cut.weight,
            "side": _vertex_list(cut.side),
            "rounds": rounds,
            "trials": trials,
            "seed": seed,
            "eps": eps,
            "elapsed_s": time.perf_counter() - t0,
        }
        if kernel is not None:
            payload["preprocess"] = kernel.stats()
        self.results.put(key, payload)
        return {**payload, "cached": False}

    def kcut(
        self,
        name: str,
        k: int,
        *,
        eps: float = 0.5,
        trials: int = 1,
        seed: int = 0,
        max_copies: int = 2,
        preprocess: str | None = None,
    ) -> dict:
        """(4+eps)-approximate min k-cut of a registered graph.

        With a non-``off`` ``preprocess`` level the trials run on the
        cached k-cut kernel (built once per (fingerprint, k, level),
        like the min-cut kernel) and the winning partition is lifted
        back to the original vertex set.
        """
        entry = self.store.get(name)
        level = validate_level(
            preprocess if preprocess is not None else self.preprocess
        )
        kernel = (
            self.store.kcut_kernel_for(entry, k, level)
            if level != "off"
            else None
        )
        key = (
            entry.fingerprint,
            "kcut",
            (
                "k", k, "eps", eps, "trials", trials, "max_copies", max_copies,
                "preprocess", level,
            ),
            seed,
        )
        cached = self.results.get(key)
        if cached is not None:
            return {**cached, "graph": name, "cached": True}
        t0 = time.perf_counter()
        target = (
            kernel.graph if kernel is not None and kernel.reduced else entry.graph
        )
        result = self.executor.run_kcut(
            target, k, eps=eps, trials=trials, seed=seed,
            max_copies=max_copies,
        )
        if kernel is not None:
            if kernel.reduced:
                result.kcut = kernel.lift(result.kcut.parts)
            result.kernel_stats = kernel.stats()
        payload = {
            "graph": name,
            "fingerprint": entry.fingerprint,
            "algorithm": "apx-split-kcut",
            "weight": result.weight,
            "k": k,
            "parts": [
                _vertex_list(p)
                for p in sorted(result.kcut.parts, key=len, reverse=True)
            ],
            "rounds": result.ledger.rounds,
            "iterations": result.iterations,
            "trials": trials,
            "seed": seed,
            "eps": eps,
            "elapsed_s": time.perf_counter() - t0,
        }
        if result.kernel_stats is not None:
            payload["preprocess"] = result.kernel_stats
        self.results.put(key, payload)
        return {**payload, "cached": False}

    def stcut(self, name: str, s: Vertex, t: Vertex) -> dict:
        """Exact s–t min-cut value via the graph's Gomory–Hu oracle."""
        entry = self.store.get(name)
        oracle = self._oracle_for(entry)
        s = _resolve_vertex(entry.graph, s)
        t = _resolve_vertex(entry.graph, t)
        was_built = oracle.built
        t0 = time.perf_counter()
        value = oracle.st_min_cut(s, t)
        return {
            "graph": name,
            "fingerprint": entry.fingerprint,
            "algorithm": "gomory-hu",
            "s": s,
            "t": t,
            "weight": value,
            "cached": was_built,
            "elapsed_s": time.perf_counter() - t0,
        }

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``/stats`` payload: every cache/pool counter in one dict."""
        with self._lock:
            # Snapshot only; oracle.stats() runs outside this lock so a
            # Gomory–Hu build in progress can't wedge the whole service.
            snapshot = dict(self._oracles)
        oracles = {fp: oracle.stats() for fp, oracle in snapshot.items()}
        return {
            "uptime_s": time.time() - self.started_at,
            "preprocess": self.preprocess,
            "store": self.store.describe(),
            "results": self.results.stats(),
            "executor": self.executor.stats(),
            "oracles": oracles,
        }

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "CutService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
def _vertex_list(side) -> list:
    """A cut side as a JSON-able, deterministically ordered list."""
    return sorted(side, key=lambda v: (type(v).__name__, repr(v)))


def _resolve_vertex(graph: Graph, v):
    """Map a wire-format vertex id onto a graph vertex.

    JSON round-trips lose the int/str distinction users type at a CLI,
    so fall back across the two spellings before failing.
    """
    candidates = [v]
    if isinstance(v, str):
        try:
            candidates.append(int(v))
        except ValueError:
            pass
    else:
        candidates.append(str(v))
    for c in candidates:
        try:
            graph.index_of(c)
            return c
        except KeyError:
            continue
    raise KeyError(f"vertex {v!r} not in graph")
