"""Weighted interval-stabbing minimum (Observation 9, Lemma 14).

Given the time intervals of one leader, ``Delta bag(r, t)`` equals the
total weight of intervals containing ``t``; minimising over
``t ∈ [0, ldr_time(r)]`` is a sweep: ``+w`` at each start, ``-w`` just
after each end, sorted, prefix-summed, minimum taken — exactly the
reduction of Lemma 14, whose AMPC cost is Theorem 5's minimum prefix
sum.

Two implementations with identical outputs (differentially tested):

* :func:`min_interval_overlap` — host-speed numpy sweep, used inside
  the Algorithm-3 pipeline;
* :func:`min_interval_overlap_ampc` — genuinely executes the sort and
  the minimum-prefix-sum on the AMPC simulator (measured rounds), used
  by the primitive benchmarks (E10).

Both treat uncovered gaps inside the domain as zero coverage; for
connected graphs a leader's coverage is never zero within its domain
(the bag always has an outgoing edge), but the semantics matter for
adversarial tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ampc import AMPCConfig, RoundLedger
from ..ampc.primitives import ampc_min_prefix_sum, ampc_sort
from .intervals import TimeInterval


def min_interval_overlap(
    intervals: Sequence[TimeInterval],
    domain_end: int,
) -> tuple[float, int]:
    """Minimum total weight covering any ``t ∈ [0, domain_end]``.

    Returns ``(weight, argmin_t)`` with the smallest such ``t``.
    Intervals are assumed to lie within the domain (the interval
    builder clips); a leading uncovered gap yields weight 0 at t=0.
    """
    if domain_end < 0:
        raise ValueError("domain_end must be >= 0")
    if not intervals:
        return (0.0, 0)

    starts = np.array([iv.start for iv in intervals], dtype=np.int64)
    ends = np.array([iv.end for iv in intervals], dtype=np.int64)
    weights = np.array([iv.weight for iv in intervals], dtype=np.float64)

    positions = np.concatenate([starts, ends + 1])
    deltas = np.concatenate([weights, -weights])
    keep = positions <= domain_end
    positions, deltas = positions[keep], deltas[keep]
    if positions.size == 0:
        return (0.0, 0)

    order = np.argsort(positions, kind="stable")
    positions, deltas = positions[order], deltas[order]
    # Collapse equal positions, then prefix-sum coverage per segment.
    uniq, idx = np.unique(positions, return_index=True)
    seg_delta = np.add.reduceat(deltas, idx)
    coverage = np.cumsum(seg_delta)
    # Coverage of the gap before the first event:
    best_w, best_t = np.inf, 0
    if uniq[0] > 0:
        best_w, best_t = 0.0, 0
    for p, c in zip(uniq, coverage):
        # segment [p, next_p - 1] has coverage c; we only need its start
        if c < best_w - 1e-12:
            best_w, best_t = float(c), int(p)
    return (float(best_w), int(best_t))


def min_interval_overlap_ampc(
    config: AMPCConfig,
    intervals: Sequence[TimeInterval],
    domain_end: int,
    *,
    ledger: RoundLedger | None = None,
) -> float:
    """Lemma 14 on the simulator: sort + compress + minimum prefix sum."""
    if domain_end < 0:
        raise ValueError("domain_end must be >= 0")
    if not intervals:
        return 0.0
    events: list[tuple[int, float]] = []
    for iv in intervals:
        events.append((iv.start, float(iv.weight)))
        if iv.end + 1 <= domain_end:
            events.append((iv.end + 1, -float(iv.weight)))
    if min(e[0] for e in events) > 0:
        events.append((0, 0.0))  # expose the leading zero-coverage gap

    # Ties must apply +w before -w?  Both belong to the same position:
    # coverage changes by their *sum* at that position, so compressing
    # equal positions first makes the order immaterial (Lemma 14's S'').
    sorted_events = ampc_sort(
        config, events, key=lambda e: e[0], ledger=ledger
    )
    compressed: list[float] = []
    last_pos: int | None = None
    for pos, delta in sorted_events:
        if pos == last_pos:
            compressed[-1] += delta
        else:
            compressed.append(delta)
            last_pos = pos
    return float(ampc_min_prefix_sum(config, compressed, ledger=ledger))
