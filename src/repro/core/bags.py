"""Naive contraction replay — the differential oracle for Algorithm 3.

Replays the contraction process edge by edge (in key order) with a
union–find, maintaining every component's *boundary weight* (the total
weight of edges with exactly one endpoint inside).  The minimum
singleton cut of the process (Observation 7) is then

    min(  min_v deg_w(v),                      # bags at time 0
          min over merges of merged boundary ) # every later bag

restricted to bags that are proper subsets of ``V``.

Runtime is ``O(m log m)``-ish via merge-the-smaller adjacency maps —
fast enough to differential-test the interval algorithm on thousands
of random instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..graph import Graph
from .keys import ContractionKeys

Vertex = Hashable


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a full contraction replay."""

    min_singleton_weight: float
    witness_vertex: Vertex
    witness_time: int
    #: boundary weight of every bag created, as (time, weight) pairs
    trace: tuple[tuple[int, float], ...]


def replay_min_singleton(graph: Graph, keys: ContractionKeys) -> ReplayResult:
    """Exact minimum singleton-cut weight over the whole process."""
    if graph.num_vertices < 2:
        raise ValueError("need at least two vertices")

    # Component state: representative -> adjacency {other_rep: weight}
    # and boundary weight.  Start: every vertex alone.
    rep: dict[Vertex, Vertex] = {v: v for v in graph.vertices()}

    def find(v: Vertex) -> Vertex:
        root = v
        while rep[root] != root:
            root = rep[root]
        while rep[v] != root:
            rep[v], v = root, rep[v]
        return root

    adj: dict[Vertex, dict[Vertex, float]] = {v: {} for v in graph.vertices()}
    # Singleton boundaries are exactly the weighted degrees — read them
    # off the graph's cached degree vector (bit-identical accumulation).
    deg = graph.degree_vector()
    boundary: dict[Vertex, float] = {
        v: float(deg[i]) for i, v in enumerate(graph.vertices())
    }
    members: dict[Vertex, int] = {v: 1 for v in graph.vertices()}
    for u, v, w in graph.edges():
        adj[u][v] = adj[u].get(v, 0.0) + w
        adj[v][u] = adj[v].get(u, 0.0) + w

    n = graph.num_vertices
    best = min(boundary.values())
    witness = min(boundary, key=lambda v: (boundary[v],))
    witness_t = 0
    trace: list[tuple[int, float]] = [(0, best)]

    for k, u, v in keys.edges_by_key():
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        # merge smaller adjacency into larger
        if len(adj[ru]) < len(adj[rv]):
            ru, rv = rv, ru
        cross = adj[ru].pop(rv, 0.0)
        adj[rv].pop(ru, None)
        new_boundary = boundary[ru] + boundary[rv] - 2.0 * cross
        for nbr, w in adj[rv].items():
            # rewire nbr's view of rv to ru
            nbr_adj = adj[nbr]
            nbr_adj[ru] = nbr_adj.get(ru, 0.0) + w
            del nbr_adj[rv]
            adj[ru][nbr] = adj[ru].get(nbr, 0.0) + w
        adj[rv].clear()
        rep[rv] = ru
        boundary[ru] = new_boundary
        members[ru] += members[rv]
        trace.append((k, new_boundary))
        if members[ru] < n and new_boundary < best:
            best = new_boundary
            witness = ru
            witness_t = k

    return ReplayResult(
        min_singleton_weight=best,
        witness_vertex=witness,
        witness_time=witness_t,
        trace=tuple(trace),
    )


def boundary_profile(
    graph: Graph, keys: ContractionKeys, v: Vertex
) -> list[tuple[int, float]]:
    """``(t, Delta bag(v, t))`` at every event time, for property tests.

    Brute force via :func:`repro.core.contraction.bag_at`; quadratic,
    use only on small graphs.
    """
    from .contraction import bag_at, bag_boundary_weight, mst_of_keys

    times = [0] + [k for k, _, _ in mst_of_keys(graph, keys)]
    out = []
    for t in times:
        bag = bag_at(graph, keys, v, t)
        out.append((t, bag_boundary_weight(graph, bag)))
    return out
