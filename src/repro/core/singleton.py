"""Algorithm 3 — SmallestSingletonCut (Section 4, Theorem 3).

Computes the exact minimum weight over all singleton cuts arising
during the keyed contraction process, in ``O(1/eps)`` AMPC rounds:

1. minimum spanning tree of the keyed graph (unique keys => unique
   MST);
2. generalized low-depth decomposition of the MST (Lemma 3);
3. ``O(log^2 n)`` level tuples ``(T, l, E, L_i)`` processed **in
   parallel** (Lemma 9): per level, leaders and ``ldr_time``
   (Lemma 11), edge time intervals (Lemma 13), and the interval
   minimum via the sweep (Lemma 14, Theorem 5);
4. the global minimum over levels (Lemma 15 / Observation 7).

Differential guarantee (tested): the returned weight equals the naive
replay oracle's (:func:`repro.core.bags.replay_min_singleton`) on every
input.  The returned *witness* ``(leader, time)`` reconstructs the
actual cut side, so callers receive a usable :class:`~repro.graph.Cut`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from ..ampc import AMPCConfig, RoundLedger
from ..graph import Cut, Graph
from ..trees.low_depth import LowDepthDecomposition, low_depth_decomposition
from ..trees.rooted import root_tree
from .bags import replay_min_singleton
from .contraction import bag_at, mst_of_keys
from .intervals import edge_intervals
from .keys import ContractionKeys, draw_contraction_keys
from .ldr import LevelStructure, build_level_structure
from .sweep import min_interval_overlap

Vertex = Hashable


@dataclass
class SingletonCutResult:
    """Outcome of Algorithm 3."""

    weight: float
    leader: Vertex
    time: int
    cut: Cut
    decomposition: LowDepthDecomposition
    ledger: RoundLedger


def smallest_singleton_cut(
    graph: Graph,
    keys: ContractionKeys | None = None,
    *,
    seed: int = 0,
    config: AMPCConfig | None = None,
    ledger: RoundLedger | None = None,
    execute_on_simulator: bool = False,
) -> SingletonCutResult:
    """Run Algorithm 3 on ``graph`` (must be connected, n >= 2).

    ``keys`` defaults to freshly drawn weight-biased unique keys.
    Round/memory charges land in ``ledger`` (one is created if absent),
    each citing its lemma.

    With ``execute_on_simulator=True`` the MST (distributed sample sort
    + consolidation) and the *representative* level's interval sweep
    (the level with the most intervals — levels run in parallel, so the
    parallel group costs its max sibling) genuinely execute on the AMPC
    runtime, making those rounds *measured* instead of charged.
    """
    n = graph.num_vertices
    if n < 2:
        raise ValueError("smallest singleton cut needs n >= 2")
    if config is None:
        config = AMPCConfig(n_input=n, m_input=graph.num_edges)
    if ledger is None:
        ledger = RoundLedger()
    if keys is None:
        keys = draw_contraction_keys(graph, seed=seed)

    # ---------------------------------------------------------- step 1
    if execute_on_simulator:
        from ..ampc.primitives.mst import ampc_minimum_spanning_forest

        keyed_edges = [(u, v, keys.of(u, v)) for u, v, _ in graph.edges()]
        forest = ampc_minimum_spanning_forest(
            config, graph.vertices(), keyed_edges, ledger=ledger
        )
        mst = sorted((k, u, v) for (u, v, k) in forest)
    else:
        mst = mst_of_keys(graph, keys)
        ledger.charge(
            config.rounds_per_primitive,
            "Algorithm 3 line 1: MST via sort + adaptive connectivity "
            "(Lemma 4 toolbox)",
            local_peak=config.local_memory_words,
            total_peak=n + graph.num_edges,
        )
    if len(mst) != n - 1:
        raise ValueError("graph must be connected")
    max_tree_key = max(k for k, _, _ in mst)

    # ---------------------------------------------------------- step 2
    tree = root_tree(graph.vertices(), [(u, v) for _, u, v in mst])
    decomp = low_depth_decomposition(
        graph.vertices(), [(u, v) for _, u, v in mst], precomputed_tree=tree
    )
    log2n = math.ceil(math.log2(max(2, n)))
    ledger.charge(
        config.rounds_per_primitive,
        "Algorithm 3 line 2: generalized low-depth decomposition (Lemma 3)",
        local_peak=config.local_memory_words,
        total_peak=n * log2n * log2n,
    )

    # ---------------------------------------------------- steps 3 and 4
    # The O(log^2 n) level tuples are processed in parallel in the
    # model; the round cost is the *maximum* per-level cost, which is
    # O(1/eps) (Lemmas 11 + 13 + 14), at a log^2 n blowup in total
    # space (Lemma 9).
    best_weight = math.inf
    best_leader: Vertex | None = None
    best_time = 0
    representative: tuple[list, int] | None = None  # biggest (intervals, domain)
    for level_index in range(1, decomp.height + 1):
        level = build_level_structure(
            decomp, keys, level_index, max_tree_key=max_tree_key
        )
        if not level.ldr_time:
            continue
        grouped = edge_intervals(graph, level)
        for leader, intervals in grouped.items():
            weight, t = min_interval_overlap(intervals, level.ldr_time[leader])
            if weight < best_weight:
                best_weight, best_leader, best_time = weight, leader, t
            if representative is None or len(intervals) > len(representative[0]):
                representative = (intervals, level.ldr_time[leader])
    if execute_on_simulator and representative is not None:
        # Levels (and leaders within a level) run in parallel; the
        # parallel group's measured cost is its largest sibling's, so
        # execute exactly that sibling's sweep on the runtime.
        from .sweep import min_interval_overlap_ampc

        measured = min_interval_overlap_ampc(
            config, representative[0], representative[1], ledger=ledger
        )
        host, _ = min_interval_overlap(representative[0], representative[1])
        if abs(measured - host) > 1e-9:
            raise AssertionError(
                f"simulator sweep {measured} != host sweep {host}"
            )
    else:
        ledger.charge(
            config.rounds_per_primitive,
            "Algorithm 3 lines 3-7: parallel level tuples — ldr_time "
            "(Lemma 11), time intervals (Lemma 13), interval sweep "
            "(Lemma 14/Theorem 5), min reduce (Lemma 15)",
            local_peak=config.local_memory_words,
            total_peak=(n + graph.num_edges) * log2n * log2n,
        )

    assert best_leader is not None
    side = bag_at(graph, keys, best_leader, best_time)
    cut = Cut.of(graph, side)
    ledger.charge(
        1,
        "witness extraction: materialise bag(leader, t) as a cut side",
        local_peak=config.local_memory_words,
        total_peak=n,
    )
    # The sweep minimum is the bag's boundary weight by construction;
    # the Cut re-evaluation cross-checks it.
    if abs(cut.weight - best_weight) > 1e-6 * max(1.0, abs(best_weight)):
        raise AssertionError(
            f"sweep minimum {best_weight} != witness cut weight {cut.weight}"
        )
    return SingletonCutResult(
        weight=float(best_weight),
        leader=best_leader,
        time=best_time,
        cut=cut,
        decomposition=decomp,
        ledger=ledger,
    )


def smallest_singleton_cut_value(
    graph: Graph, keys: ContractionKeys | None = None, *, seed: int = 0
) -> float:
    """Weight-only convenience wrapper."""
    return smallest_singleton_cut(graph, keys, seed=seed).weight


def verify_against_replay(
    graph: Graph, keys: ContractionKeys | None = None, *, seed: int = 0
) -> tuple[float, float]:
    """Run both Algorithm 3 and the naive oracle; return both weights.

    Used by tests and the E3 benchmark; the two must agree exactly.
    """
    if keys is None:
        keys = draw_contraction_keys(graph, seed=seed)
    fast = smallest_singleton_cut(graph, keys).weight
    slow = replay_min_singleton(graph, keys).min_singleton_weight
    return fast, slow
