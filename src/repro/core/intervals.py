"""Edge time intervals (Section 4.3, Lemmas 12–13).

Fix a level ``i`` and its :class:`~repro.core.ldr.LevelStructure`.  For
every graph edge ``e = (x, y, w)`` (tree **and** non-tree — the paper
stresses "all edges of the graph G") and every leader ``r`` whose bag
``e`` can cross while ``r`` leads, the times ``t`` with ``e`` crossing
``bag(r, t)`` form one integer interval (Lemma 12, by monotonicity of
bags).  The case analysis of Lemma 13, with the path-max erratum fixed
(DESIGN.md):

* both endpoints leaderless at this level — no contribution;
* exactly one endpoint ``x`` in a leadered component — ``x`` joins at
  ``join_time(x)``; the other endpoint cannot arrive while ``r``
  leads, so the interval is ``[join_time(x), ldr_time(r)]``;
* endpoints under *different* leaders — the previous case applies on
  both sides independently;
* endpoints under the *same* leader — the edge crosses between the
  first and second joins: ``[min(t_x, t_y), max(t_x, t_y) - 1]``,
  clipped to ``[0, ldr_time(r)]`` (at ``max(t_x, t_y)`` both endpoints
  are inside, hence the ``- 1``; another place our semantics pins down
  the paper's ambiguous closed-interval notation).

Every produced interval carries the edge's weight — for weighted Min
Cut, ``Delta bag`` is the *weight* of the boundary, so the sweep sums
weights rather than counting intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from ..graph import Graph
from .keys import ContractionKeys
from .ldr import LevelStructure

Vertex = Hashable


@dataclass(frozen=True)
class TimeInterval:
    """A closed integer interval ``[start, end]`` weighted by the edge."""

    start: int
    end: int
    weight: float

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError("empty interval must not be constructed")
        if self.start < 0:
            raise ValueError("interval starts at a negative time")


def edge_intervals(
    graph: Graph,
    level: LevelStructure,
) -> dict[Vertex, list[TimeInterval]]:
    """All non-empty time intervals of this level, grouped by leader."""
    out: dict[Vertex, list[TimeInterval]] = {r: [] for r in level.ldr_time}
    for x, y, w in graph.edges():
        for r, a, b in _intervals_for_edge(level, x, y):
            out[r].append(TimeInterval(start=a, end=b, weight=w))
    return out


def _intervals_for_edge(
    level: LevelStructure, x: Vertex, y: Vertex
) -> Iterator[tuple[Vertex, int, int]]:
    rx = level.leader_of.get(x)
    ry = level.leader_of.get(y)
    if rx is None and ry is None:
        return  # Case 1: the edge never touches a leader's bag here.
    if rx is not None and rx == ry:
        # Case 3b: both under the same leader.
        tx, ty = level.join_time[x], level.join_time[y]
        a, b = min(tx, ty), max(tx, ty) - 1
        b = min(b, level.ldr_time[rx])
        if a <= b:
            yield (rx, a, b)
        return
    # Cases 2 and 3a: each leadered side contributes independently.
    for r, v in ((rx, x), (ry, y)):
        if r is None:
            continue
        a = level.join_time[v]
        b = level.ldr_time[r]
        if a <= b:
            yield (r, a, b)
