"""Algorithm 1 — AMPC-MinCut (Theorem 1).

Level-wise execution, following Section 2's space recurrence rather
than naive tree recursion: at level ``k`` the algorithm maintains
``s_k ~ t_k^(1 - eps/3)`` *instances* of size ``n / t_k`` (the paper's
aggregate branching — note ``s_{k+1} / s_k = x_k^(1 - eps/3)`` is
usually below 2, so materialising ``copies^depth`` recursion leaves
would be both wasteful and unfaithful).  Per level, in parallel for
every instance:

* draw fresh contraction keys (Algorithm 1 line 4),
* track the smallest singleton cut over the whole contraction process
  (line 5 — Algorithm 3, the paper's novel ``O(1/eps)``-round part),
* contract down to the next level's size (line 6).

Once instances fit a single machine (``<= n^eps`` vertices), each is
solved exactly there (lines 1–3, Stoer–Wagner) and the best cut over
everything ever seen is returned (line 8).

Round accounting: instances within a level run in parallel (max over
siblings, ``absorb_parallel``); levels are sequential; the schedule's
``O(log log n)`` depth gives Theorem 1's round bound.

Guarantee: every returned cut is a valid cut of the input; Lemma 2
makes it a ``(2+eps)``-approximation w.h.p. once boosted over
independent trials (:func:`ampc_min_cut_boosted`).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Hashable

from ..ampc import AMPCConfig, RoundLedger
from ..graph import Cut, Graph
from .contraction import contract_to_size
from .keys import draw_contraction_keys
from .schedule import RecursionSchedule, schedule_for
from .singleton import smallest_singleton_cut

Vertex = Hashable

#: seed stride between boosting trials — trial ``t`` runs at
#: ``seed + t * BOOST_SEED_STRIDE``.  The serving layer's TrialExecutor
#: replicates this schedule, so it lives here as the single source.
BOOST_SEED_STRIDE = 7919


def default_boost_trials(n: int) -> int:
    """The booster's default trial count: ``ceil(log2(n)^2 / 4)``.

    The paper runs ``Theta(log^2 n)`` instances for the w.h.p. claim;
    the constant is a simulation knob (E2 measures the success curve).
    """
    return max(1, math.ceil(math.log2(max(4, n)) ** 2 / 4))


@dataclass
class MinCutResult:
    """Outcome of AMPC-MinCut."""

    cut: Cut
    ledger: RoundLedger
    schedule: RecursionSchedule
    #: number of base-case exact solves (final-level instances)
    base_solves: int
    #: total singleton-cut trackers run (instances across all levels)
    singleton_runs: int
    #: :meth:`repro.preprocess.CutKernel.stats` of the kernelization
    #: stage, when the run was preprocessed (None otherwise)
    kernel_stats: dict | None = None

    @property
    def weight(self) -> float:
        return self.cut.weight


@dataclass
class _Instance:
    """One live instance: a contracted graph + lift to original ids."""

    graph: Graph
    blocks: dict  # quotient vertex -> list of original vertices


def ampc_min_cut(
    graph: Graph,
    *,
    eps: float = 0.5,
    seed: int = 0,
    base_size: int | None = None,
    max_copies: int = 4,
    config: AMPCConfig | None = None,
    backend: str | None = None,
) -> MinCutResult:
    """Run Algorithm 1 once on a connected graph with ``n >= 2``.

    ``max_copies`` caps the instance count per level (a wall-clock
    knob; the paper's ``s_k`` can reach ``t_k^(1-eps/3)``).  ``eps``
    plays its double role from the paper: memory exponent and
    approximation slack.  ``backend`` picks the round-execution backend
    (:mod:`repro.ampc.backends`) for every runtime the run spawns; it
    never changes the returned cut, ledger, or trace.
    """
    n = graph.num_vertices
    if n < 2:
        raise ValueError("min cut needs n >= 2")
    if len(graph.components()) != 1:
        raise ValueError("graph must be connected (min cut would be 0)")
    schedule = schedule_for(n, eps=eps, base_size=base_size, max_copies=max_copies)
    if config is None:
        config = AMPCConfig(n_input=n, eps=eps, m_input=graph.num_edges, backend=backend)
    elif backend is not None and config.backend != backend:
        config = dataclasses.replace(config, backend=backend)
    ledger = RoundLedger()

    identity_blocks = {v: [v] for v in graph.vertices()}
    instances: list[_Instance] = [_Instance(graph=graph, blocks=identity_blocks)]
    best: Cut | None = None
    singleton_runs = 0
    rng_salt = seed

    for level in schedule.levels:
        if all(inst.graph.num_vertices <= schedule.base_size for inst in instances):
            break
        # Aggregate instance count for the next level: s ~ t^(1-eps/3).
        target_count = max(
            2,
            min(max_copies, round(level.t ** (1.0 - eps / 3.0))),
        )
        target_size = max(schedule.base_size, math.ceil(n / level.t))

        sibling_ledgers: list[RoundLedger] = []
        next_instances: list[_Instance] = []
        for j in range(target_count):
            parent = instances[j % len(instances)]
            pg = parent.graph
            if pg.num_vertices <= schedule.base_size:
                next_instances.append(parent)
                continue
            rng_salt = (rng_salt * 1_000_003 + 10_007 * level.index + j) & 0x7FFFFFFF
            copy_ledger = RoundLedger()
            keys = draw_contraction_keys(pg, seed=rng_salt)
            sub_config = config.scaled(pg.num_vertices, pg.num_edges)

            # Line 5: track this copy's smallest singleton cut.
            singleton_runs += 1
            singleton = smallest_singleton_cut(
                pg, keys, config=sub_config, ledger=copy_ledger
            )
            lifted = _lift(graph, parent.blocks, singleton.cut.side)
            if best is None or lifted.weight < best.weight:
                best = lifted

            # Line 6: the copy after its first contractions.
            this_target = min(target_size, max(2, pg.num_vertices - 1))
            contracted, blocks = contract_to_size(pg, keys, this_target)
            copy_ledger.charge(
                1,
                "Algorithm 1 line 6: materialise the contracted copy "
                f"({pg.num_vertices} -> {contracted.num_vertices} vertices)",
                local_peak=sub_config.local_memory_words,
                total_peak=contracted.num_vertices + contracted.num_edges,
            )
            composed = _compose_blocks(parent.blocks, blocks)
            next_instances.append(_Instance(graph=contracted, blocks=composed))
            sibling_ledgers.append(copy_ledger)

        if sibling_ledgers:
            ledger.absorb_parallel(
                sibling_ledgers,
                f"Algorithm 1 level {level.index}: {len(sibling_ledgers)} "
                f"parallel instances (contract x{level.x:.2f})",
            )
        instances = next_instances

    # Lines 1-3: exact solve of every surviving instance on one machine.
    base_solves = 0
    for inst in instances:
        if inst.graph.num_vertices < 2:
            continue
        base_solves += 1
        cut = _exact_base_case(inst.graph)
        lifted = _lift(graph, inst.blocks, cut.side)
        if best is None or lifted.weight < best.weight:
            best = lifted
    ledger.charge(
        1,
        "Algorithm 1 lines 1-3: exact Min Cut of base instances, one "
        f"machine each (<= base size {schedule.base_size})",
        local_peak=min(config.local_memory_words, schedule.base_size**2),
        total_peak=sum(i.graph.num_vertices + i.graph.num_edges for i in instances),
    )
    ledger.charge(
        1,
        "Algorithm 1 line 8: min-reduce over all candidate cuts",
        local_peak=len(instances) + 2,
        total_peak=len(instances),
    )
    assert best is not None
    return MinCutResult(
        cut=best,
        ledger=ledger,
        schedule=schedule,
        base_solves=base_solves,
        singleton_runs=singleton_runs,
    )


def _lift(original: Graph, blocks: dict, side) -> Cut:
    """Lift a quotient cut side back to the original graph."""
    lifted: set = set()
    for rep in side:
        lifted.update(blocks[rep])
    return Cut.of(original, lifted)


def _compose_blocks(parent_blocks: dict, new_blocks: dict) -> dict:
    """Compose two levels of quotient maps (new reps -> original ids)."""
    return {
        rep: [orig for member in members for orig in parent_blocks[member]]
        for rep, members in new_blocks.items()
    }


def _exact_base_case(graph: Graph) -> Cut:
    from ..baselines.stoer_wagner import stoer_wagner_min_cut

    return stoer_wagner_min_cut(graph)


def ampc_min_cut_boosted(
    graph: Graph,
    *,
    eps: float = 0.5,
    trials: int | None = None,
    seed: int = 0,
    max_copies: int = 4,
    backend: str | None = None,
    preprocess: str | None = None,
) -> MinCutResult:
    """Boosted Algorithm 1: best over independent trials.

    The paper runs ``Theta(log^2 n)`` instances for the w.h.p. claim;
    ``trials`` defaults to ``ceil(log2(n)^2 / 4)`` (the constant is a
    simulation knob — E2 measures the success curve explicitly).
    Trials are independent, hence parallel in the model: the boosted
    round count is the max over trials, not the sum.

    ``preprocess`` (``"off"``/``"safe"``/``"aggressive"``, default off)
    runs the exact kernelization pipeline of :mod:`repro.preprocess`
    first: trials execute on the reduced graph (with the default trial
    count recomputed for the *kernel* size) and the winning cut is
    lifted back — weight re-evaluated against the original, candidate
    cuts recorded by the reductions folded in.  A disconnected input,
    which the unpreprocessed path rejects, kernelizes to the exact
    weight-0 cut without running any trial.
    """
    if preprocess is not None and preprocess != "off":
        return _boosted_on_kernel(
            graph,
            level=preprocess,
            eps=eps,
            trials=trials,
            seed=seed,
            max_copies=max_copies,
            backend=backend,
        )
    n = graph.num_vertices
    if trials is None:
        trials = default_boost_trials(n)
    best: MinCutResult | None = None
    ledgers: list[RoundLedger] = []
    for t in range(trials):
        res = ampc_min_cut(
            graph,
            eps=eps,
            seed=seed + BOOST_SEED_STRIDE * t,
            max_copies=max_copies,
            backend=backend,
        )
        ledgers.append(res.ledger)
        if best is None or res.weight < best.weight:
            best = res
    assert best is not None
    combined = RoundLedger()
    combined.absorb_parallel(ledgers, f"boosting over {trials} parallel trials")
    best.ledger = combined
    return best


def _boosted_on_kernel(
    graph: Graph,
    *,
    level: str,
    eps: float,
    trials: int | None,
    seed: int,
    max_copies: int,
    backend: str | None,
) -> MinCutResult:
    """Kernelize, boost on the kernel, lift the winner."""
    from ..preprocess import kernelize

    kernel = kernelize(graph, level=level)
    if kernel.is_solved:
        cut = kernel.trivial_cut()  # raises for n < 2, matching the solver
        ledger = RoundLedger()
        ledger.charge(
            1,
            "preprocess: kernelization solved the instance outright "
            "(no AMPC trial ran)",
            local_peak=graph.num_vertices,
            total_peak=graph.num_vertices + graph.num_edges,
        )
        return MinCutResult(
            cut=cut,
            ledger=ledger,
            schedule=schedule_for(max(2, graph.num_vertices), eps=eps),
            base_solves=0,
            singleton_runs=0,
            kernel_stats=kernel.stats(),
        )
    result = ampc_min_cut_boosted(
        kernel.graph,
        eps=eps,
        trials=trials,
        seed=seed,
        max_copies=max_copies,
        backend=backend,
    )
    result.cut = kernel.lift(result.cut.side)
    result.kernel_stats = kernel.stats()
    return result
