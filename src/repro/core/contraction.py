"""The contraction process (Section 4.1) and quotient extraction.

Contracting edges in increasing key order is equivalent (for topology)
to contracting only the MST edges of the keyed graph — the comparison
to Kruskal the paper makes.  This module provides:

* :func:`mst_of_keys` — the unique MST under unique keys;
* :func:`contract_to_size` — the graph "after the first ``k``
  contractions" (Algorithm 1, line 6): contract cheapest MST edges
  until the target vertex count remains, merging parallel edges by
  weight;
* :func:`bag_at` — ``bag(v, t)`` by definition (Definition 6), the
  reference semantics used in property tests.
"""

from __future__ import annotations

from typing import Hashable

from ..graph import Graph
from .keys import ContractionKeys

Vertex = Hashable


class _IndexDSU:
    """Union–find over dense vertex indices (flat-array storage).

    Mirrors :class:`repro.graph.DSU` decision-for-decision — union by
    size with the first argument's root surviving ties, path halving —
    so the elected representatives (which become quotient vertex
    labels downstream) are identical to the hashable implementation's,
    just without per-operation dict hashing.
    """

    __slots__ = ("parent", "size", "count")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n
        self.count = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        size = self.size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        size[ra] += size[rb]
        self.count -= 1
        return True


def mst_of_keys(
    graph: Graph, keys: ContractionKeys
) -> list[tuple[int, Vertex, Vertex]]:
    """Kruskal on contraction keys: the unique MST, as (key, u, v) ascending."""
    index = graph._index
    dsu = _IndexDSU(graph.num_vertices)
    mst: list[tuple[int, Vertex, Vertex]] = []
    for k, u, v in keys.edges_by_key():
        if dsu.union(index[u], index[v]):
            mst.append((k, u, v))
    return mst


def contract_to_size(
    graph: Graph,
    keys: ContractionKeys,
    target_vertices: int,
) -> tuple[Graph, dict[Vertex, list[Vertex]]]:
    """Contract cheapest-key MST edges until ``target_vertices`` remain.

    Returns the quotient graph (parallel edges merged by weight sum,
    self-loops dropped) and the representative->members blocks mapping
    for lifting cuts back.  Contracts nothing if the graph is already
    at or below the target.

    One pass: a flat-array DSU labels every vertex with its block's
    representative, then a single vectorized :meth:`Graph.quotient`
    materialises the contracted graph — no incremental edge merging.
    """
    if target_vertices < 1:
        raise ValueError("target_vertices must be >= 1")
    n = graph.num_vertices
    vertices = graph.vertices()
    index = graph._index
    dsu = _IndexDSU(n)
    if n > target_vertices:
        for _, u, v in keys.edges_by_key():
            if dsu.union(index[u], index[v]) and dsu.count <= target_vertices:
                break
    representative = {v: vertices[dsu.find(i)] for i, v in enumerate(vertices)}
    return graph.quotient(representative)


def bag_at(
    graph: Graph, keys: ContractionKeys, v: Vertex, t: int
) -> frozenset:
    """``bag(v, t)``: vertices reachable from ``v`` by MST edges of key <= t.

    Definition 6 says *tree* edges; reachability over all edges of key
    <= t gives the same set (non-tree edges with small keys connect
    vertices already joined by smaller tree keys — the Kruskal cycle
    property), which tests assert.  This walks the MST.
    """
    adj: dict[Vertex, list[Vertex]] = {u: [] for u in graph.vertices()}
    for k, a, b in mst_of_keys(graph, keys):
        if k <= t:
            adj[a].append(b)
            adj[b].append(a)
    out = {v}
    stack = [v]
    while stack:
        x = stack.pop()
        for y in adj[x]:
            if y not in out:
                out.add(y)
                stack.append(y)
    return frozenset(out)


def bag_boundary_weight(graph: Graph, bag: frozenset) -> float:
    """``Delta bag``: total weight of edges leaving the bag."""
    return graph.cut_weight(bag) if 0 < len(bag) < graph.num_vertices else 0.0
