"""The Ghaffari–Nowicki branching schedule (Section 2's recurrence).

Algorithm 1 recursion bookkeeping.  At recursion level ``k`` (counting
from the input), instances have size ``n / t_k``; the level spawns
``x_k^(1 - eps/3)`` copies of each instance and contracts each copy by
a factor ``x_k``, where the space budget forces
``x_k <= t_k^((eps/3) / (1 - eps/3))``.  Unrolling:

    t_0 = t0,   x_k = t_k ** delta,   t_{k+1} = t_k * x_k
    with delta = (eps/3) / (1 - eps/3).

Contraction factors are *fractional* — the recurrence gives
``t_k = t_0 ** (1 + delta) ** k``, i.e. ``log t`` grows geometrically,
so a constant-size instance is reached after
``O(log log n / log(1 + delta)) = O(log log n / eps)`` levels — the
paper's depth bound with its 1/eps constant explicit.  (Flooring ``x``
to an integer would collapse the early levels to plain halving and
yield ``Theta(log n)`` depth — a subtle infidelity the depth tests
catch.)  :func:`schedule_for` materialises the whole schedule so tests
and the E1 benchmark can assert the depth envelope explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ScheduleLevel:
    """One recursion level of Algorithm 1."""

    index: int
    instance_size: int  # n / t_k (rounded)
    t: float  # cumulative contraction factor t_k
    x: float  # this level's (fractional) contraction factor x_k
    copies: int  # number of copies spawned per instance, ~x_k^(1-eps/3)


@dataclass(frozen=True)
class RecursionSchedule:
    """The full unrolled schedule for input size ``n``."""

    n: int
    eps: float
    base_size: int
    levels: tuple[ScheduleLevel, ...]

    @property
    def depth(self) -> int:
        return len(self.levels)

    def depth_envelope(self) -> int:
        """Explicit ``O(log log n + 1/eps)`` bound asserted by tests."""
        loglog = math.log2(max(2.0, math.log2(max(4, self.n))))
        return math.ceil(3 * loglog + 3 / self.delta() + 4)

    def delta(self) -> float:
        return (self.eps / 3.0) / (1.0 - self.eps / 3.0)


def schedule_for(
    n: int,
    *,
    eps: float = 0.5,
    base_size: int | None = None,
    t0: float = 2.0,
    max_copies: int = 8,
) -> RecursionSchedule:
    """Unroll the branching schedule for an ``n``-vertex input.

    ``base_size`` defaults to ``ceil(n ** eps)`` — Algorithm 1's
    "solve on a single machine once |G| <= n^eps" base case.
    ``max_copies`` caps the per-level branching for simulation
    tractability (the cap affects success probability, never
    correctness — every candidate cut returned is a real cut).
    """
    if n < 2:
        raise ValueError("schedule needs n >= 2")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    if base_size is None:
        base_size = max(4, math.ceil(n**eps))
    delta = (eps / 3.0) / (1.0 - eps / 3.0)

    levels: list[ScheduleLevel] = []
    t = max(2.0, t0)
    size = n
    index = 0
    while size > base_size:
        # Fractional contraction factor per the space recurrence, with a
        # small floor guaranteeing progress on the first levels.
        x = max(t**delta, 1.0 + delta / 2.0)
        copies = max(2, min(max_copies, round(x ** (1.0 - eps / 3.0))))
        t = t * x
        new_size = max(base_size, math.ceil(n / t))
        levels.append(
            ScheduleLevel(
                index=index, instance_size=size, t=t, x=x, copies=copies
            )
        )
        if new_size >= size:  # guard: force progress on tiny inputs
            new_size = max(base_size, size - 1)
        size = new_size
        index += 1
        if index > 40 * (math.ceil(math.log2(n)) + 2):  # safety valve
            raise RuntimeError("schedule failed to converge")
    return RecursionSchedule(
        n=n, eps=eps, base_size=base_size, levels=tuple(levels)
    )
