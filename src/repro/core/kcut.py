"""Algorithm 4 — APX-SPLIT for Min k-Cut (Section 5, Theorem 2).

Greedy splitting with approximate cuts: while the working graph has
fewer than ``k`` components, compute a ``(2+eps)``-approximate min cut
in *every* current component (in parallel — one ``O(log log n)`` round
block per iteration), remove the lightest one's edges, repeat.  At most
``k - 1`` iterations, giving ``O(k log log n)`` rounds; the Gomory–Hu
argument of Theorem 2 makes the union a ``(4+eps)``-approximate
min k-cut.

The returned :class:`KCutResult` carries the chosen cut edge sets
(``D`` in the pseudocode), the final partition, and the ledger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from ..ampc import AMPCConfig, RoundLedger
from ..graph import Graph, KCut
from .mincut import ampc_min_cut

Vertex = Hashable


@dataclass
class KCutResult:
    """Outcome of APX-SPLIT."""

    kcut: KCut
    #: the sets of removed edges, one per greedy iteration (kernel-level
    #: pairs when the run was preprocessed)
    cut_edge_sets: tuple[tuple[tuple[Vertex, Vertex], ...], ...]
    ledger: RoundLedger
    iterations: int
    #: :meth:`repro.preprocess.KCutKernel.stats` of the kernelization
    #: stage, when the run was preprocessed (None otherwise)
    kernel_stats: dict | None = None

    @property
    def weight(self) -> float:
        return self.kcut.weight


def apx_split_kcut(
    graph: Graph,
    k: int,
    *,
    eps: float = 0.5,
    seed: int = 0,
    max_copies: int = 2,
    exact_below: int = 16,
    backend: str | None = None,
    preprocess: str | None = None,
) -> KCutResult:
    """Run APX-SPLIT on a connected graph.

    ``exact_below``: components smaller than this are cut exactly
    (Stoer–Wagner) — matching Algorithm 1's own base case and keeping
    the simulation fast.  ``k`` may not exceed ``n``.  ``backend``
    selects the AMPC round backend for the per-component min-cut runs
    (:mod:`repro.ampc.backends`); results are backend-independent.

    ``preprocess`` (default off) applies the k-cut-safe kernelization
    of :func:`repro.preprocess.kernelize_for_kcut`: edges no optimal
    k-cut can cross are contracted, the greedy runs on the kernel, and
    the partition is lifted back to the original vertex set (weight
    re-evaluated there; the bootstrap candidate k-cut folded in).  The
    optimum weight is preserved exactly; the (4+eps) greedy itself may
    legitimately return a different — never invalid — partition than
    the unpreprocessed run.
    """
    n = graph.num_vertices
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if preprocess is not None and preprocess != "off":
        from ..preprocess import kernelize_for_kcut

        kernel = kernelize_for_kcut(graph, k, level=preprocess)
        inner = apx_split_kcut(
            kernel.graph if kernel.reduced else graph,
            k,
            eps=eps,
            seed=seed,
            max_copies=max_copies,
            exact_below=exact_below,
            backend=backend,
        )
        inner.kernel_stats = kernel.stats()
        if kernel.reduced:
            inner.kcut = kernel.lift(inner.kcut.parts)
        return inner
    ledger = RoundLedger()
    working = graph.copy()
    removed: list[tuple[tuple[Vertex, Vertex], ...]] = []
    iterations = 0

    while True:
        components = working.components()
        if len(components) >= k:
            break
        iterations += 1
        # Parallel min cuts, one per (non-singleton) component; the
        # iteration's round cost is the max over components.
        sibling_ledgers: list[RoundLedger] = []
        best_edges: tuple[tuple[Vertex, Vertex], ...] | None = None
        best_weight = math.inf
        for comp in components:
            if len(comp) < 2:
                continue
            sub = working.induced_subgraph(comp)
            if len(comp) <= exact_below:
                from ..baselines.stoer_wagner import stoer_wagner_min_cut

                cut = stoer_wagner_min_cut(sub)
                comp_ledger = RoundLedger()
                comp_ledger.charge(
                    1,
                    "APX-SPLIT: exact cut on a single-machine component",
                    local_peak=len(comp) ** 2,
                    total_peak=sub.num_edges,
                )
            else:
                res = ampc_min_cut(
                    sub,
                    eps=eps,
                    seed=seed + 31 * iterations,
                    max_copies=max_copies,
                    backend=backend,
                )
                cut = res.cut
                comp_ledger = res.ledger
            sibling_ledgers.append(comp_ledger)
            if cut.weight < best_weight:
                best_weight = cut.weight
                best_edges = tuple(
                    (u, v)
                    for u, v, _ in sub.edges()
                    if (u in cut.side) != (v in cut.side)
                )
        if best_edges is None:
            raise ValueError(
                f"cannot split into {k} parts: ran out of divisible components"
            )
        ledger.absorb_parallel(
            sibling_ledgers,
            f"APX-SPLIT iteration {iterations}: min cut per component",
        )
        ledger.charge(
            1,
            "APX-SPLIT lines 5-6: select lightest component cut, extend D",
            local_peak=4,
            total_peak=len(best_edges),
        )
        removed.append(best_edges)
        working = working.without_edges(best_edges)

    parts = [frozenset(c) for c in working.components()]
    # More than k components can appear when a cut splits a component
    # into 3+ pieces; merge the smallest back to exactly k for the
    # standard objective (never increases the weight).
    parts.sort(key=len)
    while len(parts) > k:
        a = parts.pop(0)
        b = parts.pop(0)
        parts.append(a | b)
        parts.sort(key=len)
    kcut = KCut.of(graph, parts)
    return KCutResult(
        kcut=kcut,
        cut_edge_sets=tuple(removed),
        ledger=ledger,
        iterations=iterations,
    )
