"""The paper's contribution: Algorithms 1 (AMPC-MinCut), 3
(SmallestSingletonCut) and 4 (APX-SPLIT), with their substrates."""

from .bags import ReplayResult, boundary_profile, replay_min_singleton
from .contraction import bag_at, bag_boundary_weight, contract_to_size, mst_of_keys
from .intervals import TimeInterval, edge_intervals
from .kcut import KCutResult, apx_split_kcut
from .keys import ContractionKeys, draw_contraction_keys, draw_uniform_keys
from .ldr import LevelStructure, all_level_structures, build_level_structure
from .mincut import (
    BOOST_SEED_STRIDE,
    MinCutResult,
    ampc_min_cut,
    ampc_min_cut_boosted,
    default_boost_trials,
)
from .schedule import RecursionSchedule, ScheduleLevel, schedule_for
from .singleton import (
    SingletonCutResult,
    smallest_singleton_cut,
    smallest_singleton_cut_value,
    verify_against_replay,
)
from .sweep import min_interval_overlap, min_interval_overlap_ampc

__all__ = [
    "BOOST_SEED_STRIDE",
    "ContractionKeys",
    "KCutResult",
    "LevelStructure",
    "MinCutResult",
    "RecursionSchedule",
    "ReplayResult",
    "ScheduleLevel",
    "SingletonCutResult",
    "TimeInterval",
    "all_level_structures",
    "ampc_min_cut",
    "ampc_min_cut_boosted",
    "apx_split_kcut",
    "bag_at",
    "bag_boundary_weight",
    "boundary_profile",
    "build_level_structure",
    "contract_to_size",
    "default_boost_trials",
    "draw_contraction_keys",
    "draw_uniform_keys",
    "edge_intervals",
    "min_interval_overlap",
    "min_interval_overlap_ampc",
    "mst_of_keys",
    "replay_min_singleton",
    "schedule_for",
    "smallest_singleton_cut",
    "smallest_singleton_cut_value",
    "verify_against_replay",
]
