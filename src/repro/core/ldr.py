"""Bag leaders and ``ldr_time`` (Section 4.2, Definition 7, Lemmas 8–11).

For a level ``i`` of the low-depth decomposition, the components of
``T_i`` (tree minus vertices of label ``< i``) each contain at most one
vertex of label ``i`` — its **leader**.  For every vertex ``x`` in a
leadered component we need:

* ``join_time(x)`` — the first ``t`` with ``x ∈ bag(r, t)``; equals the
  *maximum* key on the tree path from the leader ``r`` to ``x``
  (DESIGN.md errata: the paper's Lemma 13 says "minimum", but under
  Definition 6 a vertex joins when the whole connecting path is
  contracted);
* ``ldr_time(r)`` — the last ``t`` at which ``r`` still leads its bag:
  one less than the first time the bag absorbs a lower-label vertex,
  i.e. ``min`` over the (≤ 2, Lemma 10) boundary tree edges ``(x, y)``
  of ``max(join_time(x), key(x, y))``, minus one.  A leader with no
  boundary (the global minimum label) keeps leading until the bag
  becomes all of ``V``; its ``ldr_time`` is capped at
  ``max_mst_key - 1`` so only proper subsets are scored.

Everything is computed with one DFS per component (``O(n)`` per level;
the model-cost accounting lives in :mod:`repro.core.singleton`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..trees.low_depth import LowDepthDecomposition
from .contraction import mst_of_keys
from .keys import ContractionKeys

Vertex = Hashable


@dataclass
class LevelStructure:
    """Leaders, join times and ldr_times for one decomposition level."""

    level: int
    #: vertex -> leader of its component (only vertices in leadered comps)
    leader_of: dict[Vertex, Vertex]
    #: vertex -> first time it belongs to its leader's bag (0 for leaders)
    join_time: dict[Vertex, int]
    #: leader -> last time it still leads
    ldr_time: dict[Vertex, int]
    #: leader -> component vertices (for witnesses/tests)
    component_of: dict[Vertex, list[Vertex]] = field(default_factory=dict)


def build_level_structure(
    decomp: LowDepthDecomposition,
    keys: ContractionKeys,
    level: int,
    *,
    max_tree_key: int,
) -> LevelStructure:
    """Compute the Lemma-11 quantities for one level.

    ``max_tree_key`` is the largest MST-edge key (caps the unbounded
    leader's ``ldr_time``).
    """
    tree = decomp.tree
    label = decomp.label

    # Components of T_level, discovered by DFS from each level-`level`
    # vertex through vertices of label >= level.
    leader_of: dict[Vertex, Vertex] = {}
    join_time: dict[Vertex, int] = {}
    ldr_time: dict[Vertex, int] = {}
    component_of: dict[Vertex, list[Vertex]] = {}

    leaders = [v for v, l in label.items() if l == level]
    for r in leaders:
        comp = [r]
        leader_of[r] = r
        join_time[r] = 0
        stack = [r]
        first_crossing: int | None = None
        while stack:
            v = stack.pop()
            t_v = join_time[v]
            neighbours = list(tree.children[v])
            p = tree.parent[v]
            if p is not None:
                neighbours.append(p)
            for u in neighbours:
                k = keys.of(u, v)
                if label[u] >= level:
                    # Trees have unique paths, so each vertex is
                    # discovered once; the membership test also skips
                    # the DFS parent.
                    if u not in join_time:
                        leader_of[u] = r
                        join_time[u] = max(t_v, k)
                        comp.append(u)
                        stack.append(u)
                else:
                    # Boundary edge (Lemma 10: at most two per component).
                    crossing = max(t_v, k)
                    if first_crossing is None or crossing < first_crossing:
                        first_crossing = crossing
        if first_crossing is None:
            ldr_time[r] = max_tree_key - 1
        else:
            ldr_time[r] = first_crossing - 1
        component_of[r] = comp

    return LevelStructure(
        level=level,
        leader_of=leader_of,
        join_time=join_time,
        ldr_time=ldr_time,
        component_of=component_of,
    )


def all_level_structures(
    decomp: LowDepthDecomposition, keys: ContractionKeys
) -> list[LevelStructure]:
    """Level structures for every level ``1..height`` (Lemma 9's tuples)."""
    graph_max = max(
        (k for k, _, _ in _tree_keys(decomp, keys)),
        default=0,
    )
    return [
        build_level_structure(decomp, keys, i, max_tree_key=graph_max)
        for i in range(1, decomp.height + 1)
    ]


def _tree_keys(decomp: LowDepthDecomposition, keys: ContractionKeys):
    for child, parent in decomp.tree.edges():
        yield keys.of(child, parent), child, parent


def leaders_are_unique(decomp: LowDepthDecomposition) -> bool:
    """Lemma 8 check: every ``T_i`` component has at most one leader."""
    from ..trees.validate import is_valid_decomposition

    return is_valid_decomposition(decomp.tree, decomp.label)
