"""Contraction keys ``w : E -> [n^3]`` (Section 4.1).

The paper's contraction process iterates timesteps ``0 .. n^3`` and at
time ``t`` contracts the edge whose key equals ``t``; keys are "random
and unique".  Two regimes:

* **unweighted graphs** — a uniformly random permutation of the edges
  reproduces Karger's uniform random contraction;
* **weighted graphs** — Karger's process must pick each edge with
  probability proportional to its weight.  Drawing an exponential
  clock ``Exp(1) / w(e)`` per edge and contracting in increasing clock
  order is exactly weight-proportional sampling without replacement
  (the memoryless property makes every conditional pick proportional
  to weight).  We draw clocks, then *rank* them into unique integers,
  which keeps the paper's integer-timestep semantics intact.

Ranks are spread over ``[1, n^3]`` (the paper's key space) rather than
``[1, m]``; only the order matters to every consumer, but tests assert
the codomain contract too.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..graph import Graph

EdgeId = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class ContractionKeys:
    """Unique integer contraction keys for every edge of a graph.

    ``key[(u, v)]`` is defined for both orientations of each edge.
    ``max_key`` is the largest assigned key; ``key_space`` the paper's
    ``n^3`` bound.
    """

    key: dict[EdgeId, int]
    max_key: int
    key_space: int
    _ordered: list[tuple[int, Hashable, Hashable]] | None = field(
        default=None, repr=False, compare=False
    )

    def of(self, u: Hashable, v: Hashable) -> int:
        return self.key[(u, v)]

    def edges_by_key(self) -> list[tuple[int, Hashable, Hashable]]:
        """(key, u, v) triples, ascending, one per undirected edge.

        Cached after the first call (keys are immutable); callers must
        not mutate the returned list.
        """
        if self._ordered is None:
            seen = set()
            out = []
            for (u, v), k in self.key.items():
                if (v, u) in seen:
                    continue
                seen.add((u, v))
                out.append((k, u, v))
            out.sort()
            object.__setattr__(self, "_ordered", out)
        return self._ordered


def _spread_ranks(m: int, key_space: int) -> list[int]:
    """Rank ``1..m`` spread over ``[1, key_space]`` preserving order.

    With ``m <= n^2 < n^3`` the spreading keeps keys unique; on tiny
    key spaces where the stride collapses, fall back to the raw ranks.
    """
    stride = max(1, key_space // (m + 1))
    ranks = np.arange(1, m + 1, dtype=np.int64)
    kvals = np.minimum(np.int64(key_space), ranks * stride)
    if len(np.unique(kvals)) != m:
        kvals = ranks
    return kvals.tolist()


def draw_contraction_keys(graph: Graph, *, seed: int = 0) -> ContractionKeys:
    """Draw weight-biased unique keys for every edge of ``graph``."""
    rng = random.Random(seed)
    n = graph.num_vertices
    key_space = max(1, n**3)
    us, vs, ws = graph.edge_arrays()
    m = len(ws)
    # The uniform draws must come from the Python RNG one edge at a
    # time, in edge-storage order — the reproducibility contract ties
    # seeds to this exact stream.  Everything downstream (clocks,
    # ordering, rank spreading) is vectorized over the columns.
    unif = np.fromiter((rng.random() for _ in range(m)), np.float64, count=m)
    # Exp(1)/w: smaller for heavier edges => contracted earlier.  The
    # per-element math.log keeps clock values bit-identical to the
    # scalar implementation (SIMD log kernels may round differently).
    clocks = np.fromiter(
        (-math.log(c) for c in np.maximum(unif, 1e-300).tolist()),
        np.float64,
        count=m,
    )
    clocks /= ws
    key: dict[EdgeId, int] = {}
    ordered: list[tuple[int, Hashable, Hashable]] = []
    if m:
        order = np.argsort(clocks, kind="stable")
        kvals = _spread_ranks(m, key_space)
        V = graph.vertices()
        for k, iu, iv in zip(kvals, us[order].tolist(), vs[order].tolist()):
            u, v = V[iu], V[iv]
            key[(u, v)] = k
            key[(v, u)] = k
            ordered.append((k, u, v))
    max_key = ordered[-1][0] if ordered else 0
    return ContractionKeys(
        key=key, max_key=max_key, key_space=key_space, _ordered=ordered
    )


def draw_uniform_keys(graph: Graph, *, seed: int = 0) -> ContractionKeys:
    """Weight-*oblivious* keys: a uniform random edge permutation.

    This is the paper's phrasing ("assign random weights to the edges")
    taken literally on a weighted graph — the ablation arm of A4.  On
    unweighted inputs it coincides in distribution with
    :func:`draw_contraction_keys`; on skewed weights it contracts light
    cross edges far too early, which is why the erratum in DESIGN.md
    replaces it with exponential clocks for the weighted case.
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    key_space = max(1, n**3)
    edges = [(u, v) for u, v, _ in graph.edges()]
    rng.shuffle(edges)
    m = len(edges)
    key: dict[EdgeId, int] = {}
    ordered: list[tuple[int, Hashable, Hashable]] = []
    if m:
        for k, (u, v) in zip(_spread_ranks(m, key_space), edges):
            key[(u, v)] = k
            key[(v, u)] = k
            ordered.append((k, u, v))
    max_key = ordered[-1][0] if ordered else 0
    return ContractionKeys(
        key=key, max_key=max_key, key_space=key_space, _ordered=ordered
    )
