"""Contraction keys ``w : E -> [n^3]`` (Section 4.1).

The paper's contraction process iterates timesteps ``0 .. n^3`` and at
time ``t`` contracts the edge whose key equals ``t``; keys are "random
and unique".  Two regimes:

* **unweighted graphs** — a uniformly random permutation of the edges
  reproduces Karger's uniform random contraction;
* **weighted graphs** — Karger's process must pick each edge with
  probability proportional to its weight.  Drawing an exponential
  clock ``Exp(1) / w(e)`` per edge and contracting in increasing clock
  order is exactly weight-proportional sampling without replacement
  (the memoryless property makes every conditional pick proportional
  to weight).  We draw clocks, then *rank* them into unique integers,
  which keeps the paper's integer-timestep semantics intact.

Ranks are spread over ``[1, n^3]`` (the paper's key space) rather than
``[1, m]``; only the order matters to every consumer, but tests assert
the codomain contract too.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Hashable

from ..graph import Graph

EdgeId = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class ContractionKeys:
    """Unique integer contraction keys for every edge of a graph.

    ``key[(u, v)]`` is defined for both orientations of each edge.
    ``max_key`` is the largest assigned key; ``key_space`` the paper's
    ``n^3`` bound.
    """

    key: dict[EdgeId, int]
    max_key: int
    key_space: int

    def of(self, u: Hashable, v: Hashable) -> int:
        return self.key[(u, v)]

    def edges_by_key(self) -> list[tuple[int, Hashable, Hashable]]:
        """(key, u, v) triples, ascending, one per undirected edge."""
        seen = set()
        out = []
        for (u, v), k in self.key.items():
            if (v, u) in seen:
                continue
            seen.add((u, v))
            out.append((k, u, v))
        out.sort()
        return out


def draw_contraction_keys(graph: Graph, *, seed: int = 0) -> ContractionKeys:
    """Draw weight-biased unique keys for every edge of ``graph``."""
    rng = random.Random(seed)
    n = graph.num_vertices
    key_space = max(1, n**3)
    clocked: list[tuple[float, Hashable, Hashable]] = []
    for u, v, w in graph.edges():
        # Exp(1)/w: smaller for heavier edges => contracted earlier.
        clock = -math.log(max(rng.random(), 1e-300)) / w
        clocked.append((clock, u, v))
    clocked.sort(key=lambda t: t[0])
    m = len(clocked)
    key: dict[EdgeId, int] = {}
    if m:
        # Spread ranks over [1, key_space] preserving order; with
        # m <= n^2 < n^3 the spreading keeps keys unique.
        stride = max(1, key_space // (m + 1))
        for rank, (_, u, v) in enumerate(clocked, start=1):
            k = min(key_space, rank * stride)
            key[(u, v)] = k
            key[(v, u)] = k
        # Guard against stride collapse on tiny key spaces.
        if len({k for k in key.values()}) != m:
            for rank, (_, u, v) in enumerate(clocked, start=1):
                key[(u, v)] = rank
                key[(v, u)] = rank
    max_key = max(key.values()) if key else 0
    return ContractionKeys(key=key, max_key=max_key, key_space=key_space)


def draw_uniform_keys(graph: Graph, *, seed: int = 0) -> ContractionKeys:
    """Weight-*oblivious* keys: a uniform random edge permutation.

    This is the paper's phrasing ("assign random weights to the edges")
    taken literally on a weighted graph — the ablation arm of A4.  On
    unweighted inputs it coincides in distribution with
    :func:`draw_contraction_keys`; on skewed weights it contracts light
    cross edges far too early, which is why the erratum in DESIGN.md
    replaces it with exponential clocks for the weighted case.
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    key_space = max(1, n**3)
    edges = [(u, v) for u, v, _ in graph.edges()]
    rng.shuffle(edges)
    m = len(edges)
    key: dict[EdgeId, int] = {}
    stride = max(1, key_space // (m + 1)) if m else 1
    for rank, (u, v) in enumerate(edges, start=1):
        k = min(key_space, rank * stride)
        key[(u, v)] = k
        key[(v, u)] = k
    if m and len({k for k in key.values()}) != m:
        for rank, (u, v) in enumerate(edges, start=1):
            key[(u, v)] = rank
            key[(v, u)] = rank
    max_key = max(key.values()) if key else 0
    return ContractionKeys(key=key, max_key=max_key, key_space=key_space)
