"""Experiment analysis: theory envelopes, runners, tables, figures."""

from . import figures, harness, metrics, tables, theory
from .harness import ExperimentReport
from .metrics import PartitionSummary, partition_summary

__all__ = [
    "ExperimentReport",
    "PartitionSummary",
    "figures",
    "harness",
    "metrics",
    "partition_summary",
    "tables",
    "theory",
]
