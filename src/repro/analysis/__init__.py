"""Experiment analysis: theory envelopes, runners, tables, figures."""

from . import figures, harness, metrics, sparsest, tables, theory
from .harness import ExperimentReport
from .metrics import PartitionSummary, partition_summary
from .sparsest import (
    SparsestCutResult,
    approx_sparsest_cut,
    cut_sparsity,
    exact_sparsest_cut,
    lift_side,
    sparsest_kernel,
)

__all__ = [
    "ExperimentReport",
    "PartitionSummary",
    "SparsestCutResult",
    "approx_sparsest_cut",
    "cut_sparsity",
    "exact_sparsest_cut",
    "figures",
    "harness",
    "lift_side",
    "metrics",
    "partition_summary",
    "sparsest",
    "sparsest_kernel",
    "tables",
    "theory",
]
