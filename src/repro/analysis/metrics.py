"""Partition quality metrics for the cut experiments.

The paper's objectives are pure cut weights (``δ(S)``,
``Σ_i δ(V_i)``), but the workloads its introduction motivates —
community detection, datacenter bottleneck analysis — judge partitions
by normalised quantities.  These metrics let the k-cut examples and
benches report *why* a cheap cut is (or is not) a good community
structure:

* :func:`conductance` — cut weight over the smaller side's volume; the
  quantity sparsest-cut heuristics optimise.
* :func:`expansion` — cut weight over the smaller side's vertex count.
* :func:`normalized_cut_value` — Shi–Malik style sum of per-part
  ``cut/volume`` ratios.
* :func:`modularity` — Newman–Girvan community quality (weighted).
* :func:`balance` — largest-part share; 1/k is perfectly balanced.
* :func:`partition_summary` — one record with everything, used by the
  examples' report tables.

All metrics accept the same ``(graph, parts)`` shape as
:class:`repro.graph.cuts.KCut` and validate that ``parts`` is a true
partition of the vertex set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..graph import Graph

Vertex = Hashable


def _as_sets(
    graph: Graph, parts: Sequence[Iterable[Vertex]]
) -> list[frozenset]:
    sets = [frozenset(p) for p in parts]
    if not sets:
        raise ValueError("partition must have at least one part")
    if any(not s for s in sets):
        raise ValueError("empty part in partition")
    union: set[Vertex] = set()
    total = 0
    for s in sets:
        total += len(s)
        union.update(s)
    if total != len(union):
        raise ValueError("parts overlap")
    if union != set(graph.vertices()):
        raise ValueError("partition does not cover the vertex set")
    return sets


def volume(graph: Graph, side: Iterable[Vertex]) -> float:
    """Sum of weighted degrees over ``side`` (counts internal edges twice)."""
    return float(sum(graph.degree(v) for v in side))


def conductance(graph: Graph, side: Iterable[Vertex]) -> float:
    """``w(δS) / min(vol(S), vol(V-S))``; 0 for the empty cut.

    Raises if one side is empty or has zero volume (isolated vertices
    only), where conductance is undefined.
    """
    side_set = set(side)
    rest = set(graph.vertices()) - side_set
    if not side_set or not rest:
        raise ValueError("conductance needs a proper bipartition")
    vol = min(volume(graph, side_set), volume(graph, rest))
    if vol == 0:
        raise ValueError("one side has zero volume")
    return graph.cut_weight(side_set) / vol


def expansion(graph: Graph, side: Iterable[Vertex]) -> float:
    """``w(δS) / min(|S|, |V-S|)`` — the vertex-count analogue."""
    side_set = set(side)
    rest = set(graph.vertices()) - side_set
    if not side_set or not rest:
        raise ValueError("expansion needs a proper bipartition")
    return graph.cut_weight(side_set) / min(len(side_set), len(rest))


def normalized_cut_value(
    graph: Graph, parts: Sequence[Iterable[Vertex]]
) -> float:
    """``Σ_i w(δ(V_i)) / vol(V_i)`` over the parts (Shi–Malik NCut)."""
    sets = _as_sets(graph, parts)
    total = 0.0
    for s in sets:
        vol = volume(graph, s)
        if vol == 0:
            raise ValueError("part with zero volume")
        total += graph.cut_weight(s) / vol
    return total


def modularity(graph: Graph, parts: Sequence[Iterable[Vertex]]) -> float:
    """Weighted Newman–Girvan modularity of the partition.

    ``Q = Σ_i (w_in(V_i)/W - (vol(V_i)/2W)²)`` with ``W`` the total
    edge weight; in ``[-1/2, 1)``, higher is more community-like.
    """
    sets = _as_sets(graph, parts)
    W = graph.total_weight()
    if W == 0:
        raise ValueError("modularity undefined on an edgeless graph")
    q = 0.0
    for s in sets:
        internal = (volume(graph, s) - graph.cut_weight(s)) / 2.0
        q += internal / W - (volume(graph, s) / (2.0 * W)) ** 2
    return q


def balance(parts: Sequence[Iterable[Vertex]]) -> float:
    """Largest-part share of the vertices; ``1/k`` is perfectly balanced."""
    sizes = [len(frozenset(p)) for p in parts]
    if not sizes or min(sizes) == 0:
        raise ValueError("partition must have non-empty parts")
    return max(sizes) / sum(sizes)


@dataclass(frozen=True)
class PartitionSummary:
    """One row of partition diagnostics (see :func:`partition_summary`)."""

    k: int
    cut_weight: float
    normalized_cut: float
    modularity: float
    balance: float
    worst_conductance: float

    def render(self) -> str:
        return (
            f"k={self.k}  cut={self.cut_weight:.1f}  "
            f"ncut={self.normalized_cut:.3f}  Q={self.modularity:.3f}  "
            f"balance={self.balance:.2f}  "
            f"max-cond={self.worst_conductance:.3f}"
        )


def partition_summary(
    graph: Graph, parts: Sequence[Iterable[Vertex]]
) -> PartitionSummary:
    """All metrics for one partition in a single record."""
    sets = _as_sets(graph, parts)
    worst = 0.0
    for s in sets:
        if len(s) < graph.num_vertices:
            worst = max(worst, conductance(graph, s))
    return PartitionSummary(
        k=len(sets),
        cut_weight=graph.partition_cut_weight(sets),
        normalized_cut=normalized_cut_value(graph, sets),
        modularity=modularity(graph, sets),
        balance=balance(sets),
        worst_conductance=worst,
    )
