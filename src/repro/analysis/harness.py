"""Shared experiment runners (one per DESIGN.md experiment).

Benchmarks call these; each returns structured rows *and* a rendered
table so `pytest benchmarks/ --benchmark-only` output contains the
exact rows EXPERIMENTS.md records.  Keeping the logic here (not in the
benchmark files) also lets the integration tests assert experiment
outcomes without pytest-benchmark.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field

from ..ampc import AMPCConfig, RoundLedger
from ..baselines import (
    contraction_preserves_cut,
    exact_min_cut_weight,
    gn_mpc_kcut_rounds,
    gn_mpc_rounds,
    sv_split_kcut,
)
from ..core import (
    ampc_min_cut,
    apx_split_kcut,
    draw_contraction_keys,
    schedule_for,
    smallest_singleton_cut,
    verify_against_replay,
)
from ..graph import Graph
from ..trees import low_depth_decomposition, low_depth_decomposition_ampc
from ..workloads import (
    balanced_binary,
    caterpillar,
    cycle,
    erdos_renyi,
    path_tree,
    planted_cut,
    planted_kcut,
    random_tree,
    star_tree,
)
from . import theory
from .tables import render_table


@dataclass
class ExperimentReport:
    """Rows + rendered table + derived verdict for one experiment."""

    experiment: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = render_table(self.experiment, self.columns, self.rows)
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out


# ----------------------------------------------------------------------
# E1 — round complexity scaling: AMPC vs MPC cost model
# ----------------------------------------------------------------------
def run_rounds_scaling(
    sizes: list[int] | None = None, *, eps: float = 0.5, seed: int = 1
) -> ExperimentReport:
    sizes = sizes or [64, 128, 256, 512]
    report = ExperimentReport(
        experiment="E1: rounds vs n — Theorem 1 (AMPC) vs G&N (MPC model)",
        columns=[
            "n",
            "ampc_rounds",
            "mpc_rounds",
            "speedup",
            "loglog_n",
            "ampc_envelope",
        ],
    )
    ampc_rounds: list[int] = []
    for n in sizes:
        inst = planted_cut(n, seed=seed)
        res = ampc_min_cut(inst.graph, eps=eps, seed=seed, max_copies=2)
        mpc = gn_mpc_rounds(res.schedule)
        envelope = theory.loglog_rounds_envelope(n, eps)
        report.rows.append(
            [
                n,
                res.ledger.rounds,
                mpc,
                mpc / max(1, res.ledger.rounds),
                theory.loglog(n),
                envelope,
            ]
        )
        ampc_rounds.append(res.ledger.rounds)
        if res.ledger.rounds > envelope:
            report.notes.append(f"n={n}: AMPC rounds exceed Theorem 1 envelope!")
    # Shape check: AMPC rounds should grow sublinearly in log n.
    fit = theory.fit_against(
        [theory.loglog(n) for n in sizes], [float(r) for r in ampc_rounds]
    )
    report.notes.append(
        f"AMPC rounds ~ {fit.scale:.1f}*loglog(n) + {fit.intercept:.1f} "
        f"(residual {fit.residual:.2f})"
    )
    return report


# ----------------------------------------------------------------------
# E2 — approximation quality vs exact min cut
# ----------------------------------------------------------------------
def run_approx_quality(
    *, eps: float = 0.5, seed: int = 2, trials: int = 3
) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E2: (2+eps)-approximation quality — Theorem 1",
        columns=["workload", "n", "exact", "ampc_best", "ratio", "bound"],
    )
    bound = theory.mincut_approx_bound(eps)
    workloads: list[tuple[str, Graph]] = [
        ("planted", planted_cut(64, seed=seed).graph),
        ("er_sparse", erdos_renyi(48, 0.12, weighted=True, seed=seed)),
        ("er_dense", erdos_renyi(40, 0.3, weighted=True, seed=seed + 1)),
        ("cycle", cycle(40)),
    ]
    for name, g in workloads:
        exact = exact_min_cut_weight(g)
        best = math.inf
        for t in range(trials):
            res = ampc_min_cut(g, eps=eps, seed=seed + 101 * t, max_copies=2)
            best = min(best, res.weight)
        ratio = best / exact if exact > 0 else 1.0
        report.rows.append([name, g.num_vertices, exact, best, ratio, bound])
        if ratio > bound + 1e-9:
            report.notes.append(f"{name}: ratio {ratio:.3f} exceeds {bound}!")
    return report


# ----------------------------------------------------------------------
# E3 — singleton tracker: exactness + constant rounds
# ----------------------------------------------------------------------
def run_singleton_verification(
    sizes: list[int] | None = None, *, seed: int = 3
) -> ExperimentReport:
    sizes = sizes or [32, 64, 128, 256]
    report = ExperimentReport(
        experiment="E3: SmallestSingletonCut — Theorem 3 (exact, O(1/eps) rounds)",
        columns=["n", "m", "algorithm3", "replay_oracle", "equal", "rounds"],
    )
    for n in sizes:
        g = erdos_renyi(n, min(0.5, 8.0 / n), weighted=True, seed=seed + n)
        keys = draw_contraction_keys(g, seed=seed)
        ledger = RoundLedger()
        res = smallest_singleton_cut(g, keys, ledger=ledger)
        fast, slow = res.weight, None
        from ..core.bags import replay_min_singleton

        slow = replay_min_singleton(g, keys).min_singleton_weight
        report.rows.append(
            [n, g.num_edges, fast, slow, abs(fast - slow) < 1e-9, ledger.rounds]
        )
    rounds = [row[5] for row in report.rows]
    if len(set(rounds)) == 1:
        report.notes.append(f"rounds constant in n: {rounds[0]} (Theorem 3)")
    return report


# ----------------------------------------------------------------------
# E4 — low-depth decomposition height and rounds
# ----------------------------------------------------------------------
def run_low_depth_heights(
    sizes: list[int] | None = None, *, seed: int = 4
) -> ExperimentReport:
    sizes = sizes or [128, 512, 2048]
    report = ExperimentReport(
        experiment="E4: generalized low-depth decomposition — Lemma 3",
        columns=["shape", "n", "height", "envelope", "ampc_rounds"],
    )
    for n in sizes:
        for shape, (vs, es) in {
            "path": path_tree(n),
            "star": star_tree(n),
            "caterpillar": caterpillar(n),
            "random": random_tree(n, seed=seed),
            "balanced": balanced_binary(max(2, int(math.log2(n)) - 1)),
        }.items():
            ledger = RoundLedger()
            small = len(vs) <= 512
            if small:
                d = low_depth_decomposition_ampc(vs, es, ledger=ledger)
                rounds = ledger.rounds
            else:
                d = low_depth_decomposition(vs, es)
                rounds = None
            envelope = theory.decomposition_height_envelope(len(vs))
            report.rows.append(
                [shape, len(vs), d.height, envelope, rounds if rounds else "-"]
            )
            if d.height > envelope:
                report.notes.append(f"{shape} n={len(vs)}: height exceeds envelope!")
    return report


# ----------------------------------------------------------------------
# E5 — k-cut quality and rounds
# ----------------------------------------------------------------------
def run_kcut_quality(
    ks: list[int] | None = None, *, eps: float = 0.5, seed: int = 5
) -> ExperimentReport:
    ks = ks or [2, 3, 4]
    report = ExperimentReport(
        experiment="E5: APX-SPLIT k-cut — Theorem 2 ((4+eps)-approx, O(k loglog n) rounds)",
        columns=["k", "n", "planted", "apx_split", "sv_exact_split", "ratio", "bound", "rounds"],
    )
    for k in ks:
        inst = planted_kcut(16 * k, k, seed=seed + k)
        res = apx_split_kcut(inst.graph, k, eps=eps, seed=seed)
        sv = sv_split_kcut(inst.graph, k)
        ratio = res.weight / inst.planted_weight if inst.planted_weight else 1.0
        report.rows.append(
            [
                k,
                inst.graph.num_vertices,
                inst.planted_weight,
                res.weight,
                sv.weight,
                ratio,
                theory.kcut_approx_bound(eps),
                res.ledger.rounds,
            ]
        )
    return report


# ----------------------------------------------------------------------
# E6 — memory envelopes
# ----------------------------------------------------------------------
def run_memory_budgets(
    sizes: list[int] | None = None, *, eps: float = 0.5, seed: int = 6
) -> ExperimentReport:
    sizes = sizes or [64, 128, 256]
    report = ExperimentReport(
        experiment="E6: memory accounting — Theorems 1/3 budgets",
        columns=[
            "n",
            "m",
            "local_peak",
            "local_budget",
            "total_peak",
            "total_budget",
            "within",
        ],
    )
    for n in sizes:
        inst = planted_cut(n, seed=seed)
        g = inst.graph
        config = AMPCConfig(n_input=n, eps=eps, m_input=g.num_edges)
        ledger = RoundLedger()
        smallest_singleton_cut(g, config=config, ledger=ledger, seed=seed)
        local_budget = theory.local_memory_envelope(n, eps, m=g.num_edges)
        total_budget = theory.total_space_envelope(n, g.num_edges)
        within = ledger.local_peak <= local_budget and ledger.total_peak <= total_budget
        report.rows.append(
            [
                n,
                g.num_edges,
                ledger.local_peak,
                local_budget,
                ledger.total_peak,
                total_budget,
                within,
            ]
        )
    return report


# ----------------------------------------------------------------------
# E7 — cut preservation probabilities (Lemmas 1 & 2)
# ----------------------------------------------------------------------
def run_preservation_probability(
    *, n: int = 64, trials: int = 200, seed: int = 7, eps: float = 0.5
) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E7: contraction preserves the min cut — Lemmas 1 & 2",
        columns=[
            "t",
            "target",
            "empirical_preserve",
            "lemma1_bound",
            "singleton_ok",
            "lemma2_bound",
        ],
    )
    inst = planted_cut(n, cross_edges=2, seed=seed)
    g, side, opt = inst.graph, inst.planted_side, inst.planted_weight
    for t in [math.sqrt(2), 2.0, 4.0, 8.0]:
        target = max(2, round(n / t))
        preserved = 0
        singleton_good = 0
        for trial in range(trials):
            s = seed + 977 * trial
            if contraction_preserves_cut(g, side, target, seed=s):
                preserved += 1
            # Lemma 2's event: preserved OR a small singleton appeared.
            keys = draw_contraction_keys(g, seed=s)
            res = smallest_singleton_cut(g, keys)
            if res.weight <= (2.0 + eps) * opt or contraction_preserves_cut(
                g, side, target, seed=s
            ):
                singleton_good += 1
        report.rows.append(
            [
                round(t, 3),
                target,
                preserved / trials,
                theory.karger_preservation_lower_bound(t),
                singleton_good / trials,
                theory.singleton_aware_lower_bound(t, eps),
            ]
        )
    return report


# ----------------------------------------------------------------------
# E9 — Corollary 1: MPC k-cut rounds
# ----------------------------------------------------------------------
def run_mpc_corollary(
    *, eps: float = 0.5, seed: int = 9
) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E9: Corollary 1 — MPC k-cut rounds O(k log n loglog n)",
        columns=["n", "k", "ampc_kcut_rounds", "mpc_kcut_rounds", "speedup"],
    )
    for n, k in [(32, 2), (48, 3), (64, 4)]:
        inst = planted_kcut(n, k, seed=seed)
        res = apx_split_kcut(inst.graph, k, eps=eps, seed=seed)
        mpc = gn_mpc_kcut_rounds(n, k, eps=eps)
        report.rows.append(
            [n, k, res.ledger.rounds, mpc, mpc / max(1, res.ledger.rounds)]
        )
    return report


# ----------------------------------------------------------------------
# E11 — wall-clock throughput of the simulator itself
# ----------------------------------------------------------------------
def run_throughput(*, seed: int = 11) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E11: simulator throughput (wall clock, not a paper claim)",
        columns=["stage", "n", "m", "seconds"],
    )
    inst = planted_cut(256, seed=seed)
    g = inst.graph
    keys = draw_contraction_keys(g, seed=seed)
    t0 = time.perf_counter()
    smallest_singleton_cut(g, keys)
    t1 = time.perf_counter()
    report.rows.append(["singleton_cut", g.num_vertices, g.num_edges, t1 - t0])
    t0 = time.perf_counter()
    ampc_min_cut(g, seed=seed, max_copies=2)
    t1 = time.perf_counter()
    report.rows.append(["ampc_min_cut", g.num_vertices, g.num_edges, t1 - t0])
    return report


# ----------------------------------------------------------------------
# E12 — sparsification ablation (NI certificate in front of Algorithm 1)
# ----------------------------------------------------------------------
def run_sparsification_ablation(
    sizes: list[int] | None = None, *, eps: float = 0.5, seed: int = 13
) -> ExperimentReport:
    """NI certificate preprocessing: same cuts, smaller substrate.

    For each dense planted instance: exact min cut before/after the
    certificate (must match), edge/total-weight shrink factors, and
    Algorithm 1's total-space high-water on both inputs.
    """
    from ..graph.sparsify import sparsify_preserving_min_cut

    if sizes is None:
        sizes = [64, 128, 192]
    report = ExperimentReport(
        experiment="E12: NI sparsification ablation (min-cut-preserving)",
        columns=[
            "n", "m", "m_cert", "exact", "exact_cert",
            "ampc_w", "ampc_w_cert", "space", "space_cert",
        ],
    )
    for n in sizes:
        inst = planted_cut(n, cross_edges=3, inner_degree=16, seed=seed)
        g = inst.graph
        cert = sparsify_preserving_min_cut(g)
        exact = exact_min_cut_weight(g)
        exact_cert = exact_min_cut_weight(cert)
        res = ampc_min_cut(g, eps=eps, seed=seed, max_copies=2)
        res_cert = ampc_min_cut(cert, eps=eps, seed=seed, max_copies=2)
        report.rows.append([
            n, g.num_edges, cert.num_edges, exact, exact_cert,
            res.weight, res_cert.weight,
            res.ledger.total_peak, res_cert.ledger.total_peak,
        ])
        if exact != exact_cert:
            report.notes.append(f"n={n}: certificate changed the min cut!")
    return report


# ----------------------------------------------------------------------
# E13 — quality/model grid: exact vs deterministic 2+eps vs the paper
# ----------------------------------------------------------------------
def run_quality_grid(
    *, eps: float = 0.5, seed: int = 17, trials: int = 3
) -> ExperimentReport:
    """Three points on the quality/model grid for the same instances.

    Stoer–Wagner (exact, sequential), Matula (deterministic 2+eps,
    sequential), and the paper's boosted Algorithm 1 (randomized 2+eps,
    O(log log n) AMPC rounds).  Expected shape: matula <= 2+eps
    everywhere deterministically, AMPC within the same bound w.h.p.,
    and both typically near 1.0 on structured instances.
    """
    report = ExperimentReport(
        experiment="E13: quality grid — exact vs Matula vs AMPC (eps=%.2f)" % eps,
        columns=["workload", "n", "exact", "matula", "m_ratio", "ampc", "a_ratio"],
    )
    from ..baselines import matula_min_cut_weight

    workloads: list[tuple[str, Graph]] = [
        ("planted", planted_cut(96, seed=seed).graph),
        ("er_sparse", erdos_renyi(64, 0.10, weighted=True, seed=seed)),
        ("er_dense", erdos_renyi(48, 0.35, weighted=True, seed=seed + 1)),
        ("cycle", cycle(48)),
    ]
    bound = theory.mincut_approx_bound(eps)
    for name, g in workloads:
        exact = exact_min_cut_weight(g)
        matula = matula_min_cut_weight(g, eps=eps)
        best = math.inf
        for t in range(trials):
            best = min(
                best,
                ampc_min_cut(g, eps=eps, seed=seed + 31 * t, max_copies=2).weight,
            )
        report.rows.append([
            name, g.num_vertices, exact,
            matula, matula / exact if exact else 1.0,
            best, best / exact if exact else 1.0,
        ])
        if matula > bound * exact + 1e-9:
            report.notes.append(f"{name}: Matula ratio above {bound}!")
    return report


# ----------------------------------------------------------------------
# E14 — model separation, measured on two executable runtimes
# ----------------------------------------------------------------------
def run_model_separation(
    sizes: list[int] | None = None, *, eps: float = 0.5
) -> ExperimentReport:
    """AMPC vs MPC on identical workloads, both *executed*.

    Three workloads per size n:

    * ``reduce`` — the control: constant rounds in both models;
    * ``listrank`` (a path) — AMPC walks chains adaptively in O(1/eps)
      rounds; MPC pointer-doubles in Θ(log n);
    * ``connectivity`` on the 1-vs-2-cycle workload — the conjectured
      Ω(log n) MPC barrier the AMPC model bypasses (AMPC cost charged
      per Behnezhad et al. [4]; all other rows fully measured).
    """
    from ..ampc.primitives import (
        ampc_graph_components,
        ampc_list_rank,
        ampc_reduce,
    )
    from ..mpc import mpc_connectivity, mpc_list_rank, mpc_reduce
    from ..workloads import two_cycles

    if sizes is None:
        sizes = [32, 128, 512]
    report = ExperimentReport(
        experiment="E14: model separation — measured AMPC vs MPC rounds",
        columns=["workload", "n", "ampc_rounds", "mpc_rounds", "gap", "log2_n"],
    )
    for n in sizes:
        cfg = AMPCConfig(n_input=n, eps=eps)

        led_a, led_m = RoundLedger(), RoundLedger()
        ampc_reduce(cfg, list(range(n)), min, ledger=led_a)
        mpc_reduce(cfg, list(range(n)), min, ledger=led_m)
        report.rows.append(
            ["reduce", n, led_a.rounds, led_m.rounds,
             led_m.rounds / max(1, led_a.rounds), math.log2(n)]
        )

        succ: dict = {i: i + 1 for i in range(n - 1)}
        succ[n - 1] = None
        led_a, led_m = RoundLedger(), RoundLedger()
        ra = ampc_list_rank(cfg, succ, ledger=led_a)
        rm = mpc_list_rank(cfg, succ, ledger=led_m)
        assert ra == rm, "list-rank engines disagree!"
        report.rows.append(
            ["listrank", n, led_a.rounds, led_m.rounds,
             led_m.rounds / max(1, led_a.rounds), math.log2(n)]
        )

        g = two_cycles(n)
        verts = g.vertices()
        edges = [(u, v) for u, v, _ in g.edges()]
        led_a, led_m = RoundLedger(), RoundLedger()
        ca = ampc_graph_components(cfg, verts, edges, ledger=led_a)
        cm = mpc_connectivity(cfg, verts, edges, ledger=led_m)
        same_a = {frozenset(v for v in verts if ca[v] == r) for r in set(ca.values())}
        same_m = {frozenset(v for v in verts if cm[v] == r) for r in set(cm.values())}
        assert same_a == same_m, "connectivity engines disagree!"
        report.rows.append(
            ["1v2cycle", n, led_a.rounds, led_m.rounds,
             led_m.rounds / max(1, led_a.rounds), math.log2(n)]
        )
    report.notes.append(
        "AMPC 1v2cycle rounds are charged per Behnezhad et al. [4]; "
        "every other row is executed on its runtime."
    )
    return report


# ----------------------------------------------------------------------
# E15 — unplanted real graphs (karate club, dolphins)
# ----------------------------------------------------------------------
def run_classic_datasets(*, eps: float = 0.5, seed: int = 23) -> ExperimentReport:
    """The full pipeline on graphs nobody planted.

    For each classic dataset: exact min cut, the paper's boosted
    Algorithm 1, Matula's deterministic bound, and APX-SPLIT's 2-cut
    versus the Gomory–Hu (Saran–Vazirani) upper bound.  Expected shape:
    every approximation within its factor, and min cuts isolating
    low-degree periphery (communities are *not* min cuts — that is the
    point of reporting both).
    """
    from ..baselines import matula_min_cut_weight
    from ..core import ampc_min_cut_boosted
    from ..flow import gomory_hu_tree_contracted
    from ..workloads import dolphins, karate_club

    report = ExperimentReport(
        experiment="E15: classic unplanted graphs — full pipeline",
        columns=["dataset", "n", "m", "exact", "ampc", "matula", "kcut2", "gh2"],
    )
    for name, g in (("karate", karate_club()), ("dolphins", dolphins())):
        exact = exact_min_cut_weight(g)
        boosted = ampc_min_cut_boosted(g, eps=eps, trials=4, seed=seed)
        matula = matula_min_cut_weight(g, eps=eps)
        kcut = apx_split_kcut(g, 2, eps=eps, seed=seed)
        gh = gomory_hu_tree_contracted(g)
        report.rows.append([
            name, g.num_vertices, g.num_edges, exact,
            boosted.weight, matula, kcut.weight, gh.kcut_upper_bound(2),
        ])
        if boosted.weight > (2 + eps) * exact + 1e-9:
            report.notes.append(f"{name}: AMPC ratio above bound!")
        if matula > (2 + eps) * exact + 1e-9:
            report.notes.append(f"{name}: Matula ratio above bound!")
    return report
