"""Fixed-width table rendering for benchmark reports.

The benchmark harness prints the rows each experiment reports (the
paper has no tables of its own — these are the theorem-validation
tables defined in DESIGN.md), and EXPERIMENTS.md embeds the output
verbatim, so the renderer is deliberately plain ASCII.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render a titled fixed-width table."""
    if any(len(row) != len(columns) for row in rows):
        raise ValueError("row arity does not match columns")

    def fmt(x: Any) -> str:
        if isinstance(x, bool):
            return "yes" if x else "no"
        if isinstance(x, float):
            return float_format.format(x)
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * max(len(title), len(sep))]
    lines.append(" | ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """Render a key/value block (experiment metadata)."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title, "-" * max(len(title), 8)]
    for k, v in pairs:
        lines.append(f"{k.ljust(width)} : {v}")
    return "\n".join(lines)
