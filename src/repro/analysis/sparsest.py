"""Uniform sparsest cut: exact enumeration, a Gomory–Hu sweep
approximation, and an optimum-preserving kernel.

The uniform sparsest cut of a weighted graph ``G = (V, E, w)`` with
node sizes ``mu`` (all 1 by default) minimises

    phi(S) = w(S, V \\ S) / (mu(S) * mu(V \\ S))

over nonempty proper subsets ``S``.  The serving layer exposes three
entry points:

- :func:`exact_sparsest_cut` — deterministic enumeration of all
  ``2^(n-1) - 1`` bipartitions, the ground truth for ``n <= 16``.
- :func:`approx_sparsest_cut` — the Kolmogorov-style single-commodity
  reduction: instead of solving a multicommodity relaxation, sweep the
  cuts certified by ``n - 1`` max-flow calls (a fresh Gomory–Hu tree),
  add singleton and component candidates, and refine with a seeded
  deterministic local search.  On the literature corpora this tracks
  the exact optimum well within the ``O(sqrt(log n))`` envelope the
  tests assert.
- :func:`sparsest_kernel` — contracts every edge too heavy to be cut
  by any solution sparser than a known upper bound, shrinking the
  instance while preserving the optimum exactly.

Everything here is a pure function of graph *content* (vertex order,
edge rows, weights): no randomness escapes the seeded local search, so
repeated calls — and calls on bit-identical warm/cold replicas — return
bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..flow import gomory_hu_tree
from ..graph import Graph

EXACT_LIMIT = 16


@dataclass(frozen=True)
class SparsestCutResult:
    """One sparsest-cut answer: the side, its pieces, and provenance."""

    side: frozenset
    weight: float
    demand: float
    sparsity: float
    method: str
    candidates: int

    def as_dict(self) -> dict:
        return {
            "weight": self.weight,
            "demand": self.demand,
            "sparsity": self.sparsity,
            "method": self.method,
            "candidates": self.candidates,
        }


def _size_map(graph: Graph, sizes: Optional[Mapping] = None) -> Dict:
    if sizes is None:
        return {v: 1.0 for v in graph.vertices()}
    out = {v: float(sizes[v]) for v in graph.vertices()}
    if any(s <= 0 for s in out.values()):
        raise ValueError("node sizes must be positive")
    return out


def _sort_key(v) -> tuple:
    return (type(v).__name__, repr(v))


def _canonical_side(graph: Graph, side: Iterable) -> frozenset:
    """Orient a bipartition so the first canonical vertex is *outside*.

    Both orientations of a cut have the same sparsity; fixing one makes
    every solver in this module return byte-identical sides for
    byte-identical graphs.
    """
    side = frozenset(side)
    anchor = graph.vertices()[0]
    if anchor in side:
        side = frozenset(graph.vertices()) - side
    return side


def cut_sparsity(graph: Graph, side: Iterable, *,
                 sizes: Optional[Mapping] = None) -> float:
    """Sparsity ``w(S, V-S) / (mu(S) * mu(V-S))`` of one bipartition."""
    side = frozenset(side)
    mu = _size_map(graph, sizes)
    total = sum(mu.values())
    inside = sum(mu[v] for v in side)
    if inside <= 0 or inside >= total:
        raise ValueError("side must be a nonempty proper subset")
    return graph.cut_weight(side) / (inside * (total - inside))


def exact_sparsest_cut(graph: Graph, *,
                       sizes: Optional[Mapping] = None) -> SparsestCutResult:
    """Exact uniform sparsest cut by vectorized enumeration (n <= 16).

    Fixes the first canonical vertex outside ``S`` so each bipartition
    is enumerated exactly once, evaluates all ``2^(n-1) - 1`` subsets
    with numpy bit arithmetic, and breaks sparsity ties by the smallest
    subset bitmask — a pure function of the graph's canonical vertex
    order.
    """
    vs = graph.vertices()
    n = len(vs)
    if n < 2:
        raise ValueError("need n >= 2")
    if n > EXACT_LIMIT:
        raise ValueError(f"exact enumeration limited to n <= {EXACT_LIMIT}")
    mu = _size_map(graph, sizes)
    free = vs[1:]  # vs[0] is pinned to the complement
    bit = {v: i for i, v in enumerate(free)}

    masks = np.arange(1, 1 << (n - 1), dtype=np.int64)
    cut_w = np.zeros(masks.shape, dtype=np.float64)
    for u, v, w in graph.edges():
        if u == vs[0]:
            u_in = np.zeros(masks.shape, dtype=bool)
        else:
            u_in = ((masks >> bit[u]) & 1).astype(bool)
        if v == vs[0]:
            v_in = np.zeros(masks.shape, dtype=bool)
        else:
            v_in = ((masks >> bit[v]) & 1).astype(bool)
        cut_w += np.where(u_in != v_in, float(w), 0.0)

    size_arr = np.array([mu[v] for v in free], dtype=np.float64)
    inside = np.zeros(masks.shape, dtype=np.float64)
    for i, v in enumerate(free):
        inside += np.where(((masks >> i) & 1).astype(bool), size_arr[i], 0.0)
    total = float(sum(mu.values()))
    demand = inside * (total - inside)
    sparsity = cut_w / demand

    best = float(sparsity.min())
    winners = np.nonzero(sparsity == best)[0]
    mask = int(masks[int(winners.min())])
    side = frozenset(v for v in free if (mask >> bit[v]) & 1)
    return SparsestCutResult(
        side=side,
        weight=float(cut_w[int(winners.min())]),
        demand=float(demand[int(winners.min())]),
        sparsity=best,
        method="exact-enum",
        candidates=int(masks.shape[0]),
    )


def _evaluate(graph: Graph, mu: Mapping, total: float,
              side: frozenset) -> Tuple[float, float, float]:
    inside = sum(mu[v] for v in side)
    weight = graph.cut_weight(side)
    demand = inside * (total - inside)
    return weight, demand, weight / demand


def _local_refine(graph: Graph, mu: Mapping, total: float,
                  side: frozenset, *, max_rounds: int = 8) -> frozenset:
    """Deterministic single-vertex hill climbing from ``side``."""
    vs = graph.vertices()
    universe = frozenset(vs)
    current = side
    _, _, best = _evaluate(graph, mu, total, current)
    for _ in range(max_rounds):
        improved = False
        for v in vs:
            candidate = (current - {v}) if v in current else (current | {v})
            if not candidate or candidate == universe:
                continue
            _, _, phi = _evaluate(graph, mu, total, candidate)
            if phi < best:
                best, current, improved = phi, candidate, True
        if not improved:
            break
    return current


def approx_sparsest_cut(graph: Graph, *, sizes: Optional[Mapping] = None,
                        seed: int = 0, trials: int = 2) -> SparsestCutResult:
    """Single-commodity sparsest-cut sweep with seeded local refinement.

    Candidate cuts come from ``n - 1`` max-flows (each Gomory–Hu tree
    edge records the bipartition its flow certified), the ``n``
    singleton cuts, the component cut when the graph is disconnected,
    and ``trials`` seeded random restarts of a deterministic local
    search.  The returned cut is the sparsest candidate; ties break on
    the canonical side ordering, so the answer is reproducible.
    """
    import random as _random

    vs = graph.vertices()
    n = len(vs)
    if n < 2:
        raise ValueError("need n >= 2")
    mu = _size_map(graph, sizes)
    total = float(sum(mu.values()))

    candidates = []

    components = graph.components()
    if len(components) > 1:
        # Zero-weight cut: any union of components is optimal.
        candidates.append(_canonical_side(graph, components[0]))
    else:
        tree = gomory_hu_tree(graph)
        for edge in tree.edges:
            if edge.child_side:
                candidates.append(_canonical_side(graph, edge.child_side))

    for v in vs:
        candidates.append(_canonical_side(graph, frozenset([v])))

    for t in range(max(0, int(trials))):
        rng = _random.Random((int(seed) << 8) ^ t)
        start = frozenset(v for v in vs[1:] if rng.random() < 0.5)
        if not start:
            start = frozenset([vs[-1]])
        candidates.append(
            _canonical_side(graph, _local_refine(graph, mu, total, start)))

    refined = [_canonical_side(graph, _local_refine(graph, mu, total, c))
               for c in candidates]

    def rank(side: frozenset):
        weight, demand, phi = _evaluate(graph, mu, total, side)
        return (phi, len(side), tuple(sorted(_sort_key(v) for v in side)),
                weight, demand)

    scored = sorted({(rank(c), c) for c in refined}, key=lambda item: item[0])
    (phi, _, _, weight, demand), side = scored[0]
    return SparsestCutResult(
        side=side,
        weight=weight,
        demand=demand,
        sparsity=phi,
        method="gh-sweep" + (f"+local{trials}" if trials else ""),
        candidates=len(refined),
    )


def sparsest_kernel(graph: Graph, *, upper: float,
                    sizes: Optional[Mapping] = None):
    """Contract edges no sparsest cut below ``upper`` can cross.

    Any cut separating ``u`` from ``v`` pays at least ``w(u, v)`` and
    its demand is at most ``(mu(V) / 2)^2``, so its sparsity is at
    least ``w(u, v) / (mu(V)^2 / 4)``.  If that exceeds ``upper`` — the
    sparsity of a cut we already hold — the optimum never separates
    ``u`` and ``v`` and the edge can be contracted.  Iterates to a
    fixpoint because merged parallel edges get heavier.

    Returns ``(kernel, kernel_sizes, blocks)`` where ``blocks`` maps
    each kernel vertex to the frozenset of original vertices it
    absorbs; lift a kernel-side answer with their union.  The optimum
    sparsity of ``kernel`` (under ``kernel_sizes``) equals the original
    optimum whenever ``upper`` is attained by some real cut.
    """
    mu = _size_map(graph, sizes)
    total = float(sum(mu.values()))
    threshold = float(upper) * (total * total) / 4.0

    current = graph
    blocks = {v: frozenset([v]) for v in graph.vertices()}
    while True:
        parent = {v: v for v in current.vertices()}

        def find(v):
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        merged = False
        for u, v, w in current.edges():
            if w > threshold:
                ru, rv = find(u), find(v)
                if ru != rv:
                    parent[rv] = ru
                    merged = True
        if not merged:
            break
        rep = {v: find(v) for v in current.vertices()}
        current, qblocks = current.quotient(rep)
        blocks = {
            root: frozenset().union(*(blocks[m] for m in members))
            for root, members in qblocks.items()
        }
    kernel_sizes = {
        v: sum(mu[orig] for orig in blocks[v]) for v in current.vertices()
    }
    return current, kernel_sizes, blocks


def lift_side(side: Iterable, blocks: Mapping) -> frozenset:
    """Expand a kernel-side answer back to original vertices."""
    out: set = set()
    for v in side:
        out.update(blocks[v])
    return frozenset(out)
