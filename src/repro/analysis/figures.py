"""Structural reproduction of the paper's Figures 1–3 (experiment E8).

The paper's figures are illustrative, not measured:

* **Figure 1** — heavy-light decomposition of an example tree, vertices
  annotated with subtree sizes, heavy edges highlighted;
* **Figure 2** — the meta-tree obtained by contracting the heavy paths
  of the same tree;
* **Figure 3** — an MST fragment with per-edge contraction times and
  the time intervals of edges w.r.t. a vertex ``v`` with
  ``ldr_time(v) = 2``.

Reproducing them means: build the same structures with the library and
render them (ASCII), asserting the structural claims each figure makes
(heavy paths partition the tree; the meta-tree is the contraction; the
intervals are exactly what Lemma 13 computes).  The figure-1 tree is
reverse-engineered up to isomorphism (see workloads.trees).
"""

from __future__ import annotations

from typing import Hashable

from ..core.intervals import edge_intervals
from ..core.keys import ContractionKeys
from ..core.ldr import build_level_structure
from ..graph import Graph
from ..trees.heavy_light import HeavyLight, heavy_light_decomposition
from ..trees.low_depth import low_depth_decomposition
from ..trees.meta_tree import MetaTree, build_meta_tree
from ..trees.rooted import RootedTree, root_tree
from ..workloads.trees import paper_figure1_tree

Vertex = Hashable


def render_figure1(tree: RootedTree | None = None) -> str:
    """Figure 1: the tree with subtree sizes, heavy edges marked ``=``."""
    if tree is None:
        vs, es = paper_figure1_tree()
        tree = root_tree(vs, es)
    hl = heavy_light_decomposition(tree)
    lines = ["Figure 1 — heavy-light decomposition (= heavy edge, - light edge)"]

    def walk(v: Vertex, prefix: str, tag: str) -> None:
        size = tree.subtree_size[v]
        lines.append(f"{prefix}{tag}{v} [size={size}]")
        kids = sorted(
            tree.children[v],
            key=lambda c: (not hl.is_heavy_edge(c, v), str(c)),
        )
        for i, c in enumerate(kids):
            last = i == len(kids) - 1
            edge = "==" if hl.is_heavy_edge(c, v) else "--"
            walk(c, prefix + ("   " if last else "|  "), f"+{edge} ")

    walk(tree.root, "", "")
    lines.append("")
    lines.append("heavy paths (top-down): ")
    for m, path in enumerate(hl.paths):
        lines.append(f"  P{m}: " + " = ".join(str(v) for v in path))
    return "\n".join(lines)


def render_figure2(tree: RootedTree | None = None) -> str:
    """Figure 2: the meta-tree of the same tree."""
    if tree is None:
        vs, es = paper_figure1_tree()
        tree = root_tree(vs, es)
    hl = heavy_light_decomposition(tree)
    meta = build_meta_tree(hl)
    lines = ["Figure 2 — meta tree (heavy paths contracted)"]

    def walk(m: int, prefix: str, tag: str) -> None:
        path = meta.meta_path(m)
        label = "{" + ",".join(str(v) for v in path) + "}"
        lines.append(f"{prefix}{tag}M{m} {label}")
        for i, c in enumerate(sorted(meta.children[m])):
            last = i == len(meta.children[m]) - 1
            walk(c, prefix + ("   " if last else "|  "), "+- ")

    walk(meta.root, "", "")
    lines.append("")
    lines.append(f"meta vertices: {meta.num_meta_vertices}")
    return "\n".join(lines)


def figure3_instance() -> tuple[Graph, ContractionKeys, Vertex]:
    """A small weighted instance in the spirit of Figure 3.

    Figure 3 shows an MST whose edges carry contraction times 1..6 and
    a designated vertex ``v`` with ``ldr_time(v) = 2``; the dotted
    non-tree edges have time intervals w.r.t. ``v`` contained in
    ``[0, 2]``.  We build a graph achieving exactly that shape.
    """
    g = Graph(vertices=range(7))
    # tree edges (times 1..6 by construction below)
    tree_edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
    non_tree = [(0, 2), (1, 3), (0, 6)]
    for u, v in tree_edges + non_tree:
        g.add_edge(u, v, 1.0)
    key: dict = {}
    for t, (u, v) in enumerate(tree_edges, start=1):
        key[(u, v)] = t
        key[(v, u)] = t
    for t, (u, v) in enumerate(non_tree, start=len(tree_edges) + 1):
        key[(u, v)] = t + 10  # non-tree edges contract late
        key[(v, u)] = t + 10
    keys = ContractionKeys(key=key, max_key=max(key.values()), key_space=7**3)
    return g, keys, 2  # the designated vertex


def render_figure3() -> str:
    """Figure 3: time intervals of edges w.r.t. a designated vertex."""
    g, keys, v = figure3_instance()
    mst_edges = [(u, w) for u, w, _ in g.edges() if keys.of(u, w) <= 6]
    decomp = low_depth_decomposition(
        g.vertices(), mst_edges
    )
    lines = [
        "Figure 3 — contraction-time intervals with respect to a vertex",
        f"designated vertex: {v} (label {decomp.label[v]})",
        "tree edges with times: "
        + ", ".join(f"{u}-{w}@{keys.of(u, w)}" for u, w in mst_edges),
    ]
    level = decomp.label[v]
    struct = build_level_structure(
        decomp, keys, level, max_tree_key=6
    )
    if v in struct.ldr_time:
        lines.append(f"ldr_time({v}) = {struct.ldr_time[v]}")
        grouped = edge_intervals(g, struct)
        for iv in sorted(grouped.get(v, []), key=lambda i: (i.start, i.end)):
            lines.append(
                f"  interval [{iv.start}, {iv.end}] weight {iv.weight:g}"
            )
    else:
        lines.append(f"vertex {v} leads no bag at its level (degenerate draw)")
    return "\n".join(lines)


def render_all_figures() -> str:
    return "\n\n".join(
        [render_figure1(), render_figure2(), render_figure3()]
    )
