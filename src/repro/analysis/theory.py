"""Predicted curves and envelopes from the paper's theorems.

Each function returns the theoretical quantity an experiment compares
its measurements against — with explicit constants, because "O(...)"
cannot be measured.  Constants are chosen once, documented here, and
asserted by the test suite; EXPERIMENTS.md reports measured/envelope
ratios so drift is visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def loglog_rounds_envelope(n: int, eps: float, *, per_level: int = 12) -> float:
    """Theorem 1 envelope: AMPC rounds <= per_level * (log log n + O(1/eps)).

    ``per_level`` bounds the constant number of rounds one recursion
    level costs (MST + decomposition + level tuples + bookkeeping, each
    ``ceil(1/eps)`` rounds plus small change).
    """
    loglog = math.log2(max(2.0, math.log2(max(4, n))))
    return per_level * (3 * loglog + 3.0 / eps + 4)


def mpc_rounds_prediction(n: int, *, level_constant: int = 2) -> float:
    """G&N MPC model: ~ level_constant * log n * log log n."""
    logn = math.log2(max(2, n))
    loglog = math.log2(max(2.0, logn))
    return level_constant * logn * (loglog + 2)


def decomposition_height_envelope(n: int) -> int:
    """Lemma 3 / Observation 6: height <= (floor(log2 n) + 1)^2."""
    log = math.floor(math.log2(max(2, n))) + 1
    return log * log


def karger_preservation_lower_bound(t: float) -> float:
    """Lemma 1: contracting to n/t preserves a fixed min cut w.p. >= ~1/t^2.

    The precise Karger bound for contracting an n-vertex graph down to
    n/t vertices is ``binom(n/t, 2) / binom(n, 2) ~ 1/t^2``; we return
    the asymptotic form (the experiments use n >> t so the difference
    is in the noise).
    """
    if t < 1:
        raise ValueError("t must be >= 1")
    return 1.0 / (t * t)


def singleton_aware_lower_bound(t: float, eps: float) -> float:
    """Lemma 2: singleton-aware success probability >= 1/t^(1 - eps/3)."""
    if t < 1:
        raise ValueError("t must be >= 1")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    return 1.0 / (t ** (1.0 - eps / 3.0))


def karger_stein_success_bound(n: int) -> float:
    """Karger–Stein: one invocation succeeds w.p. Omega(1/log n)."""
    return 1.0 / max(1.0, math.log2(max(2, n)))


def mincut_approx_bound(eps: float) -> float:
    """Theorem 1 approximation factor."""
    return 2.0 + eps


def kcut_approx_bound(eps: float) -> float:
    """Theorem 2 approximation factor."""
    return 4.0 + eps


def sv_approx_bound(k: int) -> float:
    """Saran–Vazirani factor (2 - 2/k)."""
    if k < 2:
        raise ValueError("k must be >= 2")
    return 2.0 - 2.0 / k


def local_memory_envelope(
    n: int, eps: float, *, m: int | None = None, constant: int = 8
) -> int:
    """Fully-scalable local memory: constant * N^eps words (+ floor).

    ``N = n + m`` is the input size; ``m`` defaults to ``n`` matching
    :class:`~repro.ampc.config.AMPCConfig`.
    """
    big_n = n + (m if m is not None else n)
    return max(64, constant * math.ceil(big_n**eps))


def total_space_envelope(n: int, m: int, *, constant: int = 16) -> int:
    """Theorem 3 total space: constant * (n + m) * log^2 n words."""
    logn = max(1.0, math.log2(max(2, n)))
    return math.ceil(constant * (n + m) * logn * logn)


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of measurements against a model curve."""

    scale: float
    intercept: float
    residual: float

    def predict(self, x: float) -> float:
        return self.scale * x + self.intercept


def fit_against(xs: list[float], ys: list[float]) -> FitResult:
    """Fit ``y ~ a*x + b``; used to check measured-rounds *shape*.

    E.g. pass ``x = log log n`` and measured AMPC rounds: a good
    Theorem-1 reproduction gives a small residual and a modest ``a``.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need >= 2 paired points")
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate x values")
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    a = sxy / sxx
    b = my - a * mx
    residual = math.sqrt(
        sum((y - (a * x + b)) ** 2 for x, y in zip(xs, ys)) / n
    )
    return FitResult(scale=a, intercept=b, residual=residual)


def loglog(n: int) -> float:
    """Convenience: log2 log2 n (clamped)."""
    return math.log2(max(2.0, math.log2(max(4, n))))
