"""Dinic's max-flow / s-t min-cut (from scratch).

Substrate for Gomory–Hu trees (Definition 8), which Theorem 2's proof
leans on and which E5 uses both as the Saran–Vazirani comparator and as
a k-cut quality reference.  Works on the same undirected weighted
:class:`~repro.graph.Graph`; every undirected edge becomes a pair of
directed residual arcs of the full capacity each (the standard
undirected reduction).

Differentially tested against ``networkx.maximum_flow``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from ..graph import Graph

Vertex = Hashable
_EPS = 1e-12


@dataclass
class FlowResult:
    """Max-flow value plus the min-cut side containing the source."""

    value: float
    source_side: frozenset


class DinicSolver:
    """Reusable solver over a fixed graph (rebuilds residuals per query)."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._vertices = graph.vertices()
        self._vid = {v: i for i, v in enumerate(self._vertices)}
        # CSR-ish arc storage: to[], cap[], head/next adjacency.
        self._arc_to: list[int] = []
        self._arc_cap_template: list[float] = []
        self._head: list[int] = [-1] * len(self._vertices)
        self._next: list[int] = []
        for u, v, w in graph.edges():
            self._add_pair(self._vid[u], self._vid[v], w)

    def _add_pair(self, iu: int, iv: int, cap: float) -> None:
        for a, b in ((iu, iv), (iv, iu)):
            self._arc_to.append(b)
            self._arc_cap_template.append(cap)  # undirected: both full
            self._next.append(self._head[a])
            self._head[a] = len(self._arc_to) - 1

    # ------------------------------------------------------------------
    def max_flow(self, s: Vertex, t: Vertex) -> FlowResult:
        """Maximum s-t flow and the source side of a minimum s-t cut."""
        if s == t:
            raise ValueError("source equals sink")
        n = len(self._vertices)
        si, ti = self._vid[s], self._vid[t]
        cap = list(self._arc_cap_template)
        total = 0.0
        level = [0] * n
        it = [0] * n

        def bfs() -> bool:
            for i in range(n):
                level[i] = -1
            level[si] = 0
            dq = deque([si])
            while dq:
                v = dq.popleft()
                a = self._head[v]
                while a != -1:
                    if cap[a] > _EPS and level[self._arc_to[a]] < 0:
                        level[self._arc_to[a]] = level[v] + 1
                        dq.append(self._arc_to[a])
                    a = self._next[a]
            return level[ti] >= 0

        def dfs(v: int, pushed: float) -> float:
            if v == ti:
                return pushed
            while it[v] != -1:
                a = it[v]
                u = self._arc_to[a]
                if cap[a] > _EPS and level[u] == level[v] + 1:
                    got = dfs(u, min(pushed, cap[a]))
                    if got > _EPS:
                        cap[a] -= got
                        cap[a ^ 1] += got
                        return got
                it[v] = self._next[a]
            return 0.0

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * n + 100))
        try:
            while bfs():
                for i in range(n):
                    it[i] = self._head[i]
                while True:
                    pushed = dfs(si, float("inf"))
                    if pushed <= _EPS:
                        break
                    total += pushed
        finally:
            sys.setrecursionlimit(old_limit)

        # Source side of the min cut: vertices reachable in the residual.
        seen = [False] * n
        seen[si] = True
        dq = deque([si])
        while dq:
            v = dq.popleft()
            a = self._head[v]
            while a != -1:
                u = self._arc_to[a]
                if cap[a] > _EPS and not seen[u]:
                    seen[u] = True
                    dq.append(u)
                a = self._next[a]
        side = frozenset(
            self._vertices[i] for i in range(n) if seen[i]
        )
        return FlowResult(value=total, source_side=side)


def min_st_cut(graph: Graph, s: Vertex, t: Vertex) -> FlowResult:
    """One-shot s-t min cut."""
    return DinicSolver(graph).max_flow(s, t)
