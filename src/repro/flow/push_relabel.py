"""Push–relabel max-flow / s-t min-cut (Goldberg–Tarjan, from scratch).

A second, independently-derived max-flow engine.  Two reasons it earns
its place next to :mod:`repro.flow.dinic`:

* **differential safety** — Gomory–Hu trees (and through them the
  Theorem 2 k-cut analysis) sit on top of ``n - 1`` max-flow calls; a
  bug in the flow engine silently corrupts every downstream quality
  number.  Two engines with disjoint failure modes, cross-checked by
  property tests, make that failure loud.
* **worst-case insurance** — Dinic's DFS recursion depth scales with
  the augmenting-path length; push–relabel is iterative and its
  ``O(V² √E)`` bound (FIFO + gap relabeling here) does not depend on
  path structure, which matters on the long-path workloads the tree
  benches favour.

Implementation: FIFO vertex selection, height array with the **gap
heuristic** (when a height level empties, everything above it on the
source side is lifted to ``n + 1``), arc mirroring identical to the
Dinic module so both engines consume the same undirected reduction.

The returned :class:`~repro.flow.dinic.FlowResult` mirrors Dinic's:
flow value plus the source side of a minimum cut (computed by residual
reachability, *not* from heights, so the two engines' sides are
directly comparable).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from ..graph import Graph
from .dinic import FlowResult

Vertex = Hashable
_EPS = 1e-12


class PushRelabelSolver:
    """Reusable FIFO push–relabel solver over a fixed graph."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._vertices = graph.vertices()
        self._vid = {v: i for i, v in enumerate(self._vertices)}
        self._arc_to: list[int] = []
        self._arc_cap_template: list[float] = []
        self._adj: list[list[int]] = [[] for _ in self._vertices]
        for u, v, w in graph.edges():
            self._add_pair(self._vid[u], self._vid[v], w)

    def _add_pair(self, iu: int, iv: int, cap: float) -> None:
        for a, b in ((iu, iv), (iv, iu)):
            self._adj[a].append(len(self._arc_to))
            self._arc_to.append(b)
            self._arc_cap_template.append(cap)  # undirected: both full

    # ------------------------------------------------------------------
    def max_flow(self, s: Vertex, t: Vertex) -> FlowResult:
        """Maximum s-t flow and the source side of a minimum s-t cut."""
        if s == t:
            raise ValueError("source equals sink")
        n = len(self._vertices)
        si, ti = self._vid[s], self._vid[t]
        cap = list(self._arc_cap_template)
        height = [0] * n
        excess = [0.0] * n
        cur = [0] * n  # current-arc pointers
        count = [0] * (2 * n + 1)  # height histogram for the gap heuristic
        active: deque[int] = deque()
        in_queue = [False] * n

        def push(a: int, v: int) -> None:
            u = self._arc_to[a]
            delta = min(excess[v], cap[a])
            cap[a] -= delta
            cap[a ^ 1] += delta
            excess[v] -= delta
            excess[u] += delta
            if u not in (si, ti) and not in_queue[u] and excess[u] > _EPS:
                in_queue[u] = True
                active.append(u)

        # Initialise: source at height n, saturate its out-arcs.
        height[si] = n
        count[0] = n - 1
        count[n] += 1
        excess[si] = float("inf")
        for a in self._adj[si]:
            if cap[a] > _EPS:
                push(a, si)
        excess[si] = 0.0

        while active:
            v = active.popleft()
            in_queue[v] = False
            while excess[v] > _EPS:
                if cur[v] == len(self._adj[v]):
                    # Relabel v to 1 + min reachable height.
                    old = height[v]
                    new_h = 2 * n
                    for a in self._adj[v]:
                        if cap[a] > _EPS:
                            new_h = min(new_h, height[self._arc_to[a]] + 1)
                    count[old] -= 1
                    if count[old] == 0 and 0 < old < n:
                        # Gap: no vertex left at height `old` — everything
                        # strictly above it (below n) is cut off from t.
                        for u in range(n):
                            if old < height[u] < n and u != si:
                                count[height[u]] -= 1
                                height[u] = n + 1
                                count[n + 1] += 1
                    height[v] = new_h
                    count[new_h] += 1
                    cur[v] = 0
                    if new_h >= 2 * n:
                        break
                    continue
                a = self._adj[v][cur[v]]
                u = self._arc_to[a]
                if cap[a] > _EPS and height[v] == height[u] + 1:
                    push(a, v)
                else:
                    cur[v] += 1

        # Source side: residual reachability from s (mirrors Dinic).
        seen = [False] * n
        seen[si] = True
        dq = deque([si])
        while dq:
            v = dq.popleft()
            for a in self._adj[v]:
                u = self._arc_to[a]
                if cap[a] > _EPS and not seen[u]:
                    seen[u] = True
                    dq.append(u)
        side = frozenset(self._vertices[i] for i in range(n) if seen[i])
        value = float(excess[ti])
        return FlowResult(value=value, source_side=side)


def min_st_cut_push_relabel(graph: Graph, s: Vertex, t: Vertex) -> FlowResult:
    """One-shot s-t min cut with the push–relabel engine."""
    return PushRelabelSolver(graph).max_flow(s, t)
