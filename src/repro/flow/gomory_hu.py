"""Gomory–Hu trees (Definition 8) via Gusfield's algorithm.

A Gomory–Hu tree of ``G`` is a weighted tree on ``V(G)`` in which, for
every pair ``s, t``, the minimum edge weight on the tree path equals
the ``s``-``t`` min cut of ``G``.  Theorem 2's proof orders the tree's
edges by weight and compares APX-SPLIT's greedy choices against the
prefix of that order (Observation 10); E5 reuses exactly that
machinery as a quality reference.

Gusfield's variant needs ``n - 1`` max-flow calls and no vertex
contraction; it returns a *flow-equivalent* tree (same pairwise cut
values — the property Definition 8 demands).  Each tree edge also
records the concrete side found by its max-flow call, so the
Saran–Vazirani union-of-cuts construction can be materialised.

Property-tested: min edge on tree path == direct Dinic min cut for all
pairs on small random graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..graph import Graph
from .dinic import DinicSolver

Vertex = Hashable


@dataclass(frozen=True)
class GomoryHuEdge:
    """One tree edge: child—parent with the cut value and child side."""

    child: Vertex
    parent: Vertex
    weight: float
    child_side: frozenset


@dataclass
class GomoryHuTree:
    """The tree plus query helpers."""

    graph: Graph
    edges: tuple[GomoryHuEdge, ...]

    def min_cut_between(self, s: Vertex, t: Vertex) -> float:
        """Min s-t cut = minimum edge weight on the tree path."""
        if s == t:
            raise ValueError("s == t")
        parent = {e.child: (e.parent, e.weight) for e in self.edges}
        # climb both to the root collecting path minima
        def path_to_root(v: Vertex) -> list[tuple[Vertex, float]]:
            out = [(v, float("inf"))]
            while v in parent:
                v, w = parent[v][0], parent[v][1]
                out.append((v, w))
            return out

        ps = path_to_root(s)
        pt = path_to_root(t)
        on_s = {v: i for i, (v, _) in enumerate(ps)}
        best_t = float("inf")
        meet = None
        for v, w in pt:
            best_t = min(best_t, w)
            if v in on_s:
                meet = v
                break
        assert meet is not None
        best_s = float("inf")
        for v, w in ps:
            # ``w`` is the weight of the edge *entering* ``v`` from the
            # s side, which lies on the s->meet path even when v==meet.
            best_s = min(best_s, w)
            if v == meet:
                break
        return min(best_s, best_t)

    def path_edges(self, s: Vertex, t: Vertex) -> list[GomoryHuEdge]:
        """The tree edges on the s–t path (min label = min s–t cut).

        :meth:`min_cut_between` only needs the running minimum; this
        returns the concrete :class:`GomoryHuEdge` records so callers
        can inspect the argmin edges' recorded cut sides — the serving
        layer's incremental oracle certifies retained answers against
        them after graph mutations (:mod:`repro.service.oracle`).
        """
        if s == t:
            raise ValueError("s == t")
        up = {e.child: e for e in self.edges}
        path_s: list[GomoryHuEdge] = []
        v = s
        seen = {v: 0}
        while v in up:
            path_s.append(up[v])
            v = up[v].parent
            seen[v] = len(path_s)
        path_t: list[GomoryHuEdge] = []
        v = t
        while v not in seen:
            path_t.append(up[v])
            v = up[v].parent
        return path_s[: seen[v]] + path_t

    def edges_by_weight(self) -> list[GomoryHuEdge]:
        """Tree edges sorted by non-decreasing weight (Theorem 2's order)."""
        return sorted(self.edges, key=lambda e: e.weight)

    def all_pairs_min_cuts(self) -> dict:
        """Every pairwise min-cut value in one pass: ``{u: {v: value}}``.

        One rooted DFS per vertex carries the running path minimum, so
        the full ``n(n-1)/2`` matrix costs ``O(n^2)`` tree-edge visits
        — the amortisation `/gomoryhu` serves (versus ``n - 1``
        separate ``min_cut_between`` walks, or ``n - 1`` max-flows for
        a cold client asking pair by pair).
        """
        adjacency: dict[Vertex, list[tuple[Vertex, float]]] = {}
        for e in self.edges:
            adjacency.setdefault(e.child, []).append((e.parent, e.weight))
            adjacency.setdefault(e.parent, []).append((e.child, e.weight))
        out: dict[Vertex, dict[Vertex, float]] = {
            v: {} for v in adjacency
        }
        for s in adjacency:
            stack = [(s, float("inf"))]
            seen = {s}
            while stack:
                v, limit = stack.pop()
                for nbr, w in adjacency[v]:
                    if nbr in seen:
                        continue
                    seen.add(nbr)
                    value = min(limit, w)
                    out[s][nbr] = value
                    stack.append((nbr, value))
        return out

    def min_cut_value(self) -> float:
        """Global min cut = lightest tree edge."""
        return min(e.weight for e in self.edges)

    def kcut_upper_bound(self, k: int) -> float:
        """Saran–Vazirani: union of the k-1 lightest GH cuts.

        Returns the total weight of edges removed by unioning the
        ``k-1`` lightest tree edges' recorded sides — a
        ``(2 - 2/k)``-approximation of Min k-Cut (their Theorem 6 /
        paper Observation 10 + Theorem 6).
        """
        if not 2 <= k <= self.graph.num_vertices:
            raise ValueError("need 2 <= k <= n")
        chosen = self.edges_by_weight()[: k - 1]
        removed: set[tuple[Vertex, Vertex]] = set()
        for e in chosen:
            side = e.child_side
            for u, v, _ in self.graph.edges():
                if (u in side) != (v in side):
                    removed.add((u, v))
        return float(
            sum(
                w
                for u, v, w in self.graph.edges()
                if (u, v) in removed or (v, u) in removed
            )
        )


def gomory_hu_tree(graph: Graph, *, engine: str = "dinic") -> GomoryHuTree:
    """Build the (flow-equivalent) Gomory–Hu tree with Gusfield's method.

    ``engine`` selects the max-flow implementation: ``"dinic"``
    (default) or ``"push_relabel"`` — two independently-derived solvers
    whose agreement the flow tests cross-check, so a flow bug cannot
    silently skew the k-cut quality numbers built on this tree.
    """
    vertices = graph.vertices()
    if len(vertices) < 2:
        raise ValueError("need n >= 2")
    if len(graph.components()) != 1:
        raise ValueError("graph must be connected")
    if engine == "dinic":
        solver = DinicSolver(graph)
    elif engine == "push_relabel":
        from .push_relabel import PushRelabelSolver

        solver = PushRelabelSolver(graph)
    else:
        raise ValueError(f"unknown flow engine {engine!r}")
    root = vertices[0]
    parent: dict[Vertex, Vertex] = {v: root for v in vertices[1:]}
    weight: dict[Vertex, float] = {}
    side_of: dict[Vertex, frozenset] = {}
    for i, v in enumerate(vertices[1:], start=1):
        res = solver.max_flow(v, parent[v])
        weight[v] = res.value
        side_of[v] = res.source_side
        for u in vertices[i + 1 :]:
            if parent[u] == parent[v] and u in res.source_side:
                parent[u] = v
    edges = tuple(
        GomoryHuEdge(
            child=v, parent=parent[v], weight=weight[v], child_side=side_of[v]
        )
        for v in vertices[1:]
    )
    return GomoryHuTree(graph=graph, edges=edges)


def repair_gomory_hu(
    tree: GomoryHuTree,
    graph: Graph,
    changed: Iterable[tuple[Vertex, Vertex, float, float]],
    *,
    engine: str = "dinic",
    max_flows: int | None = None,
) -> tuple[GomoryHuTree, tuple[Vertex, ...]] | None:
    """Localized Gomory–Hu repair after a mixed-sign weight delta.

    ``tree`` is a Gusfield tree whose edge labels were exact min-cut
    values of some earlier graph state; ``changed`` lists the **net**
    weight changes ``(u, v, old, new)`` since that state (``0.0`` means
    the pair was / is absent).  ``graph`` is the current (mutated)
    graph — it must be connected and have the same vertex set as the
    tree.  Returns ``(repaired_tree, repaired_children)`` with every
    label an exact min-cut value of ``graph``, or ``None`` when the
    repair would not beat a full rebuild (see ``max_flows``).

    Which edges can be kept verbatim?  Each tree edge records the
    concrete cut side its max-flow found (``child_side``).  Let ``D``
    be the decreased pairs and ``L = min over D of the *new* s–t
    min-cut value`` (one max-flow per decreased pair; ``+inf`` when
    ``D`` is empty).  A tree edge ``e`` is kept iff

    * no net pair crosses ``e.child_side`` (its recorded cut's weight
      is unchanged — an upper bound at the old label), **and**
    * ``e.weight <= L`` (the *L-guard*, the lower bound): any
      child–parent cut either crosses no net pair (weight still
      ``>= e.weight`` by the old tree's exactness), crosses a
      decreased pair ``(u, v)`` (then it separates ``u`` from ``v``,
      so its new weight is ``>= lambda_new(u, v) >= L >= e.weight``),
      or crosses only increases (new weight ``>=`` old ``>=
      e.weight``).

    Without the L-guard, keeping every uncrossed edge is **unsound**:
    an uncrossed heavy edge's label can go stale when a decrease
    elsewhere opens a cheaper child–parent cut that crosses the
    decreased pair.  Every other edge is recomputed with one max-flow
    on ``graph``.  Kept edges keep their recorded side verbatim, so
    repairs compose: sides only change when their edge is recomputed.

    The repaired tree is *flow-equivalent light*: every label is an
    exact min-cut value of its own (child, parent) pair, which makes
    the tree-path minimum a lower bound for any ``s``–``t`` query (the
    min-cut triangle inequality) and the minimum label the exact
    global min cut.  The matching upper bound needs a per-query
    certificate — some argmin path edge whose recorded side separates
    ``s`` from ``t`` — exactly the check
    :meth:`repro.service.oracle.CutOracle.st_min_cut` already applies
    to masked trees.

    ``max_flows`` caps the total flow budget (the L-flows plus the
    recomputed edges); when the repair would exceed it the function
    returns ``None`` and the caller should rebuild instead.
    """
    net = [(u, v, old, new) for u, v, old, new in changed if old != new]
    if len(graph.components()) != 1:
        raise ValueError("graph must be connected")
    tree_vertices = {e.child for e in tree.edges}
    tree_vertices.update(e.parent for e in tree.edges)
    if tree_vertices != set(graph.vertices()):
        return None
    if not net:
        return GomoryHuTree(graph=graph, edges=tree.edges), ()
    decreased = [(u, v) for u, v, old, new in net if new < old]
    if max_flows is not None and len(decreased) > max_flows:
        return None

    if engine == "dinic":
        solver = DinicSolver(graph)
    elif engine == "push_relabel":
        from .push_relabel import PushRelabelSolver

        solver = PushRelabelSolver(graph)
    else:
        raise ValueError(f"unknown flow engine {engine!r}")

    # One max-flow per decreased pair establishes L; the flow results
    # are kept so a recomputed tree edge whose endpoints *are* a
    # decreased pair reuses its L-flow instead of paying a second one.
    limit = float("inf")
    dec_flows: dict[frozenset, object] = {}
    for u, v in decreased:
        res = solver.max_flow(u, v)
        dec_flows[frozenset((u, v))] = (u, res)
        limit = min(limit, res.value)

    def crossed(side: frozenset) -> bool:
        return any((u in side) != (v in side) for u, v, _, _ in net)

    recompute = tuple(
        e.child
        for e in tree.edges
        if e.weight > limit or crossed(e.child_side)
    )
    todo = set(recompute)
    fresh_flows = sum(
        1
        for e in tree.edges
        if e.child in todo
        and frozenset((e.child, e.parent)) not in dec_flows
    )
    if max_flows is not None and len(decreased) + fresh_flows > max_flows:
        return None

    all_vertices = frozenset(graph.vertices())
    edges = []
    for e in tree.edges:
        if e.child in todo:
            reuse = dec_flows.get(frozenset((e.child, e.parent)))
            if reuse is not None:
                source, res = reuse
                side = (
                    res.source_side
                    if source == e.child
                    else all_vertices - res.source_side
                )
            else:
                res = solver.max_flow(e.child, e.parent)
                side = res.source_side
            edges.append(
                GomoryHuEdge(
                    child=e.child,
                    parent=e.parent,
                    weight=res.value,
                    child_side=side,
                )
            )
        else:
            edges.append(e)
    return GomoryHuTree(graph=graph, edges=tuple(edges)), recompute


def gomory_hu_tree_contracted(
    graph: Graph, *, engine: str = "dinic"
) -> GomoryHuTree:
    """The original Gomory–Hu construction (with vertex contraction).

    Gusfield's variant (:func:`gomory_hu_tree`) runs every max-flow on
    the *full* graph; the 1961 construction instead contracts, for each
    split, every already-separated subtree to a single vertex, so its
    flows run on shrinking graphs.  Both satisfy Definition 8; they may
    return *different* trees (min cuts are not unique), which makes
    their agreement on all n(n-1)/2 pairwise cut values a strong
    differential test of the whole flow stack — and on large dense
    inputs the contracted variant is the faster of the two.

    Implementation: the supernode-splitting loop from Gomory & Hu's
    paper.  Each tree edge records the concrete original-vertex side of
    its defining cut, so ``kcut_upper_bound`` works identically.
    """
    vertices = graph.vertices()
    if len(vertices) < 2:
        raise ValueError("need n >= 2")
    if len(graph.components()) != 1:
        raise ValueError("graph must be connected")
    if engine == "dinic":
        solver_cls = DinicSolver
    elif engine == "push_relabel":
        from .push_relabel import PushRelabelSolver

        solver_cls = PushRelabelSolver
    else:
        raise ValueError(f"unknown flow engine {engine!r}")

    # Tree over supernodes: nodes[i] is a set of original vertices.
    nodes: list[set] = [set(vertices)]
    adj: dict[int, dict[int, float]] = {0: {}}
    # side_of[(i, j)]: original vertices on j's side of tree edge {i, j}.
    side_of: dict[tuple[int, int], frozenset] = {}

    while True:
        split = next((i for i, s in enumerate(nodes) if len(s) > 1), None)
        if split is None:
            break
        members = sorted(nodes[split], key=str)
        s, t = members[0], members[1]

        # Components of the tree minus `split`, each contracted to one
        # quotient vertex.
        comp_of: dict[int, int] = {}
        for start in adj[split]:
            if start in comp_of:
                continue
            comp_id = len(set(comp_of.values()))
            stack = [start]
            comp_of[start] = comp_id
            while stack:
                x = stack.pop()
                for y in adj[x]:
                    if y != split and y not in comp_of:
                        comp_of[y] = comp_of[x]
                        stack.append(y)
        rep: dict = {}
        for v in nodes[split]:
            rep[v] = v
        for node_idx, comp_id in comp_of.items():
            for v in nodes[node_idx]:
                rep[v] = ("component", comp_id)
        quotient, _ = graph.quotient(rep)

        res = solver_cls(quotient).max_flow(s, t)
        a_side = res.source_side  # quotient vertices, contains s

        # Split the supernode along the cut.
        s_a = {v for v in nodes[split] if v in a_side}
        s_b = nodes[split] - s_a
        new = len(nodes)
        nodes[split] = s_a
        nodes.append(s_b)
        adj[new] = {}
        # Original-vertex side of the new edge, on `new`'s (t's) side.
        b_vertices = frozenset(
            v for v in vertices if rep[v] not in a_side
        )

        # Reattach former neighbours by which side their contraction fell.
        for nbr in list(adj[split]):
            w = adj[split][nbr]
            stored = side_of.pop((split, nbr))
            stored_rev = side_of.pop((nbr, split))
            contracted = ("component", comp_of[nbr])
            if contracted not in a_side:
                del adj[split][nbr]
                del adj[nbr][split]
                adj[new][nbr] = w
                adj[nbr][new] = w
                side_of[(new, nbr)] = stored
                side_of[(nbr, new)] = stored_rev
            else:
                side_of[(split, nbr)] = stored
                side_of[(nbr, split)] = stored_rev
        adj[split][new] = res.value
        adj[new][split] = res.value
        side_of[(split, new)] = b_vertices
        side_of[(new, split)] = frozenset(vertices) - b_vertices

    # Root the singleton tree at vertices[0] and emit parent edges.
    only = {next(iter(s)): i for i, s in enumerate(nodes)}
    root_idx = only[vertices[0]]
    parent_edges: list[GomoryHuEdge] = []
    seen = {root_idx}
    stack = [root_idx]
    vertex_of = {i: next(iter(s)) for i, s in enumerate(nodes)}
    while stack:
        x = stack.pop()
        for y, w in adj[x].items():
            if y in seen:
                continue
            seen.add(y)
            stack.append(y)
            parent_edges.append(
                GomoryHuEdge(
                    child=vertex_of[y],
                    parent=vertex_of[x],
                    weight=w,
                    child_side=side_of[(x, y)],
                )
            )
    return GomoryHuTree(graph=graph, edges=tuple(parent_edges))
