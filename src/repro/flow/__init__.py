"""Max-flow substrate: Dinic, push–relabel, and Gomory–Hu trees."""

from .dinic import DinicSolver, FlowResult, min_st_cut
from .gomory_hu import (
    GomoryHuEdge,
    GomoryHuTree,
    gomory_hu_tree,
    gomory_hu_tree_contracted,
    repair_gomory_hu,
)
from .push_relabel import PushRelabelSolver, min_st_cut_push_relabel

__all__ = [
    "DinicSolver",
    "FlowResult",
    "GomoryHuEdge",
    "GomoryHuTree",
    "PushRelabelSolver",
    "gomory_hu_tree",
    "gomory_hu_tree_contracted",
    "min_st_cut",
    "min_st_cut_push_relabel",
    "repair_gomory_hu",
]
