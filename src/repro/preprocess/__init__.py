"""Exact kernelization in front of every cut solver.

The AMPC algorithms pay per-edge cost in every round, so shrinking the
input *before* Algorithm 1 runs is the highest-leverage speedup in the
stack — the algorithm-engineering move of Henzinger–Noe–Schulz–Strash's
"Practical Minimum Cut Algorithms" (VieCut) and Noe's thesis, where
exact reductions routinely shrink real graphs by 10–100x before any
flow or contraction work happens.

:func:`kernelize` applies a pipeline of **cut-preserving reductions**
and returns a :class:`CutKernel` that remembers how to lift any cut of
the reduced graph back to a cut of the original (side expansion
through the contraction map, weight re-evaluated on the original, so
reported weights are exact by construction).  See
:mod:`repro.preprocess.kernel` for the reduction catalogue and the
safety argument for each rule; :func:`solve_min_cut` wraps any
``Graph -> Cut`` solver behind the pipeline, and
:func:`kernelize_for_kcut` is the (smaller) k-cut-safe variant.

The serving layer caches kernels per ``(fingerprint, level)`` and,
after in-place graph mutations, calls :func:`refresh_kernel`
(:mod:`repro.preprocess.dynamic`) to re-run only the reductions whose
certificates the delta invalidated — each :class:`ReductionStep` now
records the local certificate it relied on — falling back to a lazy
rekernelization otherwise (see ``docs/ARCHITECTURE.md`` for the
request lifecycle).  :func:`revalidate_kernel` is the historical
wrapper around the same rules.
"""

from .dynamic import refresh_kernel
from .kernel import (
    LEVELS,
    CutKernel,
    KCutKernel,
    ReductionStep,
    kernelize,
    kernelize_for_kcut,
    revalidate_kernel,
    solve_min_cut,
    validate_level,
)

__all__ = [
    "LEVELS",
    "CutKernel",
    "KCutKernel",
    "ReductionStep",
    "kernelize",
    "kernelize_for_kcut",
    "refresh_kernel",
    "revalidate_kernel",
    "solve_min_cut",
    "validate_level",
]
