"""The kernelization pipeline: exact, composable, liftable reductions.

Every reduction below preserves the minimum cut *weight* of the input
exactly, provided candidate cuts recorded along the way are folded back
in at lift time (:meth:`CutKernel.lift` always folds).  The catalogue,
with the safety argument for each rule:

R1 — **parallel-edge canonicalization** (ingestion).  A bundle of
    parallel edges crosses a cut exactly as its total weight, so
    :class:`~repro.graph.graph.Graph` merges parallel edges by weight
    sum at ``add_edge`` time and rejects self-loops (they never cross a
    cut).  All file readers (:mod:`repro.graph.io`,
    :mod:`repro.graph.formats`) canonicalize identically — duplicate
    lines merge by sum, self-loops and zero-weight edges are dropped —
    so the kernel pipeline always starts from a canonical simple graph.

R2 — **connected-component split** (cheapest-component shortcut).  A
    disconnected graph has minimum cut 0: any single component against
    the rest crosses nothing.  The kernel marks itself *solved* with
    the smallest component as the witness side; no solver runs at all.
    (Isolated-vertex removal is the special case of a singleton
    component.)

R3 — **degree-one contraction**.  A vertex ``v`` whose kernel block
    meets the rest of the graph through a single neighbour ``u`` (edge
    weight ``w``) admits exactly one class of cuts separating it from
    ``u``, all of weight >= ``w``; the singleton ``{v}`` achieves ``w``
    and is recorded as a candidate.  Contracting ``v`` into ``u`` then
    loses only cuts dominated by that candidate — exact.

R4 — **heavy-edge contraction** (VieCut rule).  Let ``lambda_hat`` be
    the weight of the best *recorded candidate* cut (initialised and
    refreshed from the minimum-weighted-degree singleton — the
    Matula/NI estimate).  Any cut separating the endpoints of an edge
    of weight ``w >= lambda_hat`` weighs at least ``w >= lambda_hat``,
    which the candidate already matches, so contracting the edge
    preserves ``min(candidates, mincut(kernel)) = mincut(original)``.

R5 — **NI connectivity contraction** (aggressive).  The scan-first
    search of :func:`repro.graph.sparsify.ni_edge_starts` certifies
    endpoint connectivity ``lambda(u, v) >= r(e) + w(e)``; every cut
    separating ``u`` from ``v`` weighs at least that, so edges with
    ``r(e) + w(e) >= lambda_hat`` contract by the same argument as R4
    — strictly more powerful, at the cost of one scan per round.

R6 — **NI certificate** (aggressive, final).  Replace the kernel by
    its Nagamochi–Ibaraki certificate at ``k = min weighted degree``
    (:func:`repro.graph.sparsify.sparsify_preserving_min_cut`): every
    minimum cut survives with exact weight while total capacity drops
    to at most ``k (n - 1)``.  This pass *reweights* edges, so it runs
    last — the contraction rules above reason about original weights
    and would be unsound downstream of a reweighting.

Float caveat (same one :meth:`repro.graph.Graph.fingerprint` makes):
reductions compare weight *sums*, so on weights that are not exactly
representable in binary the preserved minimum can drift by an ulp.
Reported results are nonetheless always honest — ``lift`` re-evaluates
the returned partition against the *original* graph, so the reported
weight equals the recomputed ``delta(S)`` of the reported side by
construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

import numpy as np

from ..graph import Cut, Graph, KCut
from ..graph.sparsify import ni_edge_starts, sparsify_preserving_min_cut

Vertex = Hashable

#: the three pipeline levels ``repro-cut --preprocess`` exposes
LEVELS = ("off", "safe", "aggressive")


def validate_level(level: str) -> str:
    """Normalise/validate a preprocessing level name.

    >>> validate_level(" Safe ")
    'safe'
    >>> validate_level(None)
    'off'
    >>> validate_level("turbo")
    Traceback (most recent call last):
        ...
    ValueError: unknown preprocess level 'turbo'; expected one of ('off', 'safe', 'aggressive')
    """
    if level is None:
        return "off"
    name = str(level).strip().lower()
    if name not in LEVELS:
        raise ValueError(
            f"unknown preprocess level {level!r}; expected one of {LEVELS}"
        )
    return name


@dataclass(frozen=True)
class ReductionStep:
    """Accounting record for one reduction pass.

    ``certificate`` records the local fact the pass relied on (e.g.
    ``("disconnected", k)`` for the component split, the contracted
    ``(leaf, neighbour)`` pairs for degree-one pruning, the
    ``lambda_hat`` threshold for certified contraction) so the
    mutation path (:func:`repro.preprocess.dynamic.refresh_kernel`)
    can judge which reductions a delta invalidates.  It is
    deliberately excluded from :meth:`as_dict`: response payloads stay
    byte-stable whether a kernel was built cold or refreshed.
    """

    name: str
    vertices_removed: int
    edges_removed: int
    candidates_recorded: int
    detail: str = ""
    certificate: tuple = ()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "vertices_removed": self.vertices_removed,
            "edges_removed": self.edges_removed,
            "candidates_recorded": self.candidates_recorded,
            "detail": self.detail,
        }


class CutKernel:
    """A reduced graph plus the bookkeeping to lift cuts back.

    ``graph`` is the kernel; ``blocks`` maps each kernel vertex to the
    original vertices contracted into it (a partition of the original
    vertex set).  ``solved`` is set when the reductions alone determine
    the minimum cut (disconnected input, or a kernel collapsing below
    two vertices).  Candidate cuts recorded during reduction are always
    evaluated against the *original* graph and folded in by
    :meth:`lift`, which is what makes every rule exact.
    """

    def __init__(self, original: Graph, level: str):
        self.original = original
        self.level = level
        self.graph: Graph = original.copy()
        self.blocks: dict[Vertex, list[Vertex]] = {
            v: [v] for v in original.vertices()
        }
        self.steps: list[ReductionStep] = []
        self.solved: Cut | None = None
        self.candidates_recorded = 0
        self._best_candidate: Cut | None = None

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def _record_candidate(self, side: Iterable[Vertex]) -> Cut:
        """Record a candidate cut of the *original* graph (exact eval)."""
        cut = Cut.of(self.original, side)
        self.candidates_recorded += 1
        if self._best_candidate is None or cut.weight < self._best_candidate.weight:
            self._best_candidate = cut
        return cut

    @property
    def best_candidate(self) -> Cut | None:
        """Lightest candidate cut recorded by the reductions, if any."""
        return self._best_candidate

    @property
    def is_solved(self) -> bool:
        """True when no solver needs to run on the kernel at all."""
        return self.solved is not None or self.graph.num_vertices < 2

    # ------------------------------------------------------------------
    # Lifting
    # ------------------------------------------------------------------
    def lift_side(self, side: Iterable[Vertex]) -> frozenset:
        """Pure side expansion: kernel vertices -> original vertices."""
        out: set = set()
        for rep in side:
            try:
                out.update(self.blocks[rep])
            except KeyError:
                raise KeyError(f"vertex {rep!r} is not a kernel vertex") from None
        return frozenset(out)

    def lift(self, side: Iterable[Vertex]) -> Cut:
        """Lift a kernel cut to an exact cut of the original graph.

        Expands the side through the contraction map, re-evaluates its
        weight on the original graph, and folds in the best recorded
        candidate — the folding is load-bearing: when the minimum cut
        was consumed by a reduction (e.g. the min-degree singleton when
        ``delta = lambda``), the candidate *is* the minimum cut.
        """
        lifted = Cut.of(self.original, self.lift_side(side))
        best = self._best_candidate
        if best is not None and best.weight < lifted.weight:
            return best
        return lifted

    def trivial_cut(self) -> Cut:
        """The answer when :attr:`is_solved` — raises if undefined."""
        if self.solved is not None:
            return self.solved
        if self._best_candidate is not None:
            return self._best_candidate
        raise ValueError("min cut needs n >= 2")

    def solve(self, solver: Callable[[Graph], object]) -> Cut:
        """Run ``solver`` on the kernel and lift its cut to the original.

        ``solver`` takes a connected graph with ``n >= 2`` and returns
        either a :class:`~repro.graph.Cut` or an object with a ``cut``
        attribute (every result type in this library).  Solved kernels
        (disconnected input, fully collapsed kernel) never invoke it.
        """
        if self.is_solved:
            return self.trivial_cut()
        res = solver(self.graph)
        cut = res if isinstance(res, Cut) else res.cut
        return self.lift(cut.side)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able summary (kernel line of query responses / CLI)."""
        n0, m0 = self.original.num_vertices, self.original.num_edges
        nk, mk = self.graph.num_vertices, self.graph.num_edges
        return {
            "level": self.level,
            "original_vertices": n0,
            "original_edges": m0,
            "kernel_vertices": nk,
            "kernel_edges": mk,
            "vertex_shrink": n0 / max(1, nk),
            "edge_shrink": m0 / max(1, mk),
            "solved": self.is_solved,
            "solved_weight": self.solved.weight if self.solved is not None else None,
            "candidates_recorded": self.candidates_recorded,
            "best_candidate_weight": (
                self._best_candidate.weight
                if self._best_candidate is not None
                else None
            ),
            "steps": [s.as_dict() for s in self.steps],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CutKernel(level={self.level!r}, "
            f"{self.original.num_vertices}->{self.graph.num_vertices} vertices, "
            f"{self.original.num_edges}->{self.graph.num_edges} edges, "
            f"solved={self.is_solved})"
        )


# ----------------------------------------------------------------------
# The pipeline driver
# ----------------------------------------------------------------------
def kernelize(graph: Graph, *, level: str = "safe") -> CutKernel:
    """Reduce ``graph`` for minimum-cut solving at the given level.

    ``off`` returns an identity kernel (uniform code path); ``safe``
    runs R2–R4; ``aggressive`` adds the NI contraction rule R5 and the
    final NI certificate R6.  Exact at every level — see the module
    docstring for the per-rule argument.

    >>> from repro.graph import Graph
    >>> g = Graph(edges=[(0, 1, 2.0), (1, 2, 2.0), (2, 0, 2.0),
    ...                  (2, 3, 1.0)])          # triangle + pendant 3
    >>> kernel = kernelize(g, level="safe")
    >>> kernel.graph.num_vertices                # pendant contracted away
    2
    >>> kernel.best_candidate.weight             # the {3} singleton cut
    1.0
    >>> kernel.lift([kernel.graph.vertices()[0]]).weight
    1.0
    """
    level = validate_level(level)
    kernel = CutKernel(graph, level)
    if level == "off" or graph.num_vertices < 2:
        return kernel

    _split_components(kernel)
    if kernel.solved is not None:
        return kernel

    # Alternate structural passes to a fixpoint: contraction exposes
    # new degree-one vertices and lowers the candidate bound, which in
    # turn certifies more contractions.  Each round strictly shrinks
    # the kernel, so the loop runs at most n times.
    while kernel.graph.num_vertices > 2:
        changed = _prune_degree_one(kernel)
        changed += _contract_certified_edges(
            kernel, use_ni=(level == "aggressive")
        )
        if not changed:
            break

    if level == "aggressive":
        _ni_certificate_pass(kernel)
    return kernel


def solve_min_cut(
    graph: Graph,
    solver: Callable[[Graph], object],
    *,
    level: str = "safe",
) -> Cut:
    """Kernelize, solve on the kernel, lift — the shared solver wrapper.

    The one-liner behind ``repro-cut mincut --preprocess`` for the
    serial baselines: exact solvers stay exact (the reductions preserve
    the minimum-cut weight and ``lift`` folds the candidates back in),
    approximate solvers keep their guarantee while running on a smaller
    graph.

    >>> from repro.baselines import stoer_wagner_min_cut
    >>> from repro.graph import Graph
    >>> g = Graph(edges=[(0, 1, 3.0), (1, 2, 1.0), (2, 3, 3.0), (3, 0, 3.0)])
    >>> solve_min_cut(g, stoer_wagner_min_cut, level="safe").weight
    4.0
    """
    return kernelize(graph, level=level).solve(solver)


# ----------------------------------------------------------------------
# R2 — connected components (cheapest-component shortcut)
# ----------------------------------------------------------------------
def _split_components(kernel: CutKernel) -> None:
    comps = kernel.graph.components()
    if len(comps) < 2:
        return
    # All components give cut weight 0; the smallest is the cheapest
    # witness to materialise (ties broken by the deterministic
    # min-internal-index order Graph.components() yields).
    cheapest = min(comps, key=len)
    kernel.solved = Cut.of(kernel.original, kernel.lift_side(cheapest))
    kernel.steps.append(
        ReductionStep(
            name="component-split",
            vertices_removed=0,
            edges_removed=0,
            candidates_recorded=0,
            detail=(
                f"{len(comps)} components: min cut is 0, witnessed by the "
                f"smallest component ({len(cheapest)} vertices)"
            ),
            certificate=("disconnected", len(comps)),
        )
    )


# ----------------------------------------------------------------------
# R3 — degree-one contraction
# ----------------------------------------------------------------------
def _prune_degree_one(kernel: CutKernel) -> int:
    """Contract degree-one kernel vertices into their neighbours."""
    g = kernel.graph
    # Vectorized emptiness precheck: edge rows are canonical unique
    # pairs, so a vertex's incident-row count equals its neighbour
    # count — no count of 1 means no degree-one vertex and the O(n + m)
    # python adjacency build below can be skipped entirely.  This is
    # what keeps a no-op kernelization pass (and the mutation path's
    # "no-reduction" refresh rule) genuinely cheap.
    n = g.num_vertices
    if n == 0:
        return 0
    us, vs, _ws = g.edge_arrays()
    counts = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    if not np.any(counts == 1):
        return 0
    adj = {v: dict(nbrs) for v, nbrs in g.adjacency().items()}
    blocks = kernel.blocks
    queue = deque(v for v in adj if len(adj[v]) == 1)
    removed = 0
    candidates = 0
    contracted: list[tuple[Vertex, Vertex]] = []
    while queue and len(adj) > 2:
        v = queue.popleft()
        if v not in adj or len(adj[v]) != 1:
            continue
        ((u, _w),) = adj[v].items()
        # Candidate: the block of v as a cut of the original — the only
        # cuts the contraction loses are those separating v from u, all
        # of weight >= w = this candidate's weight.
        kernel._record_candidate(blocks[v])
        candidates += 1
        blocks[u].extend(blocks.pop(v))
        del adj[v]
        del adj[u][v]
        removed += 1
        contracted.append((v, u))
        if len(adj[u]) == 1:
            queue.append(u)
    if not removed:
        return 0
    old_edges = g.num_edges
    # Surviving vertices keep their relative order, so the masked
    # column slice equals the old rebuild-by-add_edge graph exactly.
    kernel.graph = g.induced_subgraph(adj)
    kernel.steps.append(
        ReductionStep(
            name="degree-one",
            vertices_removed=removed,
            edges_removed=old_edges - kernel.graph.num_edges,
            candidates_recorded=candidates,
            detail=f"contracted {removed} degree-one vertices",
            certificate=("degree-one", tuple(contracted)),
        )
    )
    return removed


# ----------------------------------------------------------------------
# R4 / R5 — certified-edge contraction rounds
# ----------------------------------------------------------------------
def _min_degree_vertex(g: Graph) -> Vertex:
    """Deterministic argmin of weighted degree (first index wins ties)."""
    return g.vertices()[int(np.argmin(g.degree_vector()))]


def _contract_certified_edges(kernel: CutKernel, *, use_ni: bool) -> int:
    """One round of R4 (+R5): contract edges certified >= lambda_hat.

    ``lambda_hat`` is the best candidate's weight *in the original
    graph*; since the kernel is a pure quotient at this point, kernel
    cut weights equal original lifted weights, so any cut destroyed by
    contracting a certified edge weighs at least ``lambda_hat`` — which
    the recorded candidate already achieves.
    """
    g = kernel.graph
    n = g.num_vertices
    if n <= 2:
        return 0
    # Refresh the estimate: the minimum weighted degree is itself a cut
    # of the original (singleton block), and contraction may have
    # produced a block whose boundary is lighter than anything seen.
    kernel._record_candidate(kernel.blocks[_min_degree_vertex(g)])
    lam = kernel._best_candidate.weight

    us, vs, ws = g.edge_arrays()
    certs = ws if not use_ni else ni_edge_starts(g).levels_for(g) + ws
    hit = np.flatnonzero(certs >= lam)
    if len(hit) == 0:
        return 0
    # Contract strongest certificates first (ties by endpoint index,
    # then edge row — the (-cert, u, eid) sort order), never below 2
    # vertices (the guard keeps the kernel a valid solver input;
    # stopping early is always allowed — contracting any subset of
    # certified edges is exact).
    hit = hit[np.lexsort((hit, us[hit], -certs[hit]))]

    vertices = g.vertices()
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    remaining = n
    for iu, iv in zip(us[hit].tolist(), vs[hit].tolist()):
        if remaining <= 2:
            break
        ru, rv = find(iu), find(iv)
        if ru != rv:
            parent[ru] = rv
            remaining -= 1
    if remaining == n:
        return 0
    rep = {v: vertices[find(i)] for i, v in enumerate(vertices)}
    quotient, new_blocks = g.quotient(rep)
    kernel.blocks = {
        r: [orig for member in members for orig in kernel.blocks[member]]
        for r, members in new_blocks.items()
    }
    kernel.graph = quotient
    kernel.steps.append(
        ReductionStep(
            name="ni-contraction" if use_ni else "heavy-edge",
            vertices_removed=n - remaining,
            edges_removed=g.num_edges - quotient.num_edges,
            candidates_recorded=1,
            detail=(
                f"contracted {n - remaining} vertices via edges certified "
                f">= lambda_hat={lam:g}"
            ),
            certificate=("lambda_hat", lam),
        )
    )
    return n - remaining


# ----------------------------------------------------------------------
# R6 — final NI certificate (aggressive only)
# ----------------------------------------------------------------------
def _ni_certificate_pass(kernel: CutKernel) -> None:
    g = kernel.graph
    if g.num_vertices <= 2 or g.num_edges == 0:
        return
    cert = sparsify_preserving_min_cut(g)
    if cert.num_edges >= g.num_edges:
        return
    kernel.steps.append(
        ReductionStep(
            name="ni-certificate",
            vertices_removed=0,
            edges_removed=g.num_edges - cert.num_edges,
            candidates_recorded=0,
            detail=(
                f"NI certificate at k = min degree: {g.num_edges} -> "
                f"{cert.num_edges} edges (reweighted; every minimum cut "
                "preserved exactly)"
            ),
            certificate=("ni-sparsify", g.num_edges, cert.num_edges),
        )
    )
    kernel.graph = cert


# ----------------------------------------------------------------------
# Incremental revalidation (the serving layer's mutation path)
# ----------------------------------------------------------------------
def revalidate_kernel(
    kernel: CutKernel, graph: Graph, *, edges_added: bool = False
) -> CutKernel | None:
    """Revalidate a cached kernel after an in-place graph mutation.

    Compatibility wrapper around
    :func:`repro.preprocess.dynamic.refresh_kernel`, which holds the
    actual refresh rules (and additionally reports *which* rule fired,
    for the serving layer's ``reductions_replayed`` accounting).
    ``edges_added`` is retained for callers of the historical signature
    but no longer gates anything: the refresh rules check the mutated
    graph directly, so e.g. a delta that adds edges to a
    still-disconnected graph now refreshes instead of dropping.

    >>> from repro.graph import Graph
    >>> g = Graph(edges=[(0, 1, 1.0), (2, 3, 1.0)])   # two components
    >>> kernel = kernelize(g, level="safe")
    >>> kernel.is_solved
    True
    >>> g.remove_edge(2, 3)                           # still disconnected
    1.0
    >>> fresh = revalidate_kernel(kernel, g)
    >>> fresh.is_solved and fresh.solved.weight == 0.0
    True
    >>> g.add_edge(1, 2, 2.0); g.add_edge(2, 3, 2.0)  # reconnect: rebuild
    >>> revalidate_kernel(kernel, g) is None
    True
    """
    from .dynamic import refresh_kernel

    refreshed, _rule = refresh_kernel(kernel, graph)
    return refreshed


# ======================================================================
# Min k-Cut kernelization (the k-cut-safe subset)
# ======================================================================
class KCutKernel:
    """Kernel for Min k-Cut: heavy-edge contraction above a known k-cut.

    The min-cut reductions are *not* k-cut safe (a degree-one vertex
    may be its own part in an optimal k-cut), so this kernel applies
    only the rule that is: contracting an edge of weight >= the weight
    of a *known* k-cut.  Any k-way partition separating the endpoints
    crosses that edge, so it weighs at least as much as the recorded
    candidate; partitions keeping them together survive contraction
    with exact weight.  Hence ``min(candidate, min-k-cut(kernel)) =
    min-k-cut(original)`` — the optimum weight is preserved exactly,
    though the (4+eps) greedy may legitimately walk a different path on
    the smaller graph.
    """

    def __init__(self, original: Graph, k: int, level: str):
        self.original = original
        self.k = k
        self.level = level
        self.graph: Graph = original
        self.blocks: dict[Vertex, list[Vertex]] = {
            v: [v] for v in original.vertices()
        }
        self.candidate: KCut | None = None
        self.contracted = 0

    @property
    def reduced(self) -> bool:
        return self.contracted > 0

    def lift(self, parts: Iterable[Iterable[Vertex]]) -> KCut:
        """Lift a kernel partition; folds the candidate if lighter."""
        expanded = [
            frozenset(
                orig for rep in part for orig in self.blocks[rep]
            )
            for part in parts
        ]
        lifted = KCut.of(self.original, expanded)
        if self.candidate is not None and self.candidate.weight < lifted.weight:
            return self.candidate
        return lifted

    def stats(self) -> dict:
        return {
            "level": self.level,
            "k": self.k,
            "original_vertices": self.original.num_vertices,
            "original_edges": self.original.num_edges,
            "kernel_vertices": self.graph.num_vertices,
            "kernel_edges": self.graph.num_edges,
            "contracted": self.contracted,
            "candidate_weight": (
                self.candidate.weight if self.candidate is not None else None
            ),
        }


def kernelize_for_kcut(
    graph: Graph, k: int, *, level: str = "safe"
) -> KCutKernel:
    """Contract edges no optimal k-cut can cross (weight >= candidate).

    The candidate k-cut cutting the ``k - 1`` lightest-degree vertices
    loose bounds the optimum from above; every edge at least that heavy
    is safe to contract (see :class:`KCutKernel`).  Contraction never
    drops the kernel below ``k`` vertices.  Both non-``off`` levels
    apply the same rule — there is no aggressive extra for k-cut.
    """
    level = validate_level(level)
    kernel = KCutKernel(graph, k, level)
    n = graph.num_vertices
    if level == "off" or not 2 <= k < n:
        return kernel

    # Candidate: k-1 lightest singletons against the rest.
    vertices = graph.vertices()
    deg = graph.degree_vector()
    by_degree = np.lexsort((np.arange(n), deg))  # (degree, index) order
    singles = [vertices[i] for i in by_degree[: k - 1].tolist()]
    single_set = set(singles)
    rest = [v for v in vertices if v not in single_set]
    kernel.candidate = KCut.of(graph, [[v] for v in singles] + [rest])
    bound = kernel.candidate.weight
    if bound <= 0:  # >= k components already: optimum is 0, nothing to do
        return kernel

    us, vs, ws = graph.edge_arrays()
    hit = np.flatnonzero(ws >= bound)
    if len(hit) == 0:
        return kernel
    # Heaviest first, ties by endpoint indices — the (-w, iu, iv) sort.
    hit = hit[np.lexsort((vs[hit], us[hit], -ws[hit]))]
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    remaining = n
    for iu, iv in zip(us[hit].tolist(), vs[hit].tolist()):
        if remaining <= k:
            break
        ru, rv = find(iu), find(iv)
        if ru != rv:
            parent[ru] = rv
            remaining -= 1
    if remaining == n:
        return kernel
    rep = {v: vertices[find(i)] for i, v in enumerate(vertices)}
    kernel.graph, kernel.blocks = graph.quotient(rep)
    kernel.contracted = n - remaining
    return kernel
