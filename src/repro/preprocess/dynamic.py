"""Incremental kernel maintenance for the serving layer's mutation path.

The serving layer treats its kernel cache as **bit-exact**: a kernel
served warm must equal ``kernelize(mutated_graph, level)`` in every bit
(edge rows included — they order the randomness downstream solvers
draw).  That rules out patching a cached kernel in place: quotient
weights are float sums in row order, so replaying a reduction on
slightly different inputs can differ in the last ulp from the cold
trajectory.  Instead, every refresh rule here ends by calling
:func:`repro.preprocess.kernelize` itself — the reference — so a
refreshed kernel is bit-identical *by construction*, and the recorded
reduction certificates (:class:`repro.preprocess.ReductionStep`'s
``certificate`` field) only decide **whether** an eager re-run is
cheap enough to beat dropping the cache entry and rekernelizing lazily
on the next query.

Rules, in order:

* ``"off"`` — the kernel is an identity wrapper; a fresh identity over
  the mutated graph *is* the full rebuild, for free.
* ``"component-split"`` — the mutated graph is disconnected, so a
  re-kernelization short-circuits at R2 (one vectorized components
  pass, cheapest-component witness) without ever reaching the
  contraction rounds.  This subsumes the historical
  "still-disconnected" certificate and extends it to deltas that *add*
  edges without reconnecting the graph.
* ``"no-reduction"`` — at the ``safe`` level, when the mutated graph
  has no degree-one vertex (vectorized incident-row count) and its
  heaviest edge weighs less than its minimum weighted degree, a
  re-kernelization records one candidate and contracts nothing — one
  vectorized pass per rule, so running it eagerly is cheap.  (The
  checks gate cost only; exactness never depends on them.)
* ``"rebuild"`` — anything else: the contraction trajectory (candidate
  argmins, ``lambda_hat``, certified-edge sets) is a global function
  of the weights, so no local certificate can prove a cheap replay;
  the caller drops the cache entry and the next query rekernelizes.

``refresh_kernel`` returns ``(refreshed_or_None, rule)``; the store
counts the reduction steps of eagerly refreshed kernels as
``reductions_replayed`` (surfaced in ``/stats`` and per-mutation
``invalidation`` blocks).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .kernel import CutKernel, kernelize

__all__ = ["refresh_kernel"]


def _no_reduction_applies(graph: Graph) -> bool:
    """True when a safe-level kernelization of ``graph`` is a no-op.

    Two vectorized checks mirror the reduction preconditions: R3 needs
    a vertex with exactly one incident edge row (rows are canonical
    unique pairs, so incident-row count equals neighbour count), and
    R4's first round certifies edges of weight ``>= lambda_hat`` where
    ``lambda_hat`` is the minimum weighted degree (the only candidate
    recorded before any contraction).  No degree-one vertex and every
    edge strictly below the minimum degree ⇒ both passes return empty
    and the kernel is the graph itself.
    """
    n = graph.num_vertices
    us, vs, ws = graph.edge_arrays()
    if len(ws) == 0 or n == 0:
        return False
    counts = np.bincount(us, minlength=n) + np.bincount(vs, minlength=n)
    if counts.min() < 2:
        return False
    return float(ws.max()) < float(graph.degree_vector().min())


def refresh_kernel(
    kernel: CutKernel, graph: Graph
) -> tuple[CutKernel | None, str]:
    """Refresh a cached kernel after an in-place mutation of ``graph``.

    Returns ``(refreshed, rule)`` where ``refreshed`` is a kernel
    bit-identical to ``kernelize(graph, level=kernel.level)`` when a
    cheap eager rule applies, or ``None`` (rule ``"rebuild"``) when
    the caller should drop the cache entry and rekernelize lazily.

    >>> from repro.graph import Graph
    >>> from repro.preprocess import kernelize
    >>> g = Graph(edges=[(0, 1, 1.0), (2, 3, 1.0)])   # two components
    >>> kernel = kernelize(g, level="safe")
    >>> g.set_edge_weight(0, 1, 4.0)                  # still disconnected
    1.0
    >>> fresh, rule = refresh_kernel(kernel, g)
    >>> rule, fresh.is_solved
    ('component-split', True)
    >>> cycle = Graph(edges=[(0, 1, 1.0), (1, 2, 1.0),
    ...                      (2, 3, 1.0), (3, 0, 1.0)])
    >>> refresh_kernel(kernelize(cycle, level="safe"), cycle)[1]
    'no-reduction'
    """
    if kernel.level == "off":
        return CutKernel(graph, "off"), "off"
    if graph.num_vertices >= 2 and len(graph.components()) > 1:
        return kernelize(graph, level=kernel.level), "component-split"
    if (
        kernel.level == "safe"
        and graph.num_vertices >= 3
        and _no_reduction_applies(graph)
    ):
        return kernelize(graph, level=kernel.level), "no-reduction"
    return None, "rebuild"
