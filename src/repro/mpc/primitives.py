"""MPC primitives with *measured* message rounds.

Each primitive here is the non-adaptive twin of an AMPC primitive in
:mod:`repro.ampc.primitives`, implemented with genuine message passing
on :class:`~repro.mpc.runtime.MPCRuntime`:

* :func:`mpc_reduce` — ``n^eps``-ary aggregation tree, ``O(1/eps)``
  rounds.  Deliberately included: reduction is *not* where the models
  separate, and the bench uses it as the control row.
* :func:`mpc_list_rank` — pointer doubling, ``2·⌈log₂ n⌉`` message
  rounds (a query round and a reply round per doubling).  The AMPC
  version walks chains adaptively in ``O(1/eps)`` rounds.
* :func:`mpc_connectivity` — hook-to-minimum + pointer jumping
  (Shiloach–Vishkin style), ``Θ(log n)`` iterations of a constant
  number of message rounds.  This is the workload behind the
  1-vs-2-cycle conjecture: in MPC the ``log n`` is believed necessary,
  while AMPC connectivity finishes in ``O(1/eps)`` rounds — bench E14
  measures exactly this gap.

Every primitive returns both the answer and the runtime so callers can
read measured rounds off the ledger; results are differentially tested
against sequential oracles.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Mapping, Sequence

from ..ampc.config import AMPCConfig
from ..ampc.ledger import RoundLedger
from .runtime import MPCMachineContext, MPCRuntime

Vertex = Hashable


# ----------------------------------------------------------------------
# Reduce (the control: constant rounds in both models)
# ----------------------------------------------------------------------
def mpc_reduce(
    config: AMPCConfig,
    values: Sequence[Any],
    op,
    *,
    ledger: RoundLedger | None = None,
) -> Any:
    """Reduce ``values`` with associative ``op`` over an aggregation tree.

    Leaves are packed ``chunk``-per-machine; each level fans in by the
    chunk factor, so the tree has ``O(1/eps)`` levels.
    """
    if not values:
        raise ValueError("cannot reduce an empty sequence")
    runtime = MPCRuntime(config, ledger=ledger)
    chunk = max(2, config.local_memory_words // 8)

    leaves = [
        list(values[lo : lo + chunk]) for lo in range(0, len(values), chunk)
    ]
    runtime.seed({("lvl", 0, j): vals for j, vals in enumerate(leaves)})

    level = 0
    width = len(leaves)
    while width > 1:
        up_level = level + 1

        def push_up(ctx: MPCMachineContext, _lvl: int = level) -> None:
            mid = ctx.machine_id
            if (
                isinstance(mid, tuple)
                and mid[0] == "lvl"
                and mid[1] == _lvl
                and ctx.state
            ):
                acc = ctx.state[0]
                for v in ctx.state[1:]:
                    acc = op(acc, v)
                ctx.send(("lvl", _lvl + 1, mid[2] // chunk), acc)
                ctx.state = None  # this machine's work is done

        def absorb(ctx: MPCMachineContext, _lvl: int = up_level) -> None:
            mid = ctx.machine_id
            if isinstance(mid, tuple) and mid[0] == "lvl" and mid[1] == _lvl:
                if ctx.inbox:
                    ctx.state = list(ctx.inbox)

        runtime.round(push_up, f"reduce: level {level} -> {up_level}")
        runtime.round(absorb, f"reduce: absorb level {up_level}")
        level = up_level
        width = math.ceil(width / chunk)

    result = runtime.state_of(("lvl", level, 0))
    acc = result[0]
    for v in result[1:]:
        acc = op(acc, v)
    return acc


# ----------------------------------------------------------------------
# List ranking (pointer doubling: 2 rounds per doubling)
# ----------------------------------------------------------------------
def mpc_list_rank(
    config: AMPCConfig,
    successor: Mapping[Vertex, Vertex | None],
    *,
    ledger: RoundLedger | None = None,
) -> dict[Vertex, int]:
    """Rank list nodes by distance to their tail via pointer doubling.

    State per node machine: ``[succ, dist]`` with the invariant
    ``rank(v) = dist(v) + rank(succ(v))`` (``rank(tail) = 0``).  Each
    doubling is a query round (ask your successor) plus a reply round
    (successor answers with its own ``(succ, dist)``).
    """
    runtime = MPCRuntime(config, ledger=ledger)
    runtime.seed(
        {
            ("node", v): [successor[v], 1 if successor[v] is not None else 0]
            for v in successor
        }
    )

    def query(ctx: MPCMachineContext) -> None:
        if ctx.state is None:
            return
        succ, _ = ctx.state
        if succ is not None:
            ctx.send(("node", succ), ("q", ctx.machine_id[1]))

    def reply_and_apply(ctx: MPCMachineContext) -> None:
        if ctx.state is None:
            return
        succ, dist = ctx.state
        for msg in ctx.inbox:
            if msg[0] == "q":
                ctx.send(("node", msg[1]), ("r", succ, dist))

    def apply(ctx: MPCMachineContext) -> None:
        if ctx.state is None:
            return
        succ, dist = ctx.state
        for msg in ctx.inbox:
            if msg[0] == "r":
                succ2, dist2 = msg[1], msg[2]
                ctx.state = [succ2, dist + dist2]

    def all_done(states: dict) -> bool:
        return all(
            s is None or s[0] is None for s in states.values()
        )

    doublings = 0
    limit = 2 * max(1, math.ceil(math.log2(max(2, len(successor))))) + 4
    while not all_done(runtime.states()):
        if doublings > limit:
            raise ValueError(
                "pointer doubling did not converge; is the list acyclic?"
            )
        runtime.round(query, f"list rank: query (doubling {doublings})")
        runtime.round(reply_and_apply, f"list rank: reply (doubling {doublings})")
        runtime.round(apply, f"list rank: apply (doubling {doublings})")
        doublings += 1

    return {
        mid[1]: state[1]
        for mid, state in runtime.states().items()
        if state is not None and isinstance(mid, tuple) and mid[0] == "node"
    }


# ----------------------------------------------------------------------
# Connectivity (hook to minimum root + pointer jumping, relay trees)
# ----------------------------------------------------------------------
def mpc_connectivity(
    config: AMPCConfig,
    vertices: Sequence[Vertex],
    edges: Sequence[tuple[Vertex, Vertex]],
    *,
    ledger: RoundLedger | None = None,
    max_iterations: int | None = None,
) -> dict[Vertex, Vertex]:
    """Component labels via Shiloach–Vishkin hook-and-jump.

    Vertex machines hold a parent pointer (initially themselves); edge
    machines repeatedly (a) fetch both endpoints' parents, (b) propose
    hooking the larger parent onto the smaller, after which (c) roots
    accept their minimum proposal and (d) every vertex pointer-jumps.
    ``O(log n)`` iterations of a constant number of message rounds —
    the ``Θ(log n)`` MPC connectivity cost the AMPC model removes.

    Fan-in discipline: a star component's root would receive
    ``Θ(component)`` queries per jump, far beyond ``O(n^eps)`` local
    memory, so *all* traffic to a hot machine flows through ``b``-ary
    **relay trees** (``b ~`` machine capacity): fetches ascend with
    query coalescing and descend as broadcasts; hook proposals ascend
    with min-combining.  That is exactly how shuffle combiners bound
    reducer fan-in in real MapReduce — and it costs extra *constant*
    rounds per iteration, never breaking the ``Θ(log n)`` shape.

    Returns vertex -> component label (the minimum vertex of its
    component, by the given ``vertices`` order).
    """
    order = {v: i for i, v in enumerate(vertices)}
    n, m = len(vertices), len(edges)
    if max_iterations is None:
        max_iterations = 4 * max(1, math.ceil(math.log2(max(2, n)))) + 8
    runtime = MPCRuntime(config, ledger=ledger)
    b = max(2, config.local_memory_words // 12)
    population = max(2, n, m)
    depth = 1
    while b ** (depth + 1) < population:
        depth += 1

    states: dict = {("v", v): ["par", v] for v in vertices}
    for j, (u, v) in enumerate(edges):
        states[("e", j)] = ["edge", u, v]
    runtime.seed(states)

    def _relay_up(mid: tuple) -> tuple:
        """Parent of a fetch/combine relay, or the target vertex at top."""
        kind, tgt, lvl, blk = mid
        if lvl == depth - 1:
            return ("v", tgt)
        return (kind, tgt, lvl + 1, blk // b)

    def universal(ctx: MPCMachineContext) -> None:
        """Relay routing + vertices answering coalesced queries.

        Fetch relays ("r", target, level, block): "q" messages ascend
        (requesters remembered in relay state), "a" messages broadcast
        back down.  Combine relays ("c", target, level, block): "h"
        proposals ascend keeping only the minimum.  Vertices answer "q"
        with their current parent pointer.
        """
        mid = ctx.machine_id
        if mid[0] == "r":
            pending = [msg[1] for msg in ctx.inbox if msg[0] == "q"]
            if pending:
                ctx.state = (ctx.state or []) + pending
                ctx.send(_relay_up(mid), ("q", mid))
            for msg in ctx.inbox:
                if msg[0] == "a":
                    answer = msg if len(msg) == 3 else ("a", mid[1], msg[1])
                    for requester in ctx.state or []:
                        ctx.send(requester, answer)
                    ctx.state = None
        elif mid[0] == "c":
            proposals = [msg[1] for msg in ctx.inbox if msg[0] == "h"]
            if proposals:
                best = min(proposals, key=lambda p: order[p])
                ctx.send(_relay_up(mid), ("h", best))
        elif mid[0] == "v" and ctx.state is not None:
            for msg in ctx.inbox:
                if msg[0] == "q":
                    ctx.send(msg[1], ("a", ctx.state[1]))

    def edge_fetch_pars(ctx: MPCMachineContext) -> None:
        universal(ctx)
        mid = ctx.machine_id
        if mid[0] == "e" and ctx.state is not None:
            j = mid[1]
            _, u, v = ctx.state[:3]
            ctx.send(("r", u, 0, j // b), ("q", mid))
            if u != v:
                ctx.send(("r", v, 0, j // b), ("q", mid))

    def edge_propose(ctx: MPCMachineContext) -> None:
        universal(ctx)
        mid = ctx.machine_id
        if mid[0] == "e" and ctx.state is not None:
            _, u, v = ctx.state[:3]
            pars = {msg[1]: msg[2] for msg in ctx.inbox if msg[0] == "a"}
            pu, pv = pars.get(u), pars.get(v)
            if pu is not None and pv is not None and pu != pv:
                lo, hi = sorted((pu, pv), key=lambda p: order[p])
                ctx.send(("c", hi, 0, mid[1] // b), ("h", lo))

    def vertex_accept_and_jump_query(ctx: MPCMachineContext) -> None:
        universal(ctx)
        mid = ctx.machine_id
        if mid[0] == "v" and ctx.state is not None:
            proposals = [msg[1] for msg in ctx.inbox if msg[0] == "h"]
            if proposals and ctx.state[1] == mid[1]:  # only roots hook
                best = min(proposals, key=lambda p: order[p])
                if order[best] < order[mid[1]]:
                    ctx.state = ["par", best]
            # fetch the grandparent through the parent's relay tree
            ctx.send(("r", ctx.state[1], 0, order[mid[1]] // b), ("q", mid))

    def vertex_apply_jump(ctx: MPCMachineContext) -> None:
        universal(ctx)
        mid = ctx.machine_id
        if mid[0] == "v" and ctx.state is not None:
            for msg in ctx.inbox:
                if msg[0] == "a":
                    ctx.state = ["par", msg[2]]

    def converged(states: dict) -> bool:
        par = {
            mid[1]: s[1]
            for mid, s in states.items()
            if mid[0] == "v" and s is not None
        }
        if any(par[par[v]] != par[v] for v in par):
            return False
        return all(par[u] == par[v] for u, v in edges)

    fetch_span = 2 * depth + 1  # ascend + answer + descend
    iterations = 0
    while not converged(runtime.states()):
        if iterations >= max_iterations:
            raise RuntimeError("connectivity did not converge")
        it = iterations
        runtime.round(edge_fetch_pars, f"connectivity: fetch pars (it {it})")
        for _ in range(fetch_span):
            runtime.round(universal, f"connectivity: relay traffic (it {it})")
        runtime.round(edge_propose, f"connectivity: hook proposals (it {it})")
        for _ in range(depth):
            runtime.round(universal, f"connectivity: combine ascent (it {it})")
        runtime.round(
            vertex_accept_and_jump_query, f"connectivity: accept + jump? (it {it})"
        )
        for _ in range(fetch_span):
            runtime.round(universal, f"connectivity: relay traffic (it {it})")
        runtime.round(vertex_apply_jump, f"connectivity: pointer jump (it {it})")
        iterations += 1

    return {
        mid[1]: s[1]
        for mid, s in runtime.states().items()
        if mid[0] == "v" and s is not None
    }
