"""A genuine (non-adaptive) MPC runtime, for measuring the model gap.

:mod:`repro.baselines.gn_mpc` prices Ghaffari–Nowicki's algorithm with
a *cost model*; this module is the stronger artefact: an executable MPC
simulator whose primitives really exchange messages, so the paper's
headline contrast — **AMPC reads adaptively mid-round, MPC cannot** —
shows up as *measured* round counts on the same workloads (bench E14).

The model, following Karloff–Suri–Vassilvitskii and Section 1.1 of the
paper:

* machines hold ``O(n^eps)`` words of **state**;
* a round = every machine runs on ``(state, inbox)`` and emits messages
  for other machines; messages are delivered only at the round
  boundary — nothing a machine did not request *last* round can reach
  it this round (this is exactly the restriction AMPC lifts);
* per-machine inbox + outbox must fit local memory (the standard I/O
  constraint).

The defining *absence* here is any ``read()``: an
:class:`MPCMachineContext` exposes state, inbox, and ``send`` — there
is deliberately no way to fetch remote data within a round.  Pointer
chasing therefore costs a round per hop unless the algorithm doubles
pointers, which is where the ``Θ(log n)`` factors in MPC connectivity
and list ranking come from (and what the 1-vs-2-cycle conjecture says
cannot be avoided).

Machines are addressed by arbitrary hashable ids and materialise
lazily: sending to a fresh id creates that machine with ``None`` state
(the standard "vertex machine / edge machine" idiom).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Mapping

from ..ampc.config import AMPCConfig
from ..ampc.dht import word_size
from ..ampc.errors import MemoryLimitExceeded
from ..ampc.ledger import RoundLedger

MachineId = Hashable


class MPCMachineContext:
    """What one machine sees during one MPC round.

    ``state`` is the machine's persisted local memory from the previous
    round; ``inbox`` the messages delivered at the last round boundary.
    The program mutates state via :attr:`state` assignment and
    communicates *only* through :meth:`send`.
    """

    def __init__(
        self,
        machine_id: MachineId,
        state: Any,
        inbox: list[Any],
        local_limit: int,
    ):
        self.machine_id = machine_id
        self.state = state
        self.inbox = inbox
        self._local_limit = int(local_limit)
        self._out: list[tuple[MachineId, Any]] = []
        self._out_words = 0
        base = word_size(state) + word_size(inbox)
        self._peak = base
        if base > self._local_limit:
            raise MemoryLimitExceeded(base, self._local_limit, machine_id)

    def send(self, to: MachineId, message: Any) -> None:
        """Queue ``message`` for delivery to machine ``to`` next round."""
        self._out.append((to, message))
        self._out_words += word_size(message)
        used = (
            word_size(self.state)
            + word_size(self.inbox)
            + self._out_words
        )
        self._peak = max(self._peak, used)
        if used > self._local_limit:
            raise MemoryLimitExceeded(used, self._local_limit, self.machine_id)

    @property
    def peak_words(self) -> int:
        return max(self._peak, word_size(self.state) + self._out_words)


MPCProgram = Callable[[MPCMachineContext], None]


class MPCRuntime:
    """Executes one MPC program over a set of stateful machines."""

    def __init__(self, config: AMPCConfig, ledger: RoundLedger | None = None):
        self.config = config
        self.ledger = ledger if ledger is not None else RoundLedger()
        self._state: dict[MachineId, Any] = {}
        self._inbox: dict[MachineId, list[Any]] = {}
        self._rounds_run = 0

    # ------------------------------------------------------------------
    @property
    def rounds_run(self) -> int:
        return self._rounds_run

    def seed(self, states: Mapping[MachineId, Any] | Iterable[tuple[MachineId, Any]]) -> None:
        """Install initial machine states (the input distribution)."""
        items = states.items() if isinstance(states, Mapping) else states
        for mid, state in items:
            self._state[mid] = state
            self._inbox.setdefault(mid, [])

    def state_of(self, mid: MachineId) -> Any:
        """Host-side readout of a machine's state (not a round)."""
        return self._state.get(mid)

    def states(self) -> dict[MachineId, Any]:
        """Host-side snapshot of all machine states."""
        return dict(self._state)

    # ------------------------------------------------------------------
    def round(self, program: MPCProgram, reason: str) -> None:
        """Run ``program`` on every live machine; deliver messages after.

        A machine is *live* if it has state or pending messages.  All
        machines run the same program (SPMD, the MapReduce idiom);
        per-machine behaviour branches on state/inbox contents.
        """
        live = {m for m, s in self._state.items() if s is not None} | {
            m for m, box in self._inbox.items() if box
        }
        outboxes: dict[MachineId, list[Any]] = {}
        local_peak = 0
        messages = 0
        for mid in sorted(live, key=repr):
            ctx = MPCMachineContext(
                mid,
                self._state.get(mid),
                self._inbox.get(mid, []),
                self.config.local_memory_words,
            )
            program(ctx)
            self._state[mid] = ctx.state
            local_peak = max(local_peak, ctx.peak_words)
            for to, message in ctx._out:
                outboxes.setdefault(to, []).append(message)
                messages += 1

        # Round boundary: deliver everything at once.
        self._inbox = outboxes
        for to in outboxes:
            self._state.setdefault(to, None)
        # Receiver-side I/O constraint: an inbox must fit local memory.
        for to, box in outboxes.items():
            inbox_words = word_size(box)
            if inbox_words > self.config.local_memory_words:
                raise MemoryLimitExceeded(
                    inbox_words, self.config.local_memory_words, to
                )
        self._rounds_run += 1
        total = sum(word_size(s) for s in self._state.values()) + sum(
            word_size(b) for b in self._inbox.values()
        )
        self.ledger.measure(
            1,
            reason,
            local_peak=local_peak,
            total_peak=total,
            queries=messages,
        )

    def run_until(
        self,
        program: MPCProgram,
        done: Callable[[dict[MachineId, Any]], bool],
        reason: str,
        *,
        max_rounds: int = 10_000,
    ) -> int:
        """Iterate ``program`` until ``done(states)``; returns rounds used."""
        used = 0
        while not done(self.states()):
            if used >= max_rounds:
                raise RuntimeError(
                    f"MPC program did not converge within {max_rounds} rounds"
                )
            self.round(program, f"{reason} [iter {used}]")
            used += 1
        return used
