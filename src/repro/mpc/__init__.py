"""Executable MPC model (non-adaptive twin of :mod:`repro.ampc`).

Machines exchange messages at round boundaries only — no mid-round
reads.  Used by bench E14 to *measure* the AMPC-vs-MPC model gap the
paper's introduction argues from (1-vs-2-cycle), instead of merely
pricing it with the Ghaffari–Nowicki cost model.
"""

from .primitives import mpc_connectivity, mpc_list_rank, mpc_reduce
from .runtime import MPCMachineContext, MPCProgram, MPCRuntime

__all__ = [
    "MPCMachineContext",
    "MPCProgram",
    "MPCRuntime",
    "mpc_connectivity",
    "mpc_list_rank",
    "mpc_reduce",
]
