"""Command-line interface.

Subcommands mirroring what a downstream user does first:

* ``mincut``  — minimum cut of a graph file: the paper's Algorithm 1 by
  default, or ``--algorithm matula|karger-stein|exact`` for the
  baselines, with round/memory accounting and optional exact
  verification;
* ``kcut``    — (4+eps)-approximate Min k-Cut (Algorithm 4);
* ``decompose`` — generalized low-depth decomposition of a tree file,
  printing the labeling and the splitting process;
* ``kernelize`` — inspect the exact kernelization pipeline
  (:mod:`repro.preprocess`): reduction steps, shrink ratios, recorded
  candidate cuts, optionally writing the kernel graph out;
* ``sparsify`` — Nagamochi–Ibaraki min-cut-preserving certificate;
* ``convert`` — translate between edge-list, DIMACS and METIS;
* ``experiments`` — regenerate EXPERIMENTS.md from live runs;
* ``serve``   — start the long-lived JSON-over-HTTP cut-query engine
  (:mod:`repro.service`): graphs registered once, boosting trials fanned
  over a process pool, s–t queries amortised through a Gomory–Hu cache;
* ``query``   — client for a running ``serve`` instance;
* ``mutate``  — apply edge deltas (add/remove/reweight) to a graph
  resident in a running ``serve`` instance, in place — the dynamic-
  workload path (``POST /mutate``; see ``docs/HTTP_API.md``);
* ``loadgen`` — open-loop load generator against a running ``serve``
  instance: fixed arrival rate, bounded in-flight window, mixed
  upload/query/mutate/batch traffic, per-op p50/p95/p99 latency and
  optional SLO gating (:mod:`repro.obs.loadgen`;
  see ``docs/OBSERVABILITY.md``).

Graph files are loaded by extension: ``.dimacs``/``.col``/``.max`` as
DIMACS, ``.metis``/``.chaco`` as METIS, anything else as the native
edge list (:mod:`repro.graph.io`).  Install exposes ``repro-cut`` via
the console-script entry point; ``python -m repro.cli`` works from a
checkout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baselines import exact_min_cut_weight
from .core import ampc_min_cut_boosted, apx_split_kcut
from .graph import (
    Graph,
    load_any as _load_any,
    save_any as _save_any,
    sparsify_preserving_min_cut,
)
from .trees import decomposition_forest_sequence, low_depth_decomposition


def _kernel_line(stats: dict) -> str:
    """One-line kernelization summary printed under ``--preprocess``."""
    solved = " (solved outright)" if stats["solved"] else ""
    return (
        f"kernel[{stats['level']}]: "
        f"{stats['original_vertices']}->{stats['kernel_vertices']} vertices, "
        f"{stats['original_edges']}->{stats['kernel_edges']} edges "
        f"({stats['vertex_shrink']:.2f}x / {stats['edge_shrink']:.2f}x)"
        f"{solved}"
    )


def _cmd_mincut(args: argparse.Namespace) -> int:
    graph = _load_any(args.graph)
    rounds: int | None = None
    kernel_stats: dict | None = None
    if args.algorithm == "ampc":
        result = ampc_min_cut_boosted(
            graph,
            eps=args.eps,
            trials=args.trials,
            seed=args.seed,
            backend=args.ampc_backend,
            preprocess=args.preprocess,
        )
        weight, side, rounds = result.weight, result.cut.side, result.ledger.rounds
        ledger_report = result.ledger.report() if args.ledger else None
        kernel_stats = result.kernel_stats
    else:
        if args.algorithm == "matula":
            from .baselines import matula_min_cut

            def solver(g):
                return matula_min_cut(g, eps=args.eps)

        elif args.algorithm == "karger-stein":
            from .baselines import karger_stein_boosted

            def solver(g):
                return karger_stein_boosted(g, seed=args.seed)

        elif args.algorithm == "exact":
            from .baselines import stoer_wagner_min_cut

            solver = stoer_wagner_min_cut
        else:  # pragma: no cover - argparse choices guard this
            raise ValueError(args.algorithm)
        if args.preprocess != "off":
            from .preprocess import kernelize

            kernel = kernelize(graph, level=args.preprocess)
            cut = kernel.solve(solver)
            kernel_stats = kernel.stats()
        else:
            res = solver(graph)
            cut = res if not hasattr(res, "cut") else res.cut
        weight, side, ledger_report = cut.weight, cut.side, None

    print(f"n={graph.num_vertices} m={graph.num_edges}")
    if kernel_stats is not None:
        print(_kernel_line(kernel_stats))
    print(f"cut weight: {weight}")
    small = min((side, frozenset(graph.vertices()) - side), key=len)
    print(f"cut side ({len(small)} vertices): {sorted(map(str, small))[:20]}")
    if rounds is not None:
        print(f"AMPC rounds: {rounds}")
    if args.timeline and args.algorithm == "ampc":
        from .ampc import render_phase_table, render_timeline

        print(render_timeline(result.ledger, max_entries=24))
        print(render_phase_table(result.ledger))
    if args.verify:
        # A disconnected input (reachable only via --preprocess, which
        # solves it at weight 0) has min cut 0 by definition —
        # Stoer–Wagner itself requires a connected graph.
        if len(graph.components()) > 1:
            exact = 0.0
        else:
            exact = exact_min_cut_weight(graph)
        ratio = weight / exact if exact else (1.0 if weight == exact else float("inf"))
        print(f"exact (Stoer-Wagner): {exact}  ratio: {ratio:.4f}")
    if ledger_report:
        print(ledger_report)
    return 0


def _cmd_kcut(args: argparse.Namespace) -> int:
    graph = _load_any(args.graph)
    result = apx_split_kcut(
        graph, args.k, eps=args.eps, seed=args.seed, backend=args.ampc_backend,
        preprocess=args.preprocess,
    )
    print(f"n={graph.num_vertices} m={graph.num_edges} k={args.k}")
    if result.kernel_stats is not None:
        s = result.kernel_stats
        if s["candidate_weight"] is None:
            print(f"kernel[{s['level']}]: no applicable k-cut reduction")
        else:
            print(
                f"kernel[{s['level']}]: "
                f"{s['original_vertices']}->{s['kernel_vertices']} vertices "
                f"({s['contracted']} contracted above the candidate k-cut "
                f"bound {s['candidate_weight']})"
            )
    print(f"k-cut weight: {result.weight}")
    for i, part in enumerate(sorted(result.kcut.parts, key=len, reverse=True)):
        members = sorted(map(str, part))
        shown = members if len(members) <= 12 else members[:12] + ["..."]
        print(f"  part {i}: {len(part)} vertices: {shown}")
    print(f"iterations: {result.iterations}  AMPC rounds: {result.ledger.rounds}")
    if args.metrics:
        from .analysis.metrics import partition_summary

        print(partition_summary(graph, list(result.kcut.parts)).render())
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    graph = _load_any(args.graph)
    if graph.num_edges != graph.num_vertices - 1:
        print("error: input must be a tree (m == n-1)", file=sys.stderr)
        return 2
    edges = [(u, v) for u, v, _ in graph.edges()]
    decomp = low_depth_decomposition(graph.vertices(), edges)
    print(f"n={graph.num_vertices}  height={decomp.height} "
          f"(envelope {decomp.height_bound()})")
    levels = decomp.levels()
    for level in sorted(levels):
        members = sorted(map(str, levels[level]))
        shown = members if len(members) <= 16 else members[:16] + ["..."]
        print(f"  level {level}: {shown}")
    if args.process:
        print("splitting process:")
        for i, comps in enumerate(decomposition_forest_sequence(decomp), start=1):
            sizes = sorted((len(c) for c in comps), reverse=True)
            print(f"  T_{i}: {len(comps)} components, sizes {sizes[:12]}")
    return 0


def _cmd_kernelize(args: argparse.Namespace) -> int:
    import json

    from .preprocess import kernelize

    graph = _load_any(args.graph)
    kernel = kernelize(graph, level=args.level)
    stats = kernel.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(f"n={graph.num_vertices} m={graph.num_edges}")
        print(_kernel_line(stats))
        for step in stats["steps"]:
            print(
                f"  - {step['name']}: -{step['vertices_removed']}v "
                f"-{step['edges_removed']}e "
                f"(+{step['candidates_recorded']} candidates) "
                f"{step['detail']}"
            )
        if stats["solved"]:
            print(f"solved outright: min cut weight {stats['solved_weight']}")
        elif stats["best_candidate_weight"] is not None:
            print(
                "best candidate cut recorded: "
                f"{stats['best_candidate_weight']} (upper bound on the min cut)"
            )
    if args.output is not None:
        _save_any(kernel.graph, args.output)
        print(f"wrote kernel to {args.output}", file=sys.stderr)
    return 0


def _cmd_sparsify(args: argparse.Namespace) -> int:
    graph = _load_any(args.graph)
    cert = sparsify_preserving_min_cut(graph, slack=args.slack)
    _save_any(cert, args.output)
    print(
        f"{graph.num_edges} edges "
        f"(total weight {graph.total_weight():.1f}) -> "
        f"{cert.num_edges} edges "
        f"(total weight {cert.total_weight():.1f})"
    )
    print(f"wrote {args.output}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    graph = _load_any(args.input)
    _save_any(graph, args.output)
    print(
        f"converted {args.input} -> {args.output} "
        f"(n={graph.num_vertices}, m={graph.num_edges})"
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis.writer import generate

    generate(args.output, fast=args.fast)
    print(f"wrote {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs import Tracer
    from .service import CutService, make_frontend, serve

    service_kwargs = dict(
        workers=args.workers,
        store_capacity=args.store_capacity,
        result_cache_capacity=args.result_cache,
        ampc_backend=args.ampc_backend,
        preprocess=args.preprocess,
    )
    tracer = Tracer(capacity=args.trace_capacity, enabled=not args.no_trace)
    frontend_kwargs = dict(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        queue_timeout_s=args.queue_timeout,
        retry_after_s=args.retry_after,
        coalesce=not args.no_coalesce,
        tracer=tracer,
    )
    if args.shards > 1:
        # Sharded: one CutService process per shard behind a
        # consistent-hash ring; graphs preload through the frontend so
        # each lands on the shard owning its fingerprint.
        frontend = make_frontend(
            shards=args.shards,
            service_kwargs=service_kwargs,
            **frontend_kwargs,
        )
        register = lambda name, path: frontend.backend.dispatch(  # noqa: E731
            "graphs", {"name": name, "path": str(path)}, tracer
        )
    else:
        service = CutService(tracer=tracer, **service_kwargs)
        frontend = make_frontend(service, **frontend_kwargs)
        register = lambda name, path: (  # noqa: E731
            (200, service.register_file(name, Path(path)))
        )
    for spec in args.graph or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"error: --graph wants NAME=PATH, got {spec!r}", file=sys.stderr)
            frontend.close()
            return 2
        status, entry = register(name, Path(path))
        if status != 200:
            print(
                f"error: preload {name} failed: {entry.get('error')}",
                file=sys.stderr,
            )
            frontend.close()
            return 2
        print(
            f"registered {name}: n={entry['num_vertices']} "
            f"m={entry['num_edges']} fingerprint={entry['fingerprint'][:12]}"
        )
    try:
        serve(frontend=frontend, host=args.host, port=args.port)
    finally:
        if args.trace_out is not None:
            count = frontend.tracer.export_jsonl(str(args.trace_out))
            print(f"wrote {count} spans to {args.trace_out}", file=sys.stderr)
        frontend.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .obs import LoadGen, LoadGenConfig, check_slos
    from .obs.loadgen import write_report

    mix = None
    if args.mix:
        mix = {}
        for spec in args.mix:
            op, sep, weight = spec.partition("=")
            if not sep:
                print(f"error: --mix wants OP=WEIGHT, got {spec!r}",
                      file=sys.stderr)
                return 2
            try:
                mix[op] = float(weight)
            except ValueError:
                print(f"error: --mix weight must be a number, got {weight!r}",
                      file=sys.stderr)
                return 2
    kwargs = {} if mix is None else {"mix": mix}
    try:
        config = LoadGenConfig(
            url=args.url,
            rate=args.rate,
            duration_s=args.duration,
            max_inflight=args.max_inflight,
            graphs=args.graphs,
            graph_n=args.graph_n,
            corpus=args.corpus,
            seed=args.seed,
            probe_s=args.probe,
            decrease_fraction=args.decrease_fraction,
            **kwargs,
        )
        report = LoadGen(config).run()
    except (ValueError, ConnectionError, RuntimeError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output is not None:
        write_report(report, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
    floors = {}
    if args.slo:
        for spec in args.slo:
            key, sep, bound = spec.partition("=")
            if not sep:
                print(f"error: --slo wants KEY=BOUND, got {spec!r}",
                      file=sys.stderr)
                return 2
            try:
                floors[key] = float(bound)
            except ValueError:
                print(f"error: --slo bound must be a number, got {bound!r}",
                      file=sys.stderr)
                return 2
    if floors:
        try:
            violations = check_slos(report, floors)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if violations:
            for line in violations:
                print(f"SLO violation: {line}", file=sys.stderr)
            return 1
        print(f"all {len(floors)} SLOs hold", file=sys.stderr)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from .service import request_json

    def need(value, flag: str):
        if value is None:
            print(f"error: {args.op} requires {flag}", file=sys.stderr)
            raise SystemExit(2)
        return value

    if args.op == "stats":
        resp = request_json(args.url, "/stats")
    elif args.op == "graphs":
        resp = request_json(args.url, "/graphs")
    elif args.op == "register":
        graph = _load_any(need(args.file, "--file"))
        payload = {
            "name": need(args.name, "--name"),
            "vertices": [_json_vertex(v) for v in graph.vertices()],
            "edges": [
                [_json_vertex(u), _json_vertex(v), w] for u, v, w in graph.edges()
            ],
        }
        resp = request_json(args.url, "/graphs", payload)
    elif args.op == "mincut":
        resp = request_json(
            args.url,
            "/mincut",
            {
                "graph": need(args.name, "--name"),
                "eps": args.eps,
                "trials": args.trials,
                "seed": args.seed,
                "preprocess": args.preprocess,
            },
        )
    elif args.op == "kcut":
        resp = request_json(
            args.url,
            "/kcut",
            {
                "graph": need(args.name, "--name"),
                "k": need(args.k, "--k"),
                "eps": args.eps,
                "trials": args.trials or 1,
                "seed": args.seed,
                "preprocess": args.preprocess,
            },
        )
    elif args.op == "stcut":
        resp = request_json(
            args.url,
            "/stcut",
            {
                "graph": need(args.name, "--name"),
                "s": need(args.s, "--s"),
                "t": need(args.t, "--t"),
            },
        )
    elif args.op == "gomoryhu":
        resp = request_json(
            args.url,
            "/gomoryhu",
            {
                "graph": need(args.name, "--name"),
                "sides": bool(args.sides),
            },
        )
    elif args.op == "sparsestcut":
        resp = request_json(
            args.url,
            "/sparsestcut",
            {
                "graph": need(args.name, "--name"),
                "seed": args.seed,
                "trials": args.trials if args.trials is not None else 2,
                "kernel": bool(args.kernel),
            },
        )
    elif args.op == "kernelize":
        payload = {
            "graph": need(args.name, "--name"),
            "level": args.preprocess or "safe",
        }
        if args.k is not None:
            payload["k"] = args.k
        resp = request_json(args.url, "/kernelize", payload)
    elif args.op == "evict":
        resp = request_json(args.url, "/evict", {"graph": need(args.name, "--name")})
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(args.op)
    print(json.dumps(resp, indent=2, sort_keys=True))
    return 1 if isinstance(resp, dict) and "error" in resp else 0


def _parse_delta_edge(
    spec: str, *, weighted: bool, verb: str, optional_weight: bool = False
):
    """Parse ``U,V[,W]`` CLI specs into wire rows (ints where possible).

    ``optional_weight`` is ``--add``'s defaulting-to-1 shape only;
    ``--reweight`` must name its weight (caught here, not as a remote
    400).
    """
    parts = spec.split(",")
    want = 3 if weighted else 2
    if len(parts) != want and not (optional_weight and len(parts) == 2):
        shape = "U,V[,W]" if optional_weight else (
            "U,V,W" if weighted else "U,V"
        )
        raise SystemExit(f"error: --{verb} wants {shape}, got {spec!r}")
    def vertex(tok: str):
        tok = tok.strip()
        try:
            return int(tok)
        except ValueError:
            return tok
    row = [vertex(parts[0]), vertex(parts[1])]
    if weighted and len(parts) == 3:
        try:
            row.append(float(parts[2]))
        except ValueError:
            raise SystemExit(
                f"error: --{verb} weight must be a number, got {parts[2]!r}"
            ) from None
    return row


def _cmd_mutate(args: argparse.Namespace) -> int:
    import json

    from .service import request_json

    payload: dict = {"graph": args.name}
    if args.deltas_json is not None:
        body = json.loads(Path(args.deltas_json).read_text())
        if isinstance(body, list):
            payload["deltas"] = body
        elif isinstance(body, dict):
            payload.update(
                {
                    k: body[k]
                    for k in ("adds", "removes", "reweights", "deltas")
                    if k in body
                }
            )
        else:
            print("error: --deltas-json wants a JSON object or list",
                  file=sys.stderr)
            return 2
    if args.add:
        payload["adds"] = [
            _parse_delta_edge(s, weighted=True, verb="add",
                              optional_weight=True)
            for s in args.add
        ]
    if args.remove:
        payload["removes"] = [
            _parse_delta_edge(s, weighted=False, verb="remove")
            for s in args.remove
        ]
    if args.reweight:
        payload["reweights"] = [
            _parse_delta_edge(s, weighted=True, verb="reweight")
            for s in args.reweight
        ]
    if args.expect_fingerprint:
        payload["expected_fingerprint"] = args.expect_fingerprint
    if not any(k in payload for k in ("adds", "removes", "reweights", "deltas")):
        print("error: nothing to apply (use --add/--remove/--reweight or "
              "--deltas-json)", file=sys.stderr)
        return 2
    try:
        resp = request_json(args.url, "/mutate", payload)
    except (ConnectionError, RuntimeError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(resp, indent=2, sort_keys=True))
    return 1 if isinstance(resp, dict) and "error" in resp else 0


def _cmd_query_safe(args: argparse.Namespace) -> int:
    try:
        return _cmd_query(args)
    except (ConnectionError, RuntimeError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _json_vertex(v):
    """Vertices as JSON scalars (ints stay ints; the rest go to str)."""
    return v if isinstance(v, (int, str)) else str(v)


def _backend_spec(value: str) -> str:
    from .ampc.backends import parse_backend_spec

    try:
        parse_backend_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value


def _add_preprocess_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--preprocess",
        choices=["off", "safe", "aggressive"],
        default="off",
        help="exact kernelization before solving (repro.preprocess); "
        "never changes the reported cut weight",
    )


def _add_ampc_backend_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--ampc-backend",
        type=_backend_spec,
        default=None,
        metavar="{serial,thread,process,shm}[:WORKERS]",
        help="round-execution backend for AMPC rounds (default: "
        "$AMPC_BACKEND or serial; never changes results; shm runs "
        "columnar rounds on a persistent shared-memory worker pool)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cut",
        description="AMPC cut algorithms (SPAA 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("mincut", help="minimum cut (approximate or exact)")
    p.add_argument("graph", type=Path, help="graph file (edge list/DIMACS/METIS)")
    p.add_argument(
        "--algorithm",
        choices=["ampc", "matula", "karger-stein", "exact"],
        default="ampc",
        help="ampc = paper Algorithm 1 (default)",
    )
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--trials", type=int, default=None, help="boosting trials")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", action="store_true", help="compare with exact")
    _add_preprocess_flag(p)
    _add_ampc_backend_flag(p)
    p.add_argument("--ledger", action="store_true", help="print round ledger")
    p.add_argument("--timeline", action="store_true",
                   help="print the round timeline + per-phase table (ampc only)")
    p.set_defaults(func=_cmd_mincut)

    p = sub.add_parser("kcut", help="(4+eps)-approximate Min k-Cut")
    p.add_argument("graph", type=Path)
    p.add_argument("k", type=int)
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    _add_preprocess_flag(p)
    _add_ampc_backend_flag(p)
    p.add_argument("--metrics", action="store_true",
                   help="print partition quality metrics")
    p.set_defaults(func=_cmd_kcut)

    p = sub.add_parser(
        "kernelize",
        help="inspect the exact kernelization of a graph (repro.preprocess)",
    )
    p.add_argument("graph", type=Path)
    p.add_argument("--level", choices=["safe", "aggressive"], default="safe")
    p.add_argument("--output", type=Path, default=None,
                   help="also write the kernel graph to a file")
    p.add_argument("--json", action="store_true",
                   help="print the full stats record as JSON")
    p.set_defaults(func=_cmd_kernelize)

    p = sub.add_parser("decompose", help="low-depth decomposition of a tree")
    p.add_argument("graph", type=Path)
    p.add_argument("--process", action="store_true",
                   help="print the T_i splitting process")
    p.set_defaults(func=_cmd_decompose)

    p = sub.add_parser("sparsify", help="NI min-cut-preserving certificate")
    p.add_argument("graph", type=Path)
    p.add_argument("output", type=Path)
    p.add_argument("--slack", type=float, default=1.0,
                   help="certificate level = slack * min degree (>= 1)")
    p.set_defaults(func=_cmd_sparsify)

    p = sub.add_parser("convert", help="translate between graph formats")
    p.add_argument("input", type=Path)
    p.add_argument("output", type=Path)
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("experiments", help="regenerate EXPERIMENTS.md")
    p.add_argument("--output", type=Path, default=Path("EXPERIMENTS.md"))
    p.add_argument("--fast", action="store_true", help="smaller instances")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("serve", help="start the cut-query HTTP service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8008,
                   help="TCP port (0 = ephemeral; bound URL is printed)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size for boosting trials")
    _add_preprocess_flag(p)
    _add_ampc_backend_flag(p)
    p.add_argument("--store-capacity", type=int, default=None,
                   help="max resident graphs (LRU eviction; default unbounded)")
    p.add_argument("--result-cache", type=int, default=256,
                   help="LRU capacity of the query-result cache")
    p.add_argument("--graph", action="append", metavar="NAME=PATH",
                   help="preload a graph file (repeatable)")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the graph store across this many "
                        "worker processes by fingerprint (consistent "
                        "hashing; 1 = single-process)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="bounded in-flight request window; requests "
                        "beyond it queue, then shed with 429")
    p.add_argument("--max-queue", type=int, default=256,
                   help="bounded admission wait queue; a full queue "
                        "sheds immediately with 429 + Retry-After")
    p.add_argument("--queue-timeout", type=float, default=2.0,
                   help="seconds a request may wait for an in-flight "
                        "slot before being shed")
    p.add_argument("--retry-after", type=float, default=1.0,
                   help="Retry-After hint (seconds) sent with 429s")
    p.add_argument("--no-coalesce", action="store_true",
                   help="disable coalescing of identical in-flight "
                        "read queries")
    p.add_argument("--no-trace", action="store_true",
                   help="disable request tracing (GET /trace serves an "
                        "empty buffer; error bodies carry trace_id=null)")
    p.add_argument("--trace-capacity", type=int, default=4096,
                   help="span ring-buffer size (oldest spans drop first)")
    p.add_argument("--trace-out", type=Path, default=None,
                   help="on shutdown, write buffered spans to this JSONL file")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("loadgen",
                       help="open-loop load generator against a running "
                            "serve instance")
    p.add_argument("--url", default="http://127.0.0.1:8008")
    p.add_argument("--rate", type=float, default=50.0,
                   help="target arrival rate, requests/second")
    p.add_argument("--duration", type=float, default=5.0,
                   help="seconds of scheduled arrivals")
    p.add_argument("--max-inflight", type=int, default=16,
                   help="bounded concurrency window (worker threads)")
    p.add_argument("--mix", action="append", metavar="OP=WEIGHT",
                   help="traffic mix weight, e.g. --mix mincut=4 "
                        "(ops: mincut stcut gomoryhu sparsestcut mutate "
                        "batch upload; repeatable; gomoryhu/sparsestcut "
                        "default to 0)")
    p.add_argument("--graphs", type=int, default=2,
                   help="graphs registered as the query corpus")
    p.add_argument("--graph-n", type=int, default=48,
                   help="vertices per corpus graph")
    p.add_argument("--corpus", choices=["planted", "viecut"],
                   default="planted",
                   help="corpus family: planted-cut instances or the "
                        "VieCut literature shapes (clustered community / "
                        "near-regular expander / unbalanced planted)")
    p.add_argument("--seed", type=int, default=0,
                   help="schedule + payload RNG seed (same seed, same run)")
    p.add_argument("--probe", type=float, default=0.0,
                   help="seconds of closed-loop saturation probe after the "
                        "open-loop phase (0 = skip)")
    p.add_argument("--decrease-fraction", type=float, default=0.25,
                   help="fraction of mutate ops that decrease an edge "
                        "weight (exercises localized Gomory-Hu repair; "
                        "0 = increase-only)")
    p.add_argument("--output", type=Path, default=None,
                   help="write the JSON report here instead of stdout")
    p.add_argument("--slo", action="append", metavar="KEY=BOUND",
                   help="SLO gate, e.g. --slo mincut_p99_s=0.5 "
                        "--slo min_rps=20 (exit 1 on violation; keys: "
                        "<op>_p99_s min_rps max_error_rate "
                        "min_saturation_rps)")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser("mutate",
                       help="apply edge deltas to a graph on a running "
                            "serve instance (in place)")
    p.add_argument("--url", default="http://127.0.0.1:8008")
    p.add_argument("--name", required=True, help="graph name on the server")
    p.add_argument("--add", action="append", metavar="U,V[,W]",
                   help="add (or reinforce) an edge, weight defaults to 1 "
                        "(repeatable)")
    p.add_argument("--remove", action="append", metavar="U,V",
                   help="remove an edge (must exist; repeatable)")
    p.add_argument("--reweight", action="append", metavar="U,V,W",
                   help="set an edge's weight outright; W=0 drops the edge "
                        "(repeatable)")
    p.add_argument("--deltas-json", type=Path, default=None,
                   help="JSON file with a delta object or a batched list "
                        "of deltas")
    p.add_argument("--expect-fingerprint", default=None,
                   help="apply only if the resident fingerprint matches "
                        "(optimistic concurrency; mismatch = HTTP 409)")
    p.set_defaults(func=_cmd_mutate)

    p = sub.add_parser("query", help="query a running serve instance")
    p.add_argument("op", choices=["register", "mincut", "kcut", "stcut",
                                  "gomoryhu", "sparsestcut",
                                  "kernelize", "graphs", "stats", "evict"])
    p.add_argument("--url", default="http://127.0.0.1:8008")
    p.add_argument("--name", help="graph name on the server")
    p.add_argument("--file", type=Path, help="graph file (register)")
    p.add_argument("--k", type=int, help="number of parts (kcut)")
    p.add_argument("--s", help="source vertex (stcut)")
    p.add_argument("--t", help="sink vertex (stcut)")
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sides", action="store_true",
                   help="gomoryhu: record a real cut bipartition per "
                   "tree edge")
    p.add_argument("--kernel", action="store_true",
                   help="sparsestcut: contract provably-uncut edges "
                   "before solving")
    p.add_argument("--preprocess", choices=["off", "safe", "aggressive"],
                   default=None,
                   help="kernelization level for this query "
                   "(default: the server's --preprocess setting)")
    p.set_defaults(func=_cmd_query_safe)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
