"""Command-line interface.

Subcommands mirroring what a downstream user does first:

* ``mincut``  — minimum cut of a graph file: the paper's Algorithm 1 by
  default, or ``--algorithm matula|karger-stein|exact`` for the
  baselines, with round/memory accounting and optional exact
  verification;
* ``kcut``    — (4+eps)-approximate Min k-Cut (Algorithm 4);
* ``decompose`` — generalized low-depth decomposition of a tree file,
  printing the labeling and the splitting process;
* ``sparsify`` — Nagamochi–Ibaraki min-cut-preserving certificate;
* ``convert`` — translate between edge-list, DIMACS and METIS;
* ``experiments`` — regenerate EXPERIMENTS.md from live runs.

Graph files are loaded by extension: ``.dimacs``/``.col``/``.max`` as
DIMACS, ``.metis``/``.chaco`` as METIS, anything else as the native
edge list (:mod:`repro.graph.io`).  Install exposes ``repro-cut`` via
the console-script entry point; ``python -m repro.cli`` works from a
checkout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baselines import exact_min_cut_weight
from .core import ampc_min_cut_boosted, apx_split_kcut
from .graph import (
    Graph,
    load_dimacs,
    load_graph,
    load_metis,
    save_dimacs,
    save_graph,
    save_metis,
    sparsify_preserving_min_cut,
)
from .trees import decomposition_forest_sequence, low_depth_decomposition

_DIMACS_EXTS = {".dimacs", ".col", ".max", ".clq"}
_METIS_EXTS = {".metis", ".chaco"}


def _load_any(path: Path) -> Graph:
    """Load a graph file, dispatching on extension."""
    ext = path.suffix.lower()
    if ext in _DIMACS_EXTS:
        return load_dimacs(path)
    if ext in _METIS_EXTS:
        return load_metis(path)
    return load_graph(path)


def _save_any(graph: Graph, path: Path) -> None:
    ext = path.suffix.lower()
    if ext in _DIMACS_EXTS:
        save_dimacs(graph, path)
    elif ext in _METIS_EXTS:
        save_metis(graph, path)
    else:
        save_graph(graph, path)


def _cmd_mincut(args: argparse.Namespace) -> int:
    graph = _load_any(args.graph)
    rounds: int | None = None
    if args.algorithm == "ampc":
        result = ampc_min_cut_boosted(
            graph, eps=args.eps, trials=args.trials, seed=args.seed
        )
        weight, side, rounds = result.weight, result.cut.side, result.ledger.rounds
        ledger_report = result.ledger.report() if args.ledger else None
    elif args.algorithm == "matula":
        from .baselines import matula_min_cut

        res = matula_min_cut(graph, eps=args.eps)
        weight, side, ledger_report = res.weight, res.cut.side, None
    elif args.algorithm == "karger-stein":
        from .baselines import karger_stein_boosted

        cut = karger_stein_boosted(graph, seed=args.seed)
        weight, side, ledger_report = cut.weight, cut.side, None
    elif args.algorithm == "exact":
        from .baselines import stoer_wagner_min_cut

        cut = stoer_wagner_min_cut(graph)
        weight, side, ledger_report = cut.weight, cut.side, None
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(args.algorithm)

    print(f"n={graph.num_vertices} m={graph.num_edges}")
    print(f"cut weight: {weight}")
    small = min((side, frozenset(graph.vertices()) - side), key=len)
    print(f"cut side ({len(small)} vertices): {sorted(map(str, small))[:20]}")
    if rounds is not None:
        print(f"AMPC rounds: {rounds}")
    if args.timeline and args.algorithm == "ampc":
        from .ampc import render_phase_table, render_timeline

        print(render_timeline(result.ledger, max_entries=24))
        print(render_phase_table(result.ledger))
    if args.verify:
        exact = exact_min_cut_weight(graph)
        print(f"exact (Stoer-Wagner): {exact}  ratio: {weight / exact:.4f}")
    if ledger_report:
        print(ledger_report)
    return 0


def _cmd_kcut(args: argparse.Namespace) -> int:
    graph = _load_any(args.graph)
    result = apx_split_kcut(graph, args.k, eps=args.eps, seed=args.seed)
    print(f"n={graph.num_vertices} m={graph.num_edges} k={args.k}")
    print(f"k-cut weight: {result.weight}")
    for i, part in enumerate(sorted(result.kcut.parts, key=len, reverse=True)):
        members = sorted(map(str, part))
        shown = members if len(members) <= 12 else members[:12] + ["..."]
        print(f"  part {i}: {len(part)} vertices: {shown}")
    print(f"iterations: {result.iterations}  AMPC rounds: {result.ledger.rounds}")
    if args.metrics:
        from .analysis.metrics import partition_summary

        print(partition_summary(graph, list(result.kcut.parts)).render())
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    graph = _load_any(args.graph)
    if graph.num_edges != graph.num_vertices - 1:
        print("error: input must be a tree (m == n-1)", file=sys.stderr)
        return 2
    edges = [(u, v) for u, v, _ in graph.edges()]
    decomp = low_depth_decomposition(graph.vertices(), edges)
    print(f"n={graph.num_vertices}  height={decomp.height} "
          f"(envelope {decomp.height_bound()})")
    levels = decomp.levels()
    for level in sorted(levels):
        members = sorted(map(str, levels[level]))
        shown = members if len(members) <= 16 else members[:16] + ["..."]
        print(f"  level {level}: {shown}")
    if args.process:
        print("splitting process:")
        for i, comps in enumerate(decomposition_forest_sequence(decomp), start=1):
            sizes = sorted((len(c) for c in comps), reverse=True)
            print(f"  T_{i}: {len(comps)} components, sizes {sizes[:12]}")
    return 0


def _cmd_sparsify(args: argparse.Namespace) -> int:
    graph = _load_any(args.graph)
    cert = sparsify_preserving_min_cut(graph, slack=args.slack)
    _save_any(cert, args.output)
    print(
        f"{graph.num_edges} edges "
        f"(total weight {graph.total_weight():.1f}) -> "
        f"{cert.num_edges} edges "
        f"(total weight {cert.total_weight():.1f})"
    )
    print(f"wrote {args.output}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    graph = _load_any(args.input)
    _save_any(graph, args.output)
    print(
        f"converted {args.input} -> {args.output} "
        f"(n={graph.num_vertices}, m={graph.num_edges})"
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis.writer import generate

    generate(args.output, fast=args.fast)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cut",
        description="AMPC cut algorithms (SPAA 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("mincut", help="minimum cut (approximate or exact)")
    p.add_argument("graph", type=Path, help="graph file (edge list/DIMACS/METIS)")
    p.add_argument(
        "--algorithm",
        choices=["ampc", "matula", "karger-stein", "exact"],
        default="ampc",
        help="ampc = paper Algorithm 1 (default)",
    )
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--trials", type=int, default=None, help="boosting trials")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", action="store_true", help="compare with exact")
    p.add_argument("--ledger", action="store_true", help="print round ledger")
    p.add_argument("--timeline", action="store_true",
                   help="print the round timeline + per-phase table (ampc only)")
    p.set_defaults(func=_cmd_mincut)

    p = sub.add_parser("kcut", help="(4+eps)-approximate Min k-Cut")
    p.add_argument("graph", type=Path)
    p.add_argument("k", type=int)
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--metrics", action="store_true",
                   help="print partition quality metrics")
    p.set_defaults(func=_cmd_kcut)

    p = sub.add_parser("decompose", help="low-depth decomposition of a tree")
    p.add_argument("graph", type=Path)
    p.add_argument("--process", action="store_true",
                   help="print the T_i splitting process")
    p.set_defaults(func=_cmd_decompose)

    p = sub.add_parser("sparsify", help="NI min-cut-preserving certificate")
    p.add_argument("graph", type=Path)
    p.add_argument("output", type=Path)
    p.add_argument("--slack", type=float, default=1.0,
                   help="certificate level = slack * min degree (>= 1)")
    p.set_defaults(func=_cmd_sparsify)

    p = sub.add_parser("convert", help="translate between graph formats")
    p.add_argument("input", type=Path)
    p.add_argument("output", type=Path)
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("experiments", help="regenerate EXPERIMENTS.md")
    p.add_argument("--output", type=Path, default=Path("EXPERIMENTS.md"))
    p.add_argument("--fast", action="store_true", help="smaller instances")
    p.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
