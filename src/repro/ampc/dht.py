"""Distributed hash tables ``H_0, ..., H_k`` of the AMPC model.

Each round ``i`` of an AMPC computation reads (adaptively, mid-round)
from ``H_{i-1}`` and writes (at end of round) to ``H_i``.  The simulator
represents a table as a dict sharded across :attr:`num_shards` buckets —
the sharding has no semantic effect but lets tests observe that keys
spread across machines, and gives the word-accounting a place to live.

Sizes are measured in **words**; see :func:`word_size` for the
convention (numbers/None = 1 word, containers = len + contents).  Exact
byte counts are irrelevant to the model; what matters is that budgets
scale as the theory says, so a consistent word convention suffices.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from .errors import MissingKeyError, TotalSpaceExceeded


def word_size(value: Any) -> int:
    """Number of model words a value occupies.

    Scalars (ints, floats, bools, None, short strings) take one word;
    tuples/lists/dicts/sets take one word per element plus their
    contents.  numpy arrays take one word per element.
    """
    if value is None or isinstance(value, (int, float, bool)):
        return 1
    if isinstance(value, str):
        return max(1, (len(value) + 7) // 8)
    if isinstance(value, (tuple, list, set, frozenset)):
        return 1 + sum(word_size(v) for v in value)
    if isinstance(value, dict):
        return 1 + sum(word_size(k) + word_size(v) for k, v in value.items())
    size = getattr(value, "size", None)
    if size is not None and isinstance(size, int):  # numpy arrays and scalars
        return max(1, int(size))
    return 4  # opaque objects: flat fee


class HashTable:
    """One hash table ``H_i``: a sharded key/value store with accounting."""

    def __init__(self, name: str, num_shards: int = 16):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self.name = name
        self.num_shards = num_shards
        self._shards: list[dict[Any, Any]] = [{} for _ in range(num_shards)]
        self._words = 0

    # ------------------------------------------------------------------
    def _shard_of(self, key: Any) -> dict[Any, Any]:
        return self._shards[hash(key) % self.num_shards]

    def get(self, key: Any) -> Any:
        shard = self._shard_of(key)
        try:
            return shard[key]
        except KeyError:
            raise MissingKeyError(key, self.name) from None

    def get_default(self, key: Any, default: Any = None) -> Any:
        return self._shard_of(key).get(key, default)

    def contains(self, key: Any) -> bool:
        return key in self._shard_of(key)

    def put(self, key: Any, value: Any) -> None:
        shard = self._shard_of(key)
        old = shard.get(key)
        if old is not None or key in shard:
            self._words -= word_size(key) + word_size(old)
        shard[key] = value
        self._words += word_size(key) + word_size(value)

    def put_many(self, items: Iterable[tuple[Any, Any]]) -> None:
        for key, value in items:
            self.put(key, value)

    # ------------------------------------------------------------------
    @property
    def words(self) -> int:
        """Total words stored (keys + values)."""
        return self._words

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def keys(self) -> Iterator[Any]:
        for shard in self._shards:
            yield from shard.keys()

    def items(self) -> Iterator[tuple[Any, Any]]:
        for shard in self._shards:
            yield from shard.items()

    def snapshot(self) -> "TableSnapshot":
        """An immutable read view of this table (see :class:`TableSnapshot`)."""
        return TableSnapshot(self.name, self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashTable({self.name!r}, entries={len(self)}, words={self.words})"


class TableSnapshot:
    """Read-only view of one hash table at a round boundary.

    Round backends hand machine programs a snapshot of ``H_{i-1}``
    instead of the table itself, so parallel machines can only ever
    *read* the previous round's state — the write surface (``put``)
    simply does not exist here.  The snapshot shares the underlying
    shard dicts without copying: the runtime guarantees nothing writes
    ``H_{i-1}`` while the round's programs execute (writes are buffered
    per machine and merged into ``H_i`` afterwards), so concurrent
    reads are safe in threads and consistent across forked processes.
    """

    __slots__ = ("name", "_shards", "num_shards")

    def __init__(self, name: str, shards: list[dict[Any, Any]]):
        self.name = name
        self._shards = shards
        self.num_shards = len(shards)

    def _shard_of(self, key: Any) -> dict[Any, Any]:
        return self._shards[hash(key) % self.num_shards]

    def get(self, key: Any) -> Any:
        shard = self._shard_of(key)
        try:
            return shard[key]
        except KeyError:
            raise MissingKeyError(key, self.name) from None

    def get_default(self, key: Any, default: Any = None) -> Any:
        return self._shard_of(key).get(key, default)

    def contains(self, key: Any) -> bool:
        return key in self._shard_of(key)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def keys(self) -> Iterator[Any]:
        for shard in self._shards:
            yield from shard.keys()

    def items(self) -> Iterator[tuple[Any, Any]]:
        for shard in self._shards:
            yield from shard.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableSnapshot({self.name!r}, entries={len(self)})"


def merge_writes(
    table: HashTable,
    write_lists: Iterable[list[tuple[Any, Any]]],
    combiner: Callable[[Any, Any], Any] | None = None,
) -> None:
    """Merge per-machine write buffers into ``table`` canonically.

    ``write_lists`` must be ordered by machine index (and each list by
    the machine's own write order).  Conflicting writes to the same key
    resolve last-writer-wins, or through ``combiner`` folded in that
    same canonical order — which is why the merged table is identical
    no matter which order the machines actually *executed* in: backends
    may run machines concurrently, but every backend hands its buffers
    to this function sorted by machine index.
    """
    for writes in write_lists:
        for key, value in writes:
            if combiner is not None and table.contains(key):
                value = combiner(table.get(key), value)
            table.put(key, value)


class DHTChain:
    """The sequence of hash tables across rounds, with a total-space cap.

    The AMPC definition gives a *fresh* table per round but bounds the
    size of **each** by the total-space budget.  The chain keeps the two
    live tables (previous = readable, next = writable) and retires older
    ones, tracking the high-water mark for the ledger.
    """

    def __init__(self, total_space_words: int, num_shards: int = 16):
        self.total_space_words = int(total_space_words)
        self.num_shards = num_shards
        self._tables: list[HashTable] = [HashTable("H0", num_shards)]
        self._high_water = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> HashTable:
        """The table readable this round (``H_{i-1}``)."""
        return self._tables[-1]

    @property
    def round_index(self) -> int:
        return len(self._tables) - 1

    @property
    def high_water(self) -> int:
        return max(self._high_water, self.current.words)

    # ------------------------------------------------------------------
    def advance(self, next_table: HashTable) -> None:
        """End a round: ``H_i`` becomes the readable table."""
        self._check_budget(next_table)
        self._high_water = max(self._high_water, self.current.words, next_table.words)
        self._tables.append(next_table)
        # Retire all but the newest readable table; the model allows the
        # algorithm to re-write anything it still needs forward.
        if len(self._tables) > 2:
            self._tables = self._tables[-2:]

    def make_next(self) -> HashTable:
        return HashTable(f"H{self.round_index + 1}", self.num_shards)

    def _check_budget(self, table: HashTable) -> None:
        if table.words > self.total_space_words:
            raise TotalSpaceExceeded(table.words, self.total_space_words)

    def seed(self, items: Iterable[tuple[Any, Any]]) -> None:
        """Load the input into ``H_0`` before the first round."""
        self.current.put_many(items)
        self._check_budget(self.current)
        self._high_water = max(self._high_water, self.current.words)
