"""Distributed hash tables ``H_0, ..., H_k`` of the AMPC model.

Each round ``i`` of an AMPC computation reads (adaptively, mid-round)
from ``H_{i-1}`` and writes (at end of round) to ``H_i``.  The simulator
represents a table as a dict sharded across :attr:`num_shards` buckets —
the sharding has no semantic effect but lets tests observe that keys
spread across machines, and gives the word-accounting a place to live.

Sizes are measured in **words**; see :func:`word_size` for the
convention (numbers/None = 1 word, containers = len + contents).  Exact
byte counts are irrelevant to the model; what matters is that budgets
scale as the theory says, so a consistent word convention suffices.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

import numpy as np

from .errors import AMPCUsageError, MissingKeyError, TotalSpaceExceeded

#: sentinel distinguishing "absent" from a stored ``None`` value in the
#: single-probe paths of :meth:`HashTable.put` and :func:`merge_writes`
_MISSING = object()


def word_size(value: Any) -> int:
    """Number of model words a value occupies.

    Scalars (ints, floats, bools, None, short strings) take one word;
    tuples/lists/dicts/sets take one word per element plus their
    contents.  numpy arrays take one word per element.
    """
    if value is None or isinstance(value, (int, float, bool)):
        return 1
    if isinstance(value, str):
        return max(1, (len(value) + 7) // 8)
    if isinstance(value, (tuple, list, set, frozenset)):
        return 1 + sum(word_size(v) for v in value)
    if isinstance(value, dict):
        return 1 + sum(word_size(k) + word_size(v) for k, v in value.items())
    size = getattr(value, "size", None)
    if size is not None and isinstance(size, int):  # numpy arrays and scalars
        return max(1, int(size))
    return 4  # opaque objects: flat fee


class HashTable:
    """One hash table ``H_i``: a sharded key/value store with accounting."""

    def __init__(self, name: str, num_shards: int = 16):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self.name = name
        self.num_shards = num_shards
        self._shards: list[dict[Any, Any]] = [{} for _ in range(num_shards)]
        self._words = 0

    # ------------------------------------------------------------------
    def _shard_of(self, key: Any) -> dict[Any, Any]:
        return self._shards[hash(key) % self.num_shards]

    def get(self, key: Any) -> Any:
        shard = self._shard_of(key)
        try:
            return shard[key]
        except KeyError:
            raise MissingKeyError(key, self.name) from None

    def get_default(self, key: Any, default: Any = None) -> Any:
        return self._shard_of(key).get(key, default)

    def contains(self, key: Any) -> bool:
        return key in self._shard_of(key)

    def put(self, key: Any, value: Any) -> None:
        # Single shard probe: a sentinel default tells "absent" apart
        # from a stored None without a second ``key in shard`` lookup.
        shard = self._shard_of(key)
        old = shard.get(key, _MISSING)
        if old is not _MISSING:
            self._words -= word_size(key) + word_size(old)
        shard[key] = value
        self._words += word_size(key) + word_size(value)

    def put_many(self, items: Iterable[tuple[Any, Any]]) -> None:
        for key, value in items:
            self.put(key, value)

    # ------------------------------------------------------------------
    @property
    def words(self) -> int:
        """Total words stored (keys + values)."""
        return self._words

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def keys(self) -> Iterator[Any]:
        for shard in self._shards:
            yield from shard.keys()

    def items(self) -> Iterator[tuple[Any, Any]]:
        for shard in self._shards:
            yield from shard.items()

    def snapshot(self) -> "TableSnapshot":
        """An immutable read view of this table (see :class:`TableSnapshot`)."""
        return TableSnapshot(self.name, self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashTable({self.name!r}, entries={len(self)}, words={self.words})"


class TableSnapshot:
    """Read-only view of one hash table at a round boundary.

    Round backends hand machine programs a snapshot of ``H_{i-1}``
    instead of the table itself, so parallel machines can only ever
    *read* the previous round's state — the write surface (``put``)
    simply does not exist here.  The snapshot shares the underlying
    shard dicts without copying: the runtime guarantees nothing writes
    ``H_{i-1}`` while the round's programs execute (writes are buffered
    per machine and merged into ``H_i`` afterwards), so concurrent
    reads are safe in threads and consistent across forked processes.
    """

    __slots__ = ("name", "_shards", "num_shards")

    def __init__(self, name: str, shards: list[dict[Any, Any]]):
        self.name = name
        self._shards = shards
        self.num_shards = len(shards)

    def _shard_of(self, key: Any) -> dict[Any, Any]:
        return self._shards[hash(key) % self.num_shards]

    def get(self, key: Any) -> Any:
        shard = self._shard_of(key)
        try:
            return shard[key]
        except KeyError:
            raise MissingKeyError(key, self.name) from None

    def get_default(self, key: Any, default: Any = None) -> Any:
        return self._shard_of(key).get(key, default)

    def contains(self, key: Any) -> bool:
        return key in self._shard_of(key)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def keys(self) -> Iterator[Any]:
        for shard in self._shards:
            yield from shard.keys()

    def items(self) -> Iterator[tuple[Any, Any]]:
        for shard in self._shards:
            yield from shard.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableSnapshot({self.name!r}, entries={len(self)})"


class ColumnTable:
    """One hash table ``H_i`` held as homogeneous key/value *columns*.

    The columnar sibling of :class:`HashTable` for rounds whose state is
    numeric: keys are an ``int64`` column kept sorted and unique, values
    a single homogeneous column (``int64`` or ``float64``).  Primitives
    pack ``(tag, index)`` identities into the int64 key space (see
    :mod:`repro.ampc.columnar`), so a whole logical column is one
    contiguous slice and :meth:`get_many`/:meth:`put_many` are single
    vectorized ``searchsorted``/merge passes instead of per-key dict
    probes.

    Word accounting follows the same convention as :func:`word_size`
    (one word per scalar): a table of ``N`` entries holds ``2 N`` words.
    Budget and ledger semantics are identical to :class:`HashTable` —
    the chain checks :attr:`words` against the total-space budget at
    every :meth:`DHTChain.advance`.
    """

    def __init__(self, name: str, value_dtype: Any = np.int64):
        self.name = name
        self.value_dtype = np.dtype(value_dtype)
        if self.value_dtype not in (np.dtype(np.int64), np.dtype(np.float64)):
            raise ValueError(
                f"ColumnTable values must be int64 or float64, "
                f"got {self.value_dtype}"
            )
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=self.value_dtype)

    # ------------------------------------------------------------------
    def put_many(self, keys: Any, values: Any) -> None:
        """Vectorized upsert; later entries of ``keys`` win on duplicates."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=self.value_dtype)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ValueError("keys and values must be equal-length 1-d arrays")
        if keys.size == 0:
            return
        all_keys = np.concatenate([self._keys, keys])
        all_values = np.concatenate([self._values, values])
        order = np.argsort(all_keys, kind="stable")
        sk = all_keys[order]
        sv = all_values[order]
        # Stable sort keeps insertion order within equal keys, so the
        # last element of each run is the newest write: last-writer-wins.
        keep = np.empty(sk.size, dtype=bool)
        keep[-1] = True
        np.not_equal(sk[1:], sk[:-1], out=keep[:-1])
        self._keys = sk[keep]
        self._values = sv[keep]

    def get_many(self, keys: Any, default: Any = None) -> np.ndarray:
        """Vectorized lookup.  Missing keys raise unless ``default`` set."""
        keys = np.asarray(keys, dtype=np.int64)
        idx = np.searchsorted(self._keys, keys)
        idx_c = np.minimum(idx, max(0, self._keys.size - 1))
        found = (
            (idx < self._keys.size) & (self._keys[idx_c] == keys)
            if self._keys.size
            else np.zeros(keys.shape, dtype=bool)
        )
        if not found.all():
            if default is None:
                missing = keys[~found]
                raise MissingKeyError(int(missing[0]), self.name)
            out = np.full(keys.shape, default, dtype=self.value_dtype)
            out[found] = self._values[idx_c[found]]
            return out
        return self._values[idx_c]

    def contains_many(self, keys: Any) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if self._keys.size == 0:
            return np.zeros(keys.shape, dtype=bool)
        idx = np.searchsorted(self._keys, keys)
        idx_c = np.minimum(idx, self._keys.size - 1)
        return (idx < self._keys.size) & (self._keys[idx_c] == keys)

    # ------------------------------------------------------------------
    # Scalar conveniences (same surface as HashTable where it is cheap)
    # ------------------------------------------------------------------
    def put(self, key: int, value: Any) -> None:
        self.put_many(np.array([key], dtype=np.int64), np.array([value]))

    def get(self, key: int) -> Any:
        return self.get_many(np.array([key], dtype=np.int64))[0]

    def get_default(self, key: int, default: Any = None) -> Any:
        if not self.contains(key):
            return default
        return self.get(key)

    def contains(self, key: int) -> bool:
        return bool(self.contains_many(np.array([key], dtype=np.int64))[0])

    # ------------------------------------------------------------------
    @property
    def words(self) -> int:
        """Total words stored: one per key plus one per value."""
        return int(self._keys.size + self._values.size)

    def __len__(self) -> int:
        return int(self._keys.size)

    def keys(self) -> Iterator[int]:
        return iter(self._keys.tolist())

    def items(self) -> Iterator[tuple[int, Any]]:
        return zip(self._keys.tolist(), self._values.tolist())

    def snapshot(self) -> "ColumnSnapshot":
        return ColumnSnapshot(self.name, self._keys, self._values)

    # ------------------------------------------------------------------
    def merge_columns(
        self,
        write_lists: Iterable[tuple[Any, Any]],
        combiner: str | None = None,
    ) -> None:
        """Merge per-machine columnar write buffers canonically.

        ``write_lists`` must be ordered by machine index, mirroring
        :func:`merge_writes`.  Conflicts resolve last-writer-wins in
        that canonical order, or through ``combiner`` (``"min"`` /
        ``"sum"``, the order-independent reductions the primitives
        use) — so the merged table never depends on which machine
        actually executed first.
        """
        parts_k = [np.asarray(k, dtype=np.int64) for k, _ in write_lists]
        parts_v = [np.asarray(v, dtype=self.value_dtype) for _, v in write_lists]
        if not parts_k:
            return
        keys = np.concatenate(parts_k) if len(parts_k) > 1 else parts_k[0]
        values = np.concatenate(parts_v) if len(parts_v) > 1 else parts_v[0]
        if combiner is None:
            self.put_many(keys, values)
            return
        if keys.size:
            order = np.argsort(keys, kind="stable")
            sk, sv = keys[order], values[order]
            starts = np.ones(sk.size, dtype=bool)
            np.not_equal(sk[1:], sk[:-1], out=starts[1:])
            run_starts = np.flatnonzero(starts)
            if combiner == "min":
                reduced = np.minimum.reduceat(sv, run_starts)
            elif combiner == "sum":
                reduced = np.add.reduceat(sv, run_starts)
            else:
                raise ValueError(f"unknown columnar combiner {combiner!r}")
            keys, values = sk[run_starts], reduced
            if combiner == "min":
                old = self.contains_many(keys)
                if old.any():
                    values = values.copy()
                    values[old] = np.minimum(
                        values[old], self.get_many(keys[old])
                    )
            elif combiner == "sum":
                old = self.contains_many(keys)
                if old.any():
                    values = values.copy()
                    values[old] = values[old] + self.get_many(keys[old])
        self.put_many(keys, values)

    def carry_forward(self, snapshot: "ColumnSnapshot") -> None:
        """Copy keys of the previous table that nothing overwrote."""
        prev_k, prev_v = snapshot.columns()
        if prev_k.size == 0:
            return
        overwritten = self.contains_many(prev_k)
        if overwritten.all():
            return
        self.put_many(prev_k[~overwritten], prev_v[~overwritten])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnTable({self.name!r}, entries={len(self)}, "
            f"dtype={self.value_dtype}, words={self.words})"
        )


class ColumnSnapshot:
    """Read-only columnar view of one table at a round boundary.

    The columnar analogue of :class:`TableSnapshot`: the runtime hands
    machine slices this instead of the table, so parallel workers can
    only read.  The arrays are shared zero-copy (flagged read-only) —
    the shm backend publishes exactly these two columns as a
    shared-memory block.
    """

    __slots__ = ("name", "_keys", "_values")

    def __init__(self, name: str, keys: np.ndarray, values: np.ndarray):
        self.name = name
        keys = keys.view()
        values = values.view()
        keys.flags.writeable = False
        values.flags.writeable = False
        self._keys = keys
        self._values = values

    def columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The (keys, values) columns, read-only."""
        return self._keys, self._values

    @property
    def value_dtype(self) -> np.dtype:
        return self._values.dtype

    def get_many(self, keys: Any, default: Any = None) -> np.ndarray:
        idx = np.searchsorted(self._keys, np.asarray(keys, dtype=np.int64))
        idx_c = np.minimum(idx, max(0, self._keys.size - 1))
        keys = np.asarray(keys, dtype=np.int64)
        found = (
            (idx < self._keys.size) & (self._keys[idx_c] == keys)
            if self._keys.size
            else np.zeros(keys.shape, dtype=bool)
        )
        if not found.all():
            if default is None:
                raise MissingKeyError(int(keys[~found][0]), self.name)
            out = np.full(keys.shape, default, dtype=self._values.dtype)
            out[found] = self._values[idx_c[found]]
            return out
        return self._values[idx_c]

    def get(self, key: int) -> Any:
        return self.get_many(np.array([key], dtype=np.int64))[0]

    def contains(self, key: int) -> bool:
        idx = int(np.searchsorted(self._keys, np.int64(key)))
        return idx < self._keys.size and int(self._keys[idx]) == int(key)

    def __len__(self) -> int:
        return int(self._keys.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnSnapshot({self.name!r}, entries={len(self)})"


def merge_writes(
    table: HashTable,
    write_lists: Iterable[list[tuple[Any, Any]]],
    combiner: Callable[[Any, Any], Any] | None = None,
) -> None:
    """Merge per-machine write buffers into ``table`` canonically.

    ``write_lists`` must be ordered by machine index (and each list by
    the machine's own write order).  Conflicting writes to the same key
    resolve last-writer-wins, or through ``combiner`` folded in that
    same canonical order — which is why the merged table is identical
    no matter which order the machines actually *executed* in: backends
    may run machines concurrently, but every backend hands its buffers
    to this function sorted by machine index.
    """
    for writes in write_lists:
        for key, value in writes:
            if combiner is not None:
                # One probe instead of contains()+get(): the sentinel
                # default keeps stored-None combinable.
                old = table.get_default(key, _MISSING)
                if old is not _MISSING:
                    value = combiner(old, value)
            table.put(key, value)


class DHTChain:
    """The sequence of hash tables across rounds, with a total-space cap.

    The AMPC definition gives a *fresh* table per round but bounds the
    size of **each** by the total-space budget.  The chain keeps the two
    live tables (previous = readable, next = writable) and retires older
    ones, tracking the high-water mark for the ledger.
    """

    def __init__(self, total_space_words: int, num_shards: int = 16):
        self.total_space_words = int(total_space_words)
        self.num_shards = num_shards
        self._tables: list[HashTable | ColumnTable] = [HashTable("H0", num_shards)]
        self._high_water = 0
        self._rounds_advanced = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> HashTable | ColumnTable:
        """The table readable this round (``H_{i-1}``)."""
        return self._tables[-1]

    @property
    def round_index(self) -> int:
        return len(self._tables) - 1

    @property
    def high_water(self) -> int:
        return max(self._high_water, self.current.words)

    # ------------------------------------------------------------------
    def advance(self, next_table: HashTable | ColumnTable) -> None:
        """End a round: ``H_i`` becomes the readable table."""
        self._check_budget(next_table)
        self._high_water = max(self._high_water, self.current.words, next_table.words)
        self._tables.append(next_table)
        self._rounds_advanced += 1
        # Retire all but the newest readable table; the model allows the
        # algorithm to re-write anything it still needs forward.
        if len(self._tables) > 2:
            self._tables = self._tables[-2:]

    def make_next(self) -> HashTable:
        return HashTable(f"H{self.round_index + 1}", self.num_shards)

    def make_next_column(self, value_dtype: Any = np.int64) -> ColumnTable:
        return ColumnTable(f"H{self.round_index + 1}", value_dtype=value_dtype)

    def _check_budget(self, table: HashTable | ColumnTable) -> None:
        if table.words > self.total_space_words:
            raise TotalSpaceExceeded(table.words, self.total_space_words)

    def _check_seedable(self) -> None:
        if self._rounds_advanced:
            raise AMPCUsageError(
                f"DHTChain.seed called after {self._rounds_advanced} round(s) "
                "already advanced: input can only be loaded into H_0 before "
                "the first round.  Write mid-computation state through a "
                "round's machine programs instead."
            )

    def seed(self, items: Iterable[tuple[Any, Any]]) -> None:
        """Load the input into ``H_0`` before the first round.

        Raises :class:`~repro.ampc.errors.AMPCUsageError` if the chain
        has already advanced — seeding would silently write "input"
        into the middle of a computation's table sequence.
        """
        self._check_seedable()
        self.current.put_many(items)
        self._check_budget(self.current)
        self._high_water = max(self._high_water, self.current.words)

    def seed_table(self, table: HashTable | ColumnTable) -> None:
        """Replace ``H_0`` wholesale (columnar seeding).

        Same contract as :meth:`seed`: only legal before the first
        round, and only onto an empty ``H_0``.
        """
        self._check_seedable()
        if len(self.current):
            raise AMPCUsageError(
                "DHTChain.seed_table would discard an already-seeded H_0"
            )
        self._check_budget(table)
        self._tables = [table]
        self._high_water = max(self._high_water, table.words)
