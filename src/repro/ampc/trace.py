"""Round-trace rendering and export for ledger post-mortems.

The :class:`~repro.ampc.ledger.RoundLedger` is the accounting record;
this module is the *lens*: it turns a ledger into

* :func:`render_timeline` — an ASCII per-entry timeline with round
  ticks and a local-memory bar, the thing to look at when a run's
  round count surprises you (``repro-cut mincut --ledger`` prints the
  flat report; the timeline shows *where* the rounds went);
* :func:`summarize_phases` — entries grouped by phase label (the text
  before the first ``:`` of each reason), with round/query subtotals —
  e.g. all ``list rank`` rounds across every level of a run;
* :func:`export_trace` — a list of plain dicts (JSON-ready) for
  notebooks and external tooling.

Everything here is read-only over the ledger: tracing can never change
what was measured.
"""

from __future__ import annotations

from typing import Any

from .ledger import RoundLedger

_BAR_WIDTH = 24


def export_trace(ledger: RoundLedger) -> list[dict[str, Any]]:
    """The ledger's entries as JSON-ready dicts (one per entry)."""
    out: list[dict[str, Any]] = []
    cumulative = 0
    for entry in ledger.entries:
        cumulative += entry.rounds
        out.append(
            {
                "rounds": entry.rounds,
                "cumulative_rounds": cumulative,
                "kind": entry.kind,
                "reason": entry.reason,
                "local_peak": entry.local_peak,
                "total_peak": entry.total_peak,
                "queries": entry.queries,
            }
        )
    return out


def phase_of(reason: str) -> str:
    """The phase label of a ledger reason: text before the first ':'.

    Reasons follow the convention ``"<phase>: <detail>"`` throughout
    the primitives ("list rank: contract level 2") and the algorithms
    ("Algorithm 1 level 0: ...").  Reasons without a colon are their
    own phase.
    """
    head = reason.split(":", 1)[0].strip()
    return head if head else reason.strip()


def summarize_phases(ledger: RoundLedger) -> list[dict[str, Any]]:
    """Per-phase subtotals, in first-appearance order."""
    order: list[str] = []
    agg: dict[str, dict[str, Any]] = {}
    for entry in ledger.entries:
        phase = phase_of(entry.reason)
        if phase not in agg:
            order.append(phase)
            agg[phase] = {
                "phase": phase,
                "entries": 0,
                "rounds": 0,
                "queries": 0,
                "local_peak": 0,
                "kinds": set(),
            }
        rec = agg[phase]
        rec["entries"] += 1
        rec["rounds"] += entry.rounds
        rec["queries"] += entry.queries
        rec["local_peak"] = max(rec["local_peak"], entry.local_peak)
        rec["kinds"].add(entry.kind)
    out = []
    for phase in order:
        rec = agg[phase]
        rec["kinds"] = "+".join(sorted(rec["kinds"]))
        out.append(rec)
    return out


def render_timeline(
    ledger: RoundLedger, *, width: int = 72, max_entries: int | None = None
) -> str:
    """ASCII timeline: one line per entry, memory bar on the right.

    ``max_entries`` truncates long traces in the middle (head and tail
    are what post-mortems need); the memory bar is scaled to the
    ledger's local-memory high-water mark.
    """
    entries = list(ledger.entries)
    if not entries:
        return "(empty ledger)"
    scale = max(e.local_peak for e in entries) or 1
    total = sum(e.rounds for e in entries)

    lines = [
        f"timeline: {len(entries)} entries, {total} rounds "
        f"({ledger.measured_rounds} measured + {ledger.charged_rounds} "
        f"charged), local high-water {ledger.local_peak} words"
    ]
    shown = entries
    skipped = 0
    if max_entries is not None and len(entries) > max_entries:
        head = max_entries // 2
        tail = max_entries - head
        skipped = len(entries) - head - tail
        shown = entries[:head] + [None] + entries[-tail:]  # type: ignore[list-item]

    reason_width = max(16, width - _BAR_WIDTH - 22)
    for entry in shown:
        if entry is None:
            lines.append(f"  ... {skipped} entries elided ...")
            continue
        bar_len = round(_BAR_WIDTH * entry.local_peak / scale)
        bar = "#" * bar_len + "." * (_BAR_WIDTH - bar_len)
        reason = entry.reason
        if len(reason) > reason_width:
            reason = reason[: reason_width - 1] + "…"
        mark = "M" if entry.kind == "measured" else "C"
        lines.append(
            f"  r{entry.rounds:>3} [{mark}] {reason:<{reason_width}} |{bar}|"
        )
    return "\n".join(lines)


def render_phase_table(ledger: RoundLedger) -> str:
    """Fixed-width per-phase summary table."""
    rows = summarize_phases(ledger)
    if not rows:
        return "(empty ledger)"
    phase_w = max(len(r["phase"]) for r in rows)
    phase_w = max(phase_w, 5)
    header = (
        f"{'phase':<{phase_w}} | entries | rounds | queries | "
        f"local_peak | kinds"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['phase']:<{phase_w}} | {r['entries']:>7} | "
            f"{r['rounds']:>6} | {r['queries']:>7} | "
            f"{r['local_peak']:>10} | {r['kinds']}"
        )
    return "\n".join(lines)
