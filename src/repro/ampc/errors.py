"""Exception types for the AMPC simulator.

The AMPC model (Behnezhad et al., SPAA 2019) constrains each machine to
``O(n^eps)`` words of local memory and restricts when machines may read
(any time, adaptively, from the previous round's hash table) and write
(only at the end of a round, to the next hash table).  The simulator
raises a dedicated exception for each violated constraint so that tests
can assert the model is actually enforced rather than merely documented.
"""

from __future__ import annotations


class AMPCError(Exception):
    """Base class for all AMPC simulator errors."""


class MemoryLimitExceeded(AMPCError):
    """A machine exceeded its local memory budget during a round.

    Attributes
    ----------
    used:
        Number of words the machine attempted to hold.
    limit:
        The per-machine word budget in force.
    machine:
        Identifier of the offending machine program.
    """

    def __init__(self, used: int, limit: int, machine: object = None):
        self.used = int(used)
        self.limit = int(limit)
        self.machine = machine
        super().__init__(
            f"machine {machine!r} used {used} words, exceeding the "
            f"local-memory budget of {limit} words"
        )

    def __reduce__(self):
        # Exceptions with multi-arg __init__ need explicit reduction to
        # survive the pickle hop from a process-backend worker.
        return (type(self), (self.used, self.limit, self.machine))


class TotalSpaceExceeded(AMPCError):
    """The distributed hash tables exceeded the total-space budget."""

    def __init__(self, used: int, limit: int):
        self.used = int(used)
        self.limit = int(limit)
        super().__init__(
            f"distributed hash tables hold {used} words, exceeding the "
            f"total-space budget of {limit} words"
        )

    def __reduce__(self):
        return (type(self), (self.used, self.limit))


class ProtocolError(AMPCError):
    """An operation violated the AMPC round protocol.

    Examples: reading from the *current* round's table (only the previous
    round's table is readable mid-round), or writing outside a round.
    """


class AMPCUsageError(AMPCError):
    """The simulator API was used in a way that has no model meaning.

    Raised eagerly (instead of silently producing nonsense) when host
    code drives the runtime outside its contract — e.g. seeding a DHT
    chain that has already advanced past round 0, which would write
    "input" into the middle of a computation's table sequence.
    """


class MissingKeyError(AMPCError, KeyError):
    """An adaptive read referenced a key absent from the hash table."""

    def __init__(self, key: object, table: str = ""):
        self.key = key
        self.table = table
        super().__init__(f"key {key!r} not present in hash table {table!r}")

    def __reduce__(self):
        return (type(self), (self.key, self.table))
