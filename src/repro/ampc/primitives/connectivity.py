"""Connected components.

Two entry points with different fidelity, per DESIGN.md section 5:

* :func:`ampc_forest_components` — **genuinely executed**: components
  of a forest via the Euler-tour rooting machinery (component id =
  root), measured rounds;
* :func:`ampc_graph_components` — general graphs.  The paper consumes
  general connectivity as a black box from Behnezhad et al. [4]
  ("Parallel graph algorithms in constant adaptive rounds"), which is
  its own paper-sized system.  We compute components with union–find
  at host speed and **charge** the ``O(1/eps)`` rounds / ``O(n^eps)``
  local / ``O(m)`` total budget that [4] proves.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from ..config import AMPCConfig
from ..ledger import RoundLedger
from .euler import ampc_root_forest


def ampc_forest_components(
    config: AMPCConfig,
    vertices: Sequence[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    *,
    ledger: RoundLedger | None = None,
) -> dict[Hashable, Hashable]:
    """Component representative (the root) for each vertex of a forest."""
    rooted = ampc_root_forest(config, vertices, edges, ledger=ledger)
    return rooted.root_of


def ampc_graph_components(
    config: AMPCConfig,
    vertices: Sequence[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    *,
    ledger: RoundLedger | None = None,
) -> dict[Hashable, Hashable]:
    """Component representative for each vertex of an arbitrary graph.

    Charged per Behnezhad et al. [4]: ``O(1/eps)`` rounds, ``O(n^eps)``
    local memory, ``O(n + m)`` total space.
    """
    parent: dict[Hashable, Hashable] = {v: v for v in vertices}

    def find(v: Hashable) -> Hashable:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    m = 0
    for u, v in edges:
        m += 1
        ru, rv = find(u), find(v)
        if ru != rv:
            if _stable_key(ru) < _stable_key(rv):
                parent[rv] = ru
            else:
                parent[ru] = rv

    if ledger is not None:
        ledger.charge(
            config.rounds_per_primitive,
            "Behnezhad et al. [4]: graph connectivity in O(1/eps) adaptive rounds",
            local_peak=config.local_memory_words,
            total_peak=len(parent) + m,
        )
    return {v: find(v) for v in vertices}


def _stable_key(v: Hashable):
    return (str(type(v)), str(v))
