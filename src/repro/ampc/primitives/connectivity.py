"""Connected components.

Two entry points with different fidelity, per DESIGN.md section 5:

* :func:`ampc_forest_components` — **genuinely executed**: components
  of a forest via the Euler-tour rooting machinery (component id =
  root), measured rounds;
* :func:`ampc_graph_components` — general graphs.  The paper consumes
  general connectivity as a black box from Behnezhad et al. [4]
  ("Parallel graph algorithms in constant adaptive rounds"), which is
  its own paper-sized system.  We compute components with union–find
  at host speed and **charge** the ``O(1/eps)`` rounds / ``O(n^eps)``
  local / ``O(m)`` total budget that [4] proves.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from ..backends import resolve_backend
from ..config import AMPCConfig
from ..ledger import RoundLedger
from .euler import ampc_root_forest


def ampc_forest_components(
    config: AMPCConfig,
    vertices: Sequence[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    *,
    ledger: RoundLedger | None = None,
) -> dict[Hashable, Hashable]:
    """Component representative (the root) for each vertex of a forest."""
    rooted = ampc_root_forest(config, vertices, edges, ledger=ledger)
    return rooted.root_of


def ampc_graph_components(
    config: AMPCConfig,
    vertices: Sequence[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    *,
    ledger: RoundLedger | None = None,
) -> dict[Hashable, Hashable]:
    """Component representative for each vertex of an arbitrary graph.

    Charged per Behnezhad et al. [4]: ``O(1/eps)`` rounds, ``O(n^eps)``
    local memory, ``O(n + m)`` total space.

    When the selected backend is columnar-capable and the vertices are
    plain ints, the components are computed by vectorized array hooking
    + pointer doubling (the PR 4 DSU idiom) instead of the per-edge
    Python union–find — same charged budget, same representatives
    (the union rule makes every component's representative its
    ``_stable_key`` minimum, which the vectorized path computes
    directly), interpreter-speed dispatch removed.
    """
    backend = resolve_backend(None, config_backend=getattr(config, "backend", None))
    if backend.supports_columnar and all(type(v) is int for v in vertices):
        return _graph_components_vectorized(config, vertices, edges, ledger=ledger)

    parent: dict[Hashable, Hashable] = {v: v for v in vertices}

    def find(v: Hashable) -> Hashable:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    m = 0
    for u, v in edges:
        m += 1
        ru, rv = find(u), find(v)
        if ru != rv:
            if _stable_key(ru) < _stable_key(rv):
                parent[rv] = ru
            else:
                parent[ru] = rv

    if ledger is not None:
        ledger.charge(
            config.rounds_per_primitive,
            "Behnezhad et al. [4]: graph connectivity in O(1/eps) adaptive rounds",
            local_peak=config.local_memory_words,
            total_peak=len(parent) + m,
        )
    return {v: find(v) for v in vertices}


def _graph_components_vectorized(
    config: AMPCConfig,
    vertices: Sequence[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    *,
    ledger: RoundLedger | None = None,
) -> dict[Hashable, Hashable]:
    """Array hooking + pointer doubling over dense vertex ids.

    Bit-identical to the union–find above: that union rule (smaller
    ``_stable_key`` becomes the root) makes each component's final
    representative exactly the component's ``_stable_key`` minimum, so
    this path ranks vertices by stable key once, hooks every edge onto
    the smaller-ranked root, and compresses by pointer doubling until
    fixpoint.  Unknown edge endpoints raise the same ``KeyError`` the
    dict lookup would.
    """
    id_map: dict[Hashable, int] = {}
    order: list[Hashable] = []
    for v in vertices:
        if v not in id_map:
            id_map[v] = len(order)
            order.append(v)
    n = len(order)

    m = 0
    eu_list: list[int] = []
    ev_list: list[int] = []
    for u, v in edges:
        m += 1
        eu_list.append(id_map[u])
        ev_list.append(id_map[v])

    # Rank vertices by _stable_key (all ints here, so the type prefix is
    # constant and the order is the lexicographic order of str(v)).
    rank = np.empty(n, dtype=np.int64)
    by_key = np.argsort(np.array([str(v) for v in order]))
    rank[by_key] = np.arange(n)

    parent = np.arange(n, dtype=np.int64)  # over rank space
    if m:
        eu = rank[np.array(eu_list, dtype=np.int64)]
        ev = rank[np.array(ev_list, dtype=np.int64)]
        while True:
            # full path compression by pointer doubling
            while True:
                gp = parent[parent]
                if np.array_equal(gp, parent):
                    break
                parent = gp
            ru, rv = parent[eu], parent[ev]
            lo = np.minimum(ru, rv)
            hi = np.maximum(ru, rv)
            live = lo != hi
            if not live.any():
                break
            # hook: each still-split edge drags the larger root onto the
            # smaller; minimum.at resolves races toward the component min
            np.minimum.at(parent, hi[live], lo[live])
    roots = parent[rank]  # vertex id -> representative's rank
    rep_of = [order[by_key[r]] for r in roots.tolist()]

    if ledger is not None:
        ledger.charge(
            config.rounds_per_primitive,
            "Behnezhad et al. [4]: graph connectivity in O(1/eps) adaptive rounds",
            local_peak=config.local_memory_words,
            total_peak=n + m,
        )
    return {v: rep_of[id_map[v]] for v in vertices}


def _stable_key(v: Hashable):
    return (str(type(v)), str(v))
