"""Distributed sample sort in ``O(1)`` AMPC rounds.

The classic PSRS (Parallel Sorting by Regular Sampling) pipeline,
expressed as five synchronous rounds:

1. **local sort** — each chunk machine sorts its chunk and emits
   ``p`` regular samples;
2. **pivot selection** — one coordinator machine reads all samples and
   broadcasts ``B-1`` pivots (regular sampling keeps each final bucket
   within a factor ~2 of the average, so buckets fit on machines);
3. **partition** — each chunk machine splits its sorted run by the
   pivots and writes one segment per (bucket, chunk) pair plus the
   segment's size;
4. **bucket offsets** — the coordinator prefix-sums bucket totals into
   global offsets (bucket count ≤ machine memory by construction);
5. **merge** — each bucket's piece streams are k-way merged.  Segments
   are stored as small *pieces* and merged streaming (one live piece
   per source), so no machine ever holds a whole bucket; when a bucket
   has more sources than the memory budget allows live at once, the
   merge runs as a tree with fan-in derived from the budget, adding
   ``O(log_fan(sources)) = O(1/eps)`` rounds.

Sorting is the workhorse under the paper's Lemma 14 (sorting interval
endpoints) and under MST construction (Kruskal order), so its round
cost being O(1) is what lets those lemmas claim O(1/eps) rounds.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import Any, Callable, Sequence

import numpy as np

from .. import columnar as col
from ..config import AMPCConfig
from ..dht import word_size
from ..ledger import RoundLedger
from ..machine import MachineContext
from ..runtime import AMPCRuntime
from .distribute import chunk_size_for, seed_chunks

#: samples taken from each chunk in round 1
_SAMPLES_PER_CHUNK = 8

#: words per segment piece (round 3).  Small pieces let the merge round
#: stream a bucket holding only one piece per source chunk, keeping the
#: bucket machine within O(n^eps) even under pivot skew.
_PIECE_WORDS = 4


def ampc_sort(
    config: AMPCConfig,
    values: Sequence[Any],
    *,
    key: Callable[[Any], Any] | None = None,
    ledger: RoundLedger | None = None,
) -> list[Any]:
    """Sort ``values`` with a genuinely-executed distributed sample sort.

    Returns the sorted list.  Rounds/memory/queries are recorded in
    ``ledger`` (a fresh one is created when omitted; pass the pipeline's
    ledger to accumulate).
    """
    keyf = key if key is not None else (lambda x: x)
    n = len(values)
    runtime = AMPCRuntime(config, ledger=ledger)
    if n <= 1:
        # Degenerate input: still account one round (a machine must look).
        runtime.seed([(("in", "chunk", 0), list(values)), (("in", "meta"), (n, 1, 1))])
        runtime.round(
            [(lambda ctx: ctx.write(("out", "chunk", 0), ctx.read(("in", "chunk", 0))), None)],
            "sample sort: trivial input",
        )
        return list(values)

    if runtime.backend.supports_columnar and key is None and _sort_columnar_ok(values):
        return _sort_columnar(runtime, values)

    n_chunks, _ = seed_chunks(runtime, "in", values)
    decorated_key = keyf

    # Sampling density: the pivot coordinator must hold every sample, so
    # scale samples-per-chunk down when there are many chunks.  Sparser
    # samples skew buckets, which the merge tree below absorbs.
    samples_per_chunk = max(
        1,
        min(
            _SAMPLES_PER_CHUNK,
            (config.local_memory_words // 3) // max(1, n_chunks),
        ),
    )

    # ------------------------------------------------------------ round 1
    def local_sort(ctx: MachineContext) -> None:
        j = ctx.payload
        chunk = ctx.read(("in", "chunk", j))
        words = word_size(chunk)
        ctx.hold(words)
        run = sorted(chunk, key=decorated_key)
        step = max(1, len(run) // samples_per_chunk)
        samples = [decorated_key(x) for x in run[::step]][:samples_per_chunk]
        ctx.release(words)  # the run is handed off to the write buffer
        ctx.write(("run", j), run)
        ctx.write(("samples", j), samples)

    runtime.round(
        [(local_sort, j) for j in range(n_chunks)],
        "sample sort: local sort + sampling",
        carry_forward=True,
    )

    # ------------------------------------------------------------ round 2
    n_buckets = n_chunks

    def select_pivots(ctx: MachineContext) -> None:
        all_samples: list[Any] = []
        for j in range(n_chunks):
            s = ctx.read(("samples", j))
            all_samples.extend(s)
            ctx.hold(len(s))
        all_samples.sort()
        step = max(1, len(all_samples) // n_buckets)
        pivots = all_samples[step::step][: n_buckets - 1]
        ctx.write(("pivots",), pivots)
        ctx.release(len(all_samples))

    runtime.round(
        [(select_pivots, None)],
        "sample sort: pivot selection",
        carry_forward=True,
    )

    # ------------------------------------------------------------ round 3
    # Segments are written as small *pieces* so the merge round can
    # stream them: a bucket machine never holds a whole (possibly
    # skewed) bucket, only one piece per source chunk.
    def partition(ctx: MachineContext) -> None:
        j = ctx.payload
        run = ctx.read(("run", j))
        words = word_size(run)
        ctx.hold(words)
        pivots = ctx.read(("pivots",))
        run_keys = [decorated_key(x) for x in run]
        cuts = [0] + [bisect.bisect_right(run_keys, p) for p in pivots] + [len(run)]
        ctx.release(words)  # pieces stream straight to the write buffer
        for b in range(len(cuts) - 1):
            seg = run[cuts[b] : cuts[b + 1]]
            n_pieces = 0
            piece: list[Any] = []
            piece_words = 0
            for x in seg:
                w = word_size(x)
                if piece and piece_words + w > _PIECE_WORDS:
                    ctx.write(("seg", b, j, n_pieces), piece)
                    n_pieces += 1
                    piece, piece_words = [], 0
                piece.append(x)
                piece_words += w
            if piece:
                ctx.write(("seg", b, j, n_pieces), piece)
                n_pieces += 1
            ctx.write(("segsize", b, j), len(seg))
            ctx.write(("segpieces", b, j), n_pieces)

    runtime.round(
        [(partition, j) for j in range(n_chunks)],
        "sample sort: partition by pivots",
        carry_forward=True,
    )

    # ------------------------------------------------------------ round 4
    def bucket_offsets(ctx: MachineContext) -> None:
        totals = []
        for b in range(n_buckets):
            total = 0
            for j in range(n_chunks):
                total += ctx.read_default(("segsize", b, j), 0)
            totals.append(total)
        ctx.hold(len(totals))
        offset = 0
        for b, total in enumerate(totals):
            ctx.write(("bucketoff", b), offset)
            offset += total
        ctx.release(len(totals))

    runtime.round(
        [(bucket_offsets, None)],
        "sample sort: bucket offsets",
        carry_forward=True,
    )

    # ---------------------------------------------------- rounds 5..5+L
    # Tree merge of each bucket's piece streams.  Fan-in is derived from
    # the machine budget: each live source costs ~(_PIECE_WORDS + 2)
    # words, and the output buffer another piece.
    fan_in = max(2, (config.local_memory_words // 2) // (_PIECE_WORDS + 2))

    # Host control-plane: piece counts per (bucket, source) decide the
    # merge-tree shape; the pieces themselves stay in the DHT.
    sources_of: dict[int, list[tuple[tuple, int]]] = {}
    for b in range(n_buckets):
        lst = []
        for j in range(n_chunks):
            cnt = runtime.table.get_default(("segpieces", b, j), 0)
            if cnt:
                lst.append((("seg", b, j), cnt))
        sources_of[b] = lst

    merge_level = 0
    while any(len(srcs) > fan_in for srcs in sources_of.values()):
        programs = []
        group_meta: list[tuple[int, int, tuple]] = []
        for b, srcs in sources_of.items():
            if len(srcs) <= fan_in:
                continue
            for g in range(0, len(srcs), fan_in):
                group = srcs[g : g + fan_in]
                out_prefix = ("mseg", b, merge_level, g // fan_in)
                programs.append(
                    (
                        _make_group_merger(group, out_prefix, decorated_key),
                        None,
                    )
                )
                group_meta.append((b, g // fan_in, out_prefix))
        runtime.round(
            programs,
            f"sample sort: merge-tree level {merge_level}",
            carry_forward=True,
        )
        new_sources: dict[int, list[tuple[tuple, int]]] = {}
        for b, srcs in sources_of.items():
            if len(srcs) <= fan_in:
                new_sources[b] = srcs
            else:
                new_sources[b] = []
        for b, grp, out_prefix in group_meta:
            cnt = runtime.table.get(("mcount",) + out_prefix)
            new_sources[b].append((out_prefix, cnt))
        sources_of = new_sources
        merge_level += 1

    out_chunk = chunk_size_for(config)

    def merge_bucket(ctx: MachineContext) -> None:
        b = ctx.payload
        offset = ctx.read(("bucketoff", b))
        emitted = 0
        piece: list[Any] = []
        piece_words = 0
        piece_start = offset

        def emit(x: Any) -> None:
            nonlocal piece, piece_words, piece_start, emitted
            w = word_size(x)
            if piece and piece_words + w > out_chunk:
                ctx.write(("outpiece", piece_start), piece)
                emitted += len(piece)
                piece, piece_words, piece_start = [], 0, offset + emitted
            piece.append(x)
            piece_words += w

        _streaming_merge(ctx, sources_of[b], decorated_key, emit)
        if piece:
            ctx.write(("outpiece", piece_start), piece)

    runtime.round(
        [(merge_bucket, b) for b in range(n_buckets)],
        "sample sort: final streaming merge",
        carry_forward=True,
    )

    # Host-side reassembly (no extra round: this is reading the output).
    pieces = sorted(
        (
            (key_[1], val)
            for key_, val in runtime.table.items()
            if isinstance(key_, tuple) and key_ and key_[0] == "outpiece"
        ),
        key=lambda kv: kv[0],
    )
    out: list[Any] = []
    for _, piece in pieces:
        out.extend(piece)
    return out


class _StreamSource:
    """One piece stream being merged: holds a single live piece."""

    __slots__ = ("ctx", "prefix", "n_pieces", "next_piece", "piece", "pos", "words")

    def __init__(self, ctx: MachineContext, prefix: tuple, n_pieces: int):
        self.ctx = ctx
        self.prefix = prefix
        self.n_pieces = n_pieces
        self.next_piece = 0
        self.piece: list[Any] = []
        self.pos = 0
        self.words = 0

    def refill(self) -> bool:
        if self.pos < len(self.piece):
            return True
        self.ctx.release(self.words)
        self.words = 0
        if self.next_piece >= self.n_pieces:
            return False
        self.piece = self.ctx.read(self.prefix + (self.next_piece,))
        self.words = word_size(self.piece)
        self.ctx.hold(self.words)
        self.next_piece += 1
        self.pos = 0
        return True

    def head(self):
        return self.piece[self.pos]

    def advance(self) -> None:
        self.pos += 1


def _streaming_merge(
    ctx: MachineContext,
    sources: list[tuple[tuple, int]],
    keyf: Callable[[Any], Any],
    emit: Callable[[Any], None],
) -> None:
    """K-way merge of piece streams, one live piece per source.

    The per-hop adaptive reads that refill exhausted pieces are exactly
    the AMPC capability MPC lacks — in MPC the bucket machine would
    have to receive its whole bucket in one exchange.
    """
    live = []
    for prefix, n_pieces in sources:
        src = _StreamSource(ctx, prefix, n_pieces)
        if src.refill():
            live.append(src)
    heap = [(keyf(src.head()), idx) for idx, src in enumerate(live)]
    heapq.heapify(heap)
    while heap:
        _, idx = heapq.heappop(heap)
        src = live[idx]
        x = src.head()
        src.advance()
        if src.refill():
            heapq.heappush(heap, (keyf(src.head()), idx))
        emit(x)


def _make_group_merger(
    group: list[tuple[tuple, int]],
    out_prefix: tuple,
    keyf: Callable[[Any], Any],
):
    """Program merging a group of piece streams into a new piece stream.

    Writes pieces under ``out_prefix + (i,)`` and the piece count under
    ``("mcount",) + out_prefix``.
    """

    def program(ctx: MachineContext) -> None:
        n_out = 0
        piece: list[Any] = []
        piece_words = 0

        def emit(x: Any) -> None:
            nonlocal n_out, piece, piece_words
            w = word_size(x)
            if piece and piece_words + w > _PIECE_WORDS:
                ctx.write(out_prefix + (n_out,), piece)
                n_out += 1
                piece, piece_words = [], 0
            piece.append(x)
            piece_words += w

        _streaming_merge(ctx, group, keyf, emit)
        if piece:
            ctx.write(out_prefix + (n_out,), piece)
            n_out += 1
        ctx.write(("mcount",) + out_prefix, n_out)

    return program


# ======================================================================
# Columnar path: same PSRS pipeline as picklable round specs
# ======================================================================

def _sort_columnar_ok(values: Sequence[Any]) -> bool:
    """True when the columnar sort provably matches the object path.

    Requires a homogeneous numeric column: all genuine Python ints in
    int64 range, or all finite floats.  NaNs fall back to the object
    path (``sorted`` and ``np.sort`` order them differently), as do
    bools (they hash equal to 0/1 but carry a distinct runtime type)
    and mixed int/float inputs (no single column dtype holds both
    losslessly).
    """
    first = type(values[0])
    if first is int:
        return all(
            type(v) is int and -(2**63) <= v < 2**63 for v in values
        )
    if first is float:
        return all(type(v) is float and math.isfinite(v) for v in values)
    return False


def _sample_count(length: int, spc: int) -> int:
    """Samples round 1 emits for a chunk: ``len(run[::step][:spc])``."""
    step = max(1, length // spc)
    return min(spc, (length + step - 1) // step)


def _sort_columnar(runtime: AMPCRuntime, values: Sequence[Any]) -> list[Any]:
    """Columnar twin of the PSRS pipeline above, round for round.

    Same host control flow — identical round count, reason strings and
    machine counts, including the data-dependent merge-tree shape — but
    rounds are specs from :mod:`repro.ampc.columnar` over numeric
    columns (Snippet-style sample-splitter selection + partitioned
    exchange).  Stable numpy sorts make every merge order-equivalent to
    the object path's stable k-way merges, so outputs are bit-identical.
    """
    config = runtime.config
    n = len(values)
    is_float = type(values[0]) is float
    dtype = np.float64 if is_float else np.int64

    # Numeric scalars are one word each, so seed_chunks' word-budget
    # packing degenerates to fixed-size chunks; replicate its bounds.
    budget = chunk_size_for(config)
    bounds = list(range(0, n, budget)) + [n]
    n_chunks = len(bounds) - 1

    runtime.seed_columns(
        col.pack(col.T_IN, np.arange(n)),
        np.asarray(values, dtype=dtype),
        value_dtype=dtype,
    )

    spc = max(
        1,
        min(
            _SAMPLES_PER_CHUNK,
            (config.local_memory_words // 3) // max(1, n_chunks),
        ),
    )
    samp_off = [0]
    for j in range(n_chunks):
        samp_off.append(samp_off[-1] + _sample_count(bounds[j + 1] - bounds[j], spc))

    runtime.column_round(
        "sort_local",
        {"bounds": bounds, "spc": spc, "samp_off": samp_off},
        n_chunks,
        "sample sort: local sort + sampling",
        carry_forward=True,
    )

    n_buckets = n_chunks
    runtime.column_round(
        "sort_pivots",
        {"n_buckets": n_buckets},
        1,
        "sample sort: pivot selection",
        carry_forward=True,
    )
    runtime.column_round(
        "sort_partition",
        {"bounds": bounds, "n_chunks": n_chunks, "n_buckets": n_buckets},
        n_chunks,
        "sample sort: partition by pivots",
        carry_forward=True,
    )
    runtime.column_round(
        "sort_bucket_offsets",
        {"n_buckets": n_buckets, "n_chunks": n_chunks},
        1,
        "sample sort: bucket offsets",
        carry_forward=True,
    )

    # Host control-plane, same as the object path (which reads piece
    # counts between rounds): segment sizes decide the merge-tree shape;
    # the segments themselves stay in the columns.
    segsz = (
        runtime.table.get_many(
            col.pack(col.T_SEGSZ, np.arange(n_buckets * n_chunks))
        )
        .astype(np.int64)
        .reshape(n_buckets, n_chunks)
    )
    cuts = np.zeros((n_buckets + 1, n_chunks), dtype=np.int64)
    np.cumsum(segsz, axis=0, out=cuts[1:])

    fan_in = max(2, (config.local_memory_words // 2) // (_PIECE_WORDS + 2))
    sources_of: dict[int, list[tuple[int, int, int]]] = {
        b: [
            (col.T_RUN, bounds[j] + int(cuts[b, j]), int(segsz[b, j]))
            for j in range(n_chunks)
            if segsz[b, j]
        ]
        for b in range(n_buckets)
    }

    merge_level = 0
    while any(len(srcs) > fan_in for srcs in sources_of.values()):
        groups: list[tuple[list[tuple[int, int, int]], int]] = []
        group_meta: list[tuple[int, int, int]] = []
        out_pos = 0
        for b, srcs in sources_of.items():
            if len(srcs) <= fan_in:
                continue
            for g in range(0, len(srcs), fan_in):
                group = srcs[g : g + fan_in]
                total = sum(length for _, _, length in group)
                groups.append((group, out_pos))
                group_meta.append((b, out_pos, total))
                out_pos += total
        out_tag = col.T_MS_BASE + merge_level
        runtime.column_round(
            "sort_merge_level",
            {"groups": groups, "out_tag": out_tag},
            len(groups),
            f"sample sort: merge-tree level {merge_level}",
            carry_forward=True,
        )
        new_sources: dict[int, list[tuple[int, int, int]]] = {
            b: (srcs if len(srcs) <= fan_in else [])
            for b, srcs in sources_of.items()
        }
        for b, start, total in group_meta:
            new_sources[b].append((out_tag, start, total))
        sources_of = new_sources
        merge_level += 1

    runtime.column_round(
        "sort_final_merge",
        {"buckets": [sources_of[b] for b in range(n_buckets)]},
        n_buckets,
        "sample sort: final streaming merge",
        carry_forward=True,
    )

    out = runtime.table.get_many(col.pack(col.T_OUT, np.arange(n)))
    return out.tolist()
