"""Adaptive list ranking — the engine behind Lemma 4's tree rooting.

In MPC, list ranking needs pointer jumping and ``Θ(log n)`` rounds.  In
AMPC a machine can *walk* a pointer chain adaptively within one round
(each hop is one DHT read and needs O(1) local words), which yields the
classic anchor-sampling scheme of Behnezhad et al. [3]:

1. sample ``~ n^(1-eps)`` anchors (tails always included);
2. one round: every anchor walks the chain to the next anchor,
   producing a contracted weighted list;
3. recurse until the contracted list fits on one machine, which ranks
   it directly;
4. unwind: level by level, every remaining node walks to the next
   node whose rank is known and adds the hop weights.

Levels shrink as ``n -> n^(1-eps)`` so there are ``O(1/eps)`` levels and
``O(1/eps)`` rounds total.  Ranks are *distances to the tail* (tail has
rank 0), the convention the Euler-tour module builds on.
"""

from __future__ import annotations

import random
from typing import Hashable, Mapping, Sequence

from ..config import AMPCConfig
from ..ledger import RoundLedger
from ..machine import MachineContext
from ..runtime import AMPCRuntime


def _anchor_count(n: int, eps: float) -> int:
    """Target size of the next level: ``ceil(n^(1-eps))``, at least 1."""
    if n <= 1:
        return 1
    return max(1, int(round(n ** (1.0 - eps))))


def ampc_list_rank(
    config: AMPCConfig,
    successor: Mapping[Hashable, Hashable | None],
    *,
    ledger: RoundLedger | None = None,
    seed: int = 0,
) -> dict[Hashable, int]:
    """Rank every node of a (multi-)linked list by distance to its tail.

    Parameters
    ----------
    successor:
        Maps each node to its successor, ``None`` for tails.  May
        describe several disjoint lists at once.  Must be acyclic.
    seed:
        Seed for the anchor sampling (determinism in tests).

    Returns
    -------
    dict node -> rank, where tails have rank 0 and each predecessor is
    one higher.
    """
    nodes = list(successor.keys())
    runtime = AMPCRuntime(config, ledger=ledger)
    if not nodes:
        runtime.seed([(("empty",), True)])
        runtime.round(
            [(lambda ctx: ctx.write(("done",), True), None)],
            "list rank: trivial input",
        )
        return {}

    rng = random.Random(seed)
    capacity = max(4, config.local_memory_words // 8)

    # H_0 holds the level-0 list: successor and hop weight per node.
    items: list[tuple] = []
    for v in nodes:
        items.append((("succ", 0, v), successor[v]))
        items.append((("w", 0, v), 1))
    runtime.seed(items)

    # ------------------------------------------------------------------
    # Contraction levels.  The host only orchestrates *which* nodes act
    # at each level (sampling is control-plane); all chain data flows
    # through the DHT.
    # ------------------------------------------------------------------
    levels: list[list[Hashable]] = [nodes]
    level = 0
    while len(levels[level]) > capacity:
        current = levels[level]
        tails = [v for v in current if _level_succ(runtime, level, v) is None]
        non_tails = [v for v in current if _level_succ(runtime, level, v) is not None]
        if not non_tails:
            # Every remaining node is an original tail (all chains are
            # singletons at this level); their ranks are 0 — no further
            # contraction possible or needed.
            break
        want = _anchor_count(len(current), config.eps)
        k = max(0, min(len(non_tails), want - len(tails)))
        anchors = set(tails) | set(rng.sample(non_tails, k)) if k else set(tails)
        if not anchors:  # all-cycle guard; caller promised acyclic input
            raise ValueError("list has no tail; input must be acyclic")
        next_nodes = sorted(anchors, key=_stable_key)

        # Round A: anchors mark themselves so walkers can test membership.
        def mark(ctx: MachineContext, _lvl: int = level) -> None:
            ctx.write(("anchor", _lvl + 1, ctx.payload), True)

        runtime.round(
            [(mark, v) for v in next_nodes],
            f"list rank: mark anchors level {level + 1}",
            carry_forward=True,
        )

        # Round B: each anchor walks the level chain to the next anchor.
        def contract(ctx: MachineContext, _lvl: int = level) -> None:
            v = ctx.payload
            total = 0
            u = ctx.read(("succ", _lvl, v))
            w = ctx.read(("w", _lvl, v))
            while u is not None and not ctx.contains(("anchor", _lvl + 1, u)):
                total += w
                w = ctx.read(("w", _lvl, u))
                u = ctx.read(("succ", _lvl, u))
            if u is not None:
                total += w
            ctx.write(("succ", _lvl + 1, v), u)
            ctx.write(("w", _lvl + 1, v), total if u is not None else 0)

        runtime.round(
            [(contract, v) for v in next_nodes],
            f"list rank: contract level {level + 1}",
            carry_forward=True,
        )
        levels.append(next_nodes)
        level += 1

    # ------------------------------------------------------------------
    # Base case: one machine ranks the contracted list.  If the loop
    # exited because only tails remain (each its own singleton chain),
    # their ranks are zero and are written one machine per tail instead,
    # since they may not fit on a single machine.
    # ------------------------------------------------------------------
    top_nodes = levels[level]

    if len(top_nodes) > capacity:

        def zero_rank(ctx: MachineContext) -> None:
            ctx.write(("rank", ctx.payload), 0)

        runtime.round(
            [(zero_rank, v) for v in top_nodes],
            "list rank: tail ranks (degenerate all-singleton level)",
            carry_forward=True,
        )
        _unwind_levels(runtime, levels, level)
        return {v: runtime.table.get(("rank", v)) for v in nodes}

    def base_rank(ctx: MachineContext, _lvl: int = level) -> None:
        succ: dict[Hashable, Hashable | None] = {}
        weight: dict[Hashable, int] = {}
        ctx.hold(3 * len(top_nodes))
        for v in top_nodes:
            succ[v] = ctx.read(("succ", _lvl, v))
            weight[v] = ctx.read(("w", _lvl, v))
        rank: dict[Hashable, int] = {}

        def resolve(v: Hashable) -> int:
            # Iterative chain walk with memoisation (lists can be long).
            path = []
            on_path: set[Hashable] = set()
            u = v
            while u not in rank:
                if u in on_path:
                    raise ValueError(
                        "list has a cycle; input must be acyclic"
                    )
                path.append(u)
                on_path.add(u)
                nxt = succ[u]
                if nxt is None:
                    rank[u] = 0
                    path.pop()
                    break
                u = nxt
            for node in reversed(path):
                rank[node] = rank[succ[node]] + weight[node]
            return rank[v]

        for v in top_nodes:
            resolve(v)
            ctx.write(("rank", v), rank[v])
        ctx.release(3 * len(top_nodes))

    runtime.round([(base_rank, None)], "list rank: base case", carry_forward=True)

    _unwind_levels(runtime, levels, level)
    return {v: runtime.table.get(("rank", v)) for v in nodes}


def _unwind_levels(
    runtime: AMPCRuntime, levels: list[list[Hashable]], top_level: int
) -> None:
    """Descend the contraction pyramid, ranking each level's nodes."""
    for lvl in range(top_level - 1, -1, -1):
        known = set(levels[lvl + 1])
        pending = [v for v in levels[lvl] if v not in known]

        def unwind(ctx: MachineContext, _lvl: int = lvl) -> None:
            v = ctx.payload
            total = 0
            u = v
            while not ctx.contains(("rank", u)):
                total += ctx.read(("w", _lvl, u))
                u = ctx.read(("succ", _lvl, u))
                if u is None:  # tail without a written rank: rank 0
                    ctx.write(("rank", v), total)
                    return
            ctx.write(("rank", v), total + ctx.read(("rank", u)))

        runtime.round(
            [(unwind, v) for v in pending],
            f"list rank: unwind level {lvl}",
            carry_forward=True,
        )


def _level_succ(runtime: AMPCRuntime, level: int, v: Hashable):
    """Host-side peek at a node's successor (control-plane sampling aid)."""
    return runtime.table.get(("succ", level, v))


def _stable_key(v: Hashable):
    return (str(type(v)), str(v))
