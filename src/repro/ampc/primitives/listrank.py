"""Adaptive list ranking — the engine behind Lemma 4's tree rooting.

In MPC, list ranking needs pointer jumping and ``Θ(log n)`` rounds.  In
AMPC a machine can *walk* a pointer chain adaptively within one round
(each hop is one DHT read and needs O(1) local words), which yields the
classic anchor-sampling scheme of Behnezhad et al. [3]:

1. sample ``~ n^(1-eps)`` anchors (tails always included);
2. one round: every anchor walks the chain to the next anchor,
   producing a contracted weighted list;
3. recurse until the contracted list fits on one machine, which ranks
   it directly;
4. unwind: level by level, every remaining node walks to the next
   node whose rank is known and adds the hop weights.

Levels shrink as ``n -> n^(1-eps)`` so there are ``O(1/eps)`` levels and
``O(1/eps)`` rounds total.  Ranks are *distances to the tail* (tail has
rank 0), the convention the Euler-tour module builds on.
"""

from __future__ import annotations

import random
from typing import Hashable, Mapping, Sequence

import numpy as np

from .. import columnar as col
from ..config import AMPCConfig
from ..ledger import RoundLedger
from ..machine import MachineContext
from ..runtime import AMPCRuntime


def _anchor_count(n: int, eps: float) -> int:
    """Target size of the next level: ``ceil(n^(1-eps))``, at least 1."""
    if n <= 1:
        return 1
    return max(1, int(round(n ** (1.0 - eps))))


def ampc_list_rank(
    config: AMPCConfig,
    successor: Mapping[Hashable, Hashable | None],
    *,
    ledger: RoundLedger | None = None,
    seed: int = 0,
) -> dict[Hashable, int]:
    """Rank every node of a (multi-)linked list by distance to its tail.

    Parameters
    ----------
    successor:
        Maps each node to its successor, ``None`` for tails.  May
        describe several disjoint lists at once.  Must be acyclic.
    seed:
        Seed for the anchor sampling (determinism in tests).

    Returns
    -------
    dict node -> rank, where tails have rank 0 and each predecessor is
    one higher.
    """
    nodes = list(successor.keys())
    runtime = AMPCRuntime(config, ledger=ledger)
    if not nodes:
        runtime.seed([(("empty",), True)])
        runtime.round(
            [(lambda ctx: ctx.write(("done",), True), None)],
            "list rank: trivial input",
        )
        return {}

    rng = random.Random(seed)
    capacity = max(4, config.local_memory_words // 8)

    if runtime.backend.supports_columnar and _listrank_columnar_ok(successor, nodes):
        return _listrank_columnar(runtime, successor, nodes, rng)

    # H_0 holds the level-0 list: successor and hop weight per node.
    items: list[tuple] = []
    for v in nodes:
        items.append((("succ", 0, v), successor[v]))
        items.append((("w", 0, v), 1))
    runtime.seed(items)

    # ------------------------------------------------------------------
    # Contraction levels.  The host only orchestrates *which* nodes act
    # at each level (sampling is control-plane); all chain data flows
    # through the DHT.
    # ------------------------------------------------------------------
    levels: list[list[Hashable]] = [nodes]
    level = 0
    while len(levels[level]) > capacity:
        current = levels[level]
        tails = [v for v in current if _level_succ(runtime, level, v) is None]
        non_tails = [v for v in current if _level_succ(runtime, level, v) is not None]
        if not non_tails:
            # Every remaining node is an original tail (all chains are
            # singletons at this level); their ranks are 0 — no further
            # contraction possible or needed.
            break
        want = _anchor_count(len(current), config.eps)
        k = max(0, min(len(non_tails), want - len(tails)))
        anchors = set(tails) | set(rng.sample(non_tails, k)) if k else set(tails)
        if not anchors:  # all-cycle guard; caller promised acyclic input
            raise ValueError("list has no tail; input must be acyclic")
        next_nodes = sorted(anchors, key=_stable_key)

        # Round A: anchors mark themselves so walkers can test membership.
        def mark(ctx: MachineContext, _lvl: int = level) -> None:
            ctx.write(("anchor", _lvl + 1, ctx.payload), True)

        runtime.round(
            [(mark, v) for v in next_nodes],
            f"list rank: mark anchors level {level + 1}",
            carry_forward=True,
        )

        # Round B: each anchor walks the level chain to the next anchor.
        def contract(ctx: MachineContext, _lvl: int = level) -> None:
            v = ctx.payload
            total = 0
            u = ctx.read(("succ", _lvl, v))
            w = ctx.read(("w", _lvl, v))
            while u is not None and not ctx.contains(("anchor", _lvl + 1, u)):
                total += w
                w = ctx.read(("w", _lvl, u))
                u = ctx.read(("succ", _lvl, u))
            if u is not None:
                total += w
            ctx.write(("succ", _lvl + 1, v), u)
            ctx.write(("w", _lvl + 1, v), total if u is not None else 0)

        runtime.round(
            [(contract, v) for v in next_nodes],
            f"list rank: contract level {level + 1}",
            carry_forward=True,
        )
        levels.append(next_nodes)
        level += 1

    # ------------------------------------------------------------------
    # Base case: one machine ranks the contracted list.  If the loop
    # exited because only tails remain (each its own singleton chain),
    # their ranks are zero and are written one machine per tail instead,
    # since they may not fit on a single machine.
    # ------------------------------------------------------------------
    top_nodes = levels[level]

    if len(top_nodes) > capacity:

        def zero_rank(ctx: MachineContext) -> None:
            ctx.write(("rank", ctx.payload), 0)

        runtime.round(
            [(zero_rank, v) for v in top_nodes],
            "list rank: tail ranks (degenerate all-singleton level)",
            carry_forward=True,
        )
        _unwind_levels(runtime, levels, level)
        return {v: runtime.table.get(("rank", v)) for v in nodes}

    def base_rank(ctx: MachineContext, _lvl: int = level) -> None:
        succ: dict[Hashable, Hashable | None] = {}
        weight: dict[Hashable, int] = {}
        ctx.hold(3 * len(top_nodes))
        for v in top_nodes:
            succ[v] = ctx.read(("succ", _lvl, v))
            weight[v] = ctx.read(("w", _lvl, v))
        rank: dict[Hashable, int] = {}

        def resolve(v: Hashable) -> int:
            # Iterative chain walk with memoisation (lists can be long).
            path = []
            on_path: set[Hashable] = set()
            u = v
            while u not in rank:
                if u in on_path:
                    raise ValueError(
                        "list has a cycle; input must be acyclic"
                    )
                path.append(u)
                on_path.add(u)
                nxt = succ[u]
                if nxt is None:
                    rank[u] = 0
                    path.pop()
                    break
                u = nxt
            for node in reversed(path):
                rank[node] = rank[succ[node]] + weight[node]
            return rank[v]

        for v in top_nodes:
            resolve(v)
            ctx.write(("rank", v), rank[v])
        ctx.release(3 * len(top_nodes))

    runtime.round([(base_rank, None)], "list rank: base case", carry_forward=True)

    _unwind_levels(runtime, levels, level)
    return {v: runtime.table.get(("rank", v)) for v in nodes}


def _unwind_levels(
    runtime: AMPCRuntime, levels: list[list[Hashable]], top_level: int
) -> None:
    """Descend the contraction pyramid, ranking each level's nodes."""
    for lvl in range(top_level - 1, -1, -1):
        known = set(levels[lvl + 1])
        pending = [v for v in levels[lvl] if v not in known]

        def unwind(ctx: MachineContext, _lvl: int = lvl) -> None:
            v = ctx.payload
            total = 0
            u = v
            while not ctx.contains(("rank", u)):
                total += ctx.read(("w", _lvl, u))
                u = ctx.read(("succ", _lvl, u))
                if u is None:  # tail without a written rank: rank 0
                    ctx.write(("rank", v), total)
                    return
            ctx.write(("rank", v), total + ctx.read(("rank", u)))

        runtime.round(
            [(unwind, v) for v in pending],
            f"list rank: unwind level {lvl}",
            carry_forward=True,
        )


def _level_succ(runtime: AMPCRuntime, level: int, v: Hashable):
    """Host-side peek at a node's successor (control-plane sampling aid)."""
    return runtime.table.get(("succ", level, v))


def _stable_key(v: Hashable):
    return (str(type(v)), str(v))


# ======================================================================
# Columnar path: same anchor-sampling scheme as picklable round specs
# ======================================================================

def _listrank_columnar_ok(
    successor: Mapping[Hashable, Hashable | None], nodes: Sequence[Hashable]
) -> bool:
    """True when the columnar path provably matches the object path.

    Nodes must be genuine Python ints (bools conflate with 0/1 under
    hashing but not under ``_stable_key``) and every successor must be
    a known node or ``None`` — dangling successors take the object
    path, which raises its documented lookup errors.
    """
    if not all(type(v) is int for v in nodes):
        return False
    node_set = set(nodes)
    return all(
        u is None or (type(u) is int and u in node_set)
        for u in successor.values()
    )


def _listrank_columnar(
    runtime: AMPCRuntime,
    successor: Mapping[Hashable, Hashable | None],
    nodes: Sequence[Hashable],
    rng: random.Random,
) -> dict[Hashable, int]:
    """Columnar twin of the anchor-sampling scheme, round for round.

    The host control flow — tail/non-tail classification, anchor
    sampling (same rng consumption), ``_stable_key`` ordering, level
    bookkeeping — is replicated verbatim, so round count, reasons and
    machine counts are identical.  Only the data plane changes: nodes
    are remapped to dense positions, per-level ``succ``/``w``/``anchor``
    columns live in int64 arrays (``-1`` encodes a tail), and the walk
    rounds are vectorized frontier steps from :mod:`repro.ampc.columnar`.
    """
    config = runtime.config
    capacity = max(4, config.local_memory_words // 8)
    n = len(nodes)
    node_id = {v: i for i, v in enumerate(nodes)}

    def idx_of(vs: Sequence[Hashable]) -> np.ndarray:
        return np.array([node_id[v] for v in vs], dtype=np.int64)

    succ0 = np.array(
        [-1 if successor[v] is None else node_id[successor[v]] for v in nodes],
        dtype=np.int64,
    )
    runtime.seed_columns(
        np.concatenate(
            [
                col.pack(col.T_SUCC_BASE + 0, np.arange(n)),
                col.pack(col.T_W_BASE + 0, np.arange(n)),
            ]
        ),
        np.concatenate([succ0, np.ones(n, dtype=np.int64)]),
    )

    levels: list[list[Hashable]] = [list(nodes)]
    level = 0
    while len(levels[level]) > capacity:
        current = levels[level]
        is_tail = (
            runtime.table.get_many(
                col.pack(col.T_SUCC_BASE + level, idx_of(current))
            )
            == -1
        ).tolist()
        tails = [v for v, t in zip(current, is_tail) if t]
        non_tails = [v for v, t in zip(current, is_tail) if not t]
        if not non_tails:
            break
        want = _anchor_count(len(current), config.eps)
        k = max(0, min(len(non_tails), want - len(tails)))
        anchors = set(tails) | set(rng.sample(non_tails, k)) if k else set(tails)
        if not anchors:  # all-cycle guard; caller promised acyclic input
            raise ValueError("list has no tail; input must be acyclic")
        next_nodes = sorted(anchors, key=_stable_key)
        nn_idx = idx_of(next_nodes)

        runtime.column_round(
            "lr_mark",
            {"idxs": nn_idx, "out_tag": col.T_ANCH_BASE + level + 1},
            len(next_nodes),
            f"list rank: mark anchors level {level + 1}",
            carry_forward=True,
        )
        runtime.column_round(
            "lr_contract",
            {
                "next_idxs": nn_idx,
                "succ_tag": col.T_SUCC_BASE + level,
                "w_tag": col.T_W_BASE + level,
                "anchor_tag": col.T_ANCH_BASE + level + 1,
                "out_succ_tag": col.T_SUCC_BASE + level + 1,
                "out_w_tag": col.T_W_BASE + level + 1,
                "max_steps": len(current) + 2,
            },
            len(next_nodes),
            f"list rank: contract level {level + 1}",
            carry_forward=True,
        )
        levels.append(next_nodes)
        level += 1

    top_nodes = levels[level]
    top_idx = idx_of(top_nodes)
    if len(top_nodes) > capacity:
        runtime.column_round(
            "lr_zero_rank",
            {"idxs": top_idx},
            len(top_nodes),
            "list rank: tail ranks (degenerate all-singleton level)",
            carry_forward=True,
        )
    else:
        runtime.column_round(
            "lr_base",
            {
                "top_idxs": top_idx,
                "succ_tag": col.T_SUCC_BASE + level,
                "w_tag": col.T_W_BASE + level,
            },
            1,
            "list rank: base case",
            carry_forward=True,
        )

    for lvl in range(level - 1, -1, -1):
        known = set(levels[lvl + 1])
        pending = [v for v in levels[lvl] if v not in known]
        runtime.column_round(
            "lr_unwind",
            {
                "pending_idxs": idx_of(pending),
                "succ_tag": col.T_SUCC_BASE + lvl,
                "w_tag": col.T_W_BASE + lvl,
                "max_steps": len(levels[lvl]) + 2,
            },
            len(pending),
            f"list rank: unwind level {lvl}",
            carry_forward=True,
        )

    ranks = runtime.table.get_many(col.pack(col.T_RANK, np.arange(n)))
    return {v: int(r) for v, r in zip(nodes, ranks.tolist())}
