"""Genuinely-executed AMPC primitives.

Each primitive in this package runs as a real multi-round program on
:class:`~repro.ampc.runtime.AMPCRuntime`: machine programs read
adaptively from the previous round's hash table, write to the next one,
and the runtime measures rounds, local-memory peaks and query counts.

The primitives and their sources:

===========================  =======================================
:mod:`.sort`                 distributed sample sort (PSRS flavour)
:mod:`.prefix`               prefix sums & minimum prefix sum
                             (paper Theorem 5, Behnezhad et al. [2])
:mod:`.reduce`               fan-in reduce trees and broadcast
:mod:`.groupby`              shuffle-based group-by
:mod:`.listrank`             adaptive list ranking by anchor sampling
:mod:`.euler`                Euler-tour forest rooting, depths and
                             subtree sizes (paper Lemma 4, [3])
:mod:`.connectivity`         forest components (genuine) and general
                             graph components (charged per [4])
:mod:`.mst`                  minimum spanning tree / forest
===========================  =======================================
"""

from .sort import ampc_sort
from .prefix import ampc_prefix_sums, ampc_min_prefix_sum
from .reduce import ampc_reduce, ampc_broadcast
from .groupby import ampc_group_by
from .listrank import ampc_list_rank
from .euler import ampc_root_forest
from .connectivity import ampc_forest_components, ampc_graph_components
from .mst import ampc_minimum_spanning_forest

__all__ = [
    "ampc_sort",
    "ampc_prefix_sums",
    "ampc_min_prefix_sum",
    "ampc_reduce",
    "ampc_broadcast",
    "ampc_group_by",
    "ampc_list_rank",
    "ampc_root_forest",
    "ampc_forest_components",
    "ampc_graph_components",
    "ampc_minimum_spanning_forest",
]
