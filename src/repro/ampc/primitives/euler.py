"""Forest rooting, orientation, depths and subtree sizes — paper Lemma 4.

Lemma 4 (Behnezhad et al. [3], Theorem 7): a forest on ``n`` vertices
can be rooted and its edges oriented in ``O(1/eps)`` AMPC rounds w.h.p.
with ``O(n^eps)`` local memory.  The same toolbox yields depths,
subtree sizes and preorder numbers, all of which Section 3 of the paper
consumes (heavy edges need subtree sizes; labels need depths in the
expanded meta-tree; binarized paths need preorder).

Implementation = Euler tour + adaptive list ranking:

* every undirected edge ``{u,v}`` becomes two arcs; the tour successor
  of arc ``(u,v)`` is ``(v, next neighbour of v after u)`` in cyclic
  adjacency order — one adaptive read per arc computes it;
* the tour cycle is cut at each root's last incoming arc, making the
  tour an open list that :func:`ampc_list_rank` ranks in ``O(1/eps)``
  rounds;
* parent(v) = source of the *first* arc entering ``v`` (max rank);
* depth = prefix sum of +1/−1 arc signs at the entering arc;
* subtree size falls out of enter/exit positions:
  ``size = (pos_exit − pos_enter + 1) // 2``.

The adjacency representation is seeded as flat keys ``("adj_at", v, i)``
so no machine ever holds a full (possibly huge) adjacency list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..config import AMPCConfig
from ..ledger import RoundLedger
from ..machine import MachineContext
from ..runtime import AMPCRuntime
from .listrank import ampc_list_rank
from .prefix import ampc_prefix_sums


@dataclass
class RootedForest:
    """Output of :func:`ampc_root_forest`.

    Attributes
    ----------
    parent:
        ``parent[v]`` is ``None`` for roots.
    depth:
        Roots have depth 1 (the paper's convention in Section 3.4).
    subtree_size:
        Number of vertices in the subtree rooted at ``v`` (incl. ``v``).
    preorder:
        0-based preorder (DFS first-visit) index within each tree,
        following the same cyclic adjacency order as the Euler tour.
    root_of:
        Component root of each vertex.
    """

    parent: dict[Hashable, Hashable | None]
    depth: dict[Hashable, int]
    subtree_size: dict[Hashable, int]
    preorder: dict[Hashable, int]
    root_of: dict[Hashable, Hashable]


def ampc_root_forest(
    config: AMPCConfig,
    vertices: Sequence[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    *,
    roots: dict[Hashable, Hashable] | None = None,
    ledger: RoundLedger | None = None,
    seed: int = 0,
) -> RootedForest:
    """Root every tree of the forest and derive the Lemma-4 quantities.

    Parameters
    ----------
    vertices, edges:
        The forest.  Edges are undirected pairs; multi-edges/loops are
        invalid input.
    roots:
        Optional component -> root hints; by default the minimum vertex
        (by sort order of ``repr``) of each component is its root.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    edge_list = [tuple(e) for e in edges]
    adjacency: dict[Hashable, list[Hashable]] = {v: [] for v in vertices}
    for u, v in edge_list:
        adjacency[u].append(v)
        adjacency[v].append(u)
    for v in adjacency:
        adjacency[v].sort(key=_stable_key)

    # Host-side component discovery is *only* used to pick canonical
    # roots (control-plane); all tour data flows through the DHT.
    component = _components(adjacency)
    chosen_roots: dict[Hashable, Hashable] = {}
    for v, comp in component.items():
        if roots and comp in roots:
            chosen_roots[comp] = roots[comp]
        else:
            cur = chosen_roots.get(comp)
            if cur is None or _stable_key(v) < _stable_key(cur):
                chosen_roots[comp] = v
    root_of = {v: chosen_roots[component[v]] for v in vertices}

    isolated = [v for v in vertices if not adjacency[v]]
    if not edge_list:
        return RootedForest(
            parent={v: None for v in vertices},
            depth={v: 1 for v in vertices},
            subtree_size={v: 1 for v in vertices},
            preorder={v: 0 for v in vertices},
            root_of=root_of,
        )

    runtime = AMPCRuntime(config, ledger=ledger)
    seed_items: list[tuple] = []
    for v, nbrs in adjacency.items():
        seed_items.append((("deg", v), len(nbrs)))
        for i, u in enumerate(nbrs):
            seed_items.append((("adj_at", v, i), u))
            seed_items.append((("rank_in_adj", u, v), i))
    for r in chosen_roots.values():
        seed_items.append((("isroot", r), True))
    runtime.seed(seed_items)

    arcs = [(u, v) for (u, v) in edge_list] + [(v, u) for (u, v) in edge_list]

    # ---------------------------------------------------------- round 1
    # Each arc computes its tour successor; the arc closing the cycle at
    # a root gets successor None (the "cut").
    def arc_successor(ctx: MachineContext) -> None:
        u, v = ctx.payload
        deg_v = ctx.read(("deg", v))
        pos = ctx.read(("rank_in_adj", u, v))
        if ctx.contains(("isroot", v)) and pos == deg_v - 1:
            ctx.write(("tour_succ", u, v), None)
        else:
            w = ctx.read(("adj_at", v, (pos + 1) % deg_v))
            ctx.write(("tour_succ", u, v), (v, w))

    runtime.round(
        [(arc_successor, arc) for arc in arcs],
        "euler tour: arc successors (Lemma 4)",
        carry_forward=True,
    )

    successor = {
        ("arc", a, b): _tag(runtime.table.get(("tour_succ", a, b)))
        for (a, b) in arcs
    }
    rank_to_tail = ampc_list_rank(config, successor, ledger=ledger, seed=seed)

    # Tour positions from the head: pos = (tour_len - 1) - rank_to_tail,
    # where tour_len is per component.
    comp_size: dict[Hashable, int] = {}
    for v in vertices:
        comp_size[component[v]] = comp_size.get(component[v], 0) + 1
    pos: dict[tuple, int] = {}
    for u, v in arcs:
        tree_arcs = 2 * (comp_size[component[u]] - 1)
        pos[(u, v)] = (tree_arcs - 1) - rank_to_tail[("arc", u, v)]

    # ---------------------------------------------------------- round 2
    # Parent discovery: every arc proposes itself for its head vertex;
    # the min-position proposal wins (first visit).
    def propose_parent(ctx: MachineContext) -> None:
        u, v = ctx.payload[0]
        p = ctx.payload[1]
        ctx.write(("parentc", v), (p, u))

    runtime.round(
        [(propose_parent, ((u, v), pos[(u, v)])) for (u, v) in arcs],
        "euler tour: parent election",
        combiner=min,
        carry_forward=True,
    )
    parent: dict[Hashable, Hashable | None] = {}
    for v in vertices:
        if v == root_of[v]:
            parent[v] = None
        else:
            parent[v] = runtime.table.get(("parentc", v))[1]

    # ---------------------------------------------------- rounds 3..O(1)
    # Depth: prefix-sum of arc signs in tour order, evaluated at each
    # vertex's entering arc.  The sign of arc (u,v) is +1 when it goes
    # parent->child (v's parent is u), else -1.
    order: dict[Hashable, list[tuple]] = {}
    for u, v in arcs:
        order.setdefault(component[u], []).append((u, v))
    depth: dict[Hashable, int] = {}
    preorder: dict[Hashable, int] = {}
    subtree: dict[Hashable, int] = {}
    for comp, comp_arcs in order.items():
        comp_arcs.sort(key=lambda a: pos[a])
        signs = [1 if parent[b] == a else -1 for (a, b) in comp_arcs]
        sums = ampc_prefix_sums(config, signs, ledger=ledger)
        down_counts = ampc_prefix_sums(
            config, [1 if s == 1 else 0 for s in signs], ledger=ledger
        )
        r = chosen_roots[comp]
        depth[r] = 1
        preorder[r] = 0
        for idx, (a, b) in enumerate(comp_arcs):
            if parent[b] == a:  # entering b for the first time
                depth[b] = 1 + sums[idx]
                preorder[b] = down_counts[idx]
        enter = {b: pos[(a, b)] for (a, b) in comp_arcs if parent[b] == a}
        exit_ = {a: pos[(a, b)] for (a, b) in comp_arcs if parent[a] == b}
        for v in enter:
            subtree[v] = (exit_[v] - enter[v] + 1) // 2
        subtree[r] = comp_size[comp]

    for v in isolated:
        depth[v] = 1
        preorder[v] = 0
        subtree[v] = 1

    return RootedForest(
        parent=parent,
        depth=depth,
        subtree_size=subtree,
        preorder=preorder,
        root_of=root_of,
    )


def _tag(arc):
    return None if arc is None else ("arc", arc[0], arc[1])


def _components(adjacency: dict[Hashable, list[Hashable]]) -> dict[Hashable, int]:
    """Iterative DFS component labelling (control-plane only)."""
    comp: dict[Hashable, int] = {}
    next_id = 0
    for start in adjacency:
        if start in comp:
            continue
        stack = [start]
        comp[start] = next_id
        while stack:
            v = stack.pop()
            for u in adjacency[v]:
                if u not in comp:
                    comp[u] = next_id
                    stack.append(u)
        next_id += 1
    return comp


def _stable_key(v: Hashable):
    return (str(type(v)), str(v))
