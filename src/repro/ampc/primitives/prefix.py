"""Prefix sums and the minimum prefix sum (paper Theorem 5).

Theorem 5 (Behnezhad et al. [2]): for a sequence of integers of length
``n``, the minimum over all prefix sums can be computed in ``O(1/eps)``
AMPC rounds with ``O(n^eps)`` local memory and ``O(n log n)`` total
space.  The paper uses this inside Lemma 14 to turn interval stabbing
into a sweep.

The implementation is the textbook three-round scan:

1. each chunk machine computes its chunk's total and its chunk-local
   minimum prefix;
2. a coordinator scan over the (few) chunk totals produces per-chunk
   offsets — when the number of chunks itself exceeds machine memory
   the scan recurses, giving the ``O(1/eps)`` round bound;
3. each chunk machine adds its offset and emits final prefix values.

The minimum prefix sum falls out of round 2 for free:
``min_j (offset_j + local_min_prefix_j)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import columnar as col
from ..config import AMPCConfig
from ..ledger import RoundLedger
from ..dht import word_size
from ..machine import MachineContext
from ..runtime import AMPCRuntime
from .distribute import chunk_size_for, seed_chunks


def _scan_rounds(
    runtime: AMPCRuntime, n_chunks: int, capacity: int
) -> None:
    """Hierarchical scan of chunk totals ``("tot", j)`` into offsets.

    Writes ``("off", j)`` (sum of totals of chunks before ``j``) and
    ``("minpref", )`` (global minimum prefix).  Recurses while the
    number of groups exceeds machine capacity.
    """
    level = 0
    counts = [n_chunks]
    # Build the reduction pyramid upward: level-l groups of `capacity`.
    while counts[-1] > capacity:
        counts.append((counts[-1] + capacity - 1) // capacity)

    # Upward pass: aggregate group totals level by level.
    for lvl in range(1, len(counts)):
        groups = counts[lvl]

        def agg(ctx: MachineContext, _lvl: int = lvl) -> None:
            g = ctx.payload
            total = 0
            for child in range(g * capacity, min((g + 1) * capacity, counts[_lvl - 1])):
                total += ctx.read(("tot", _lvl - 1, child))
            ctx.write(("tot", _lvl, g), total)

        runtime.round(
            [(agg, g) for g in range(groups)],
            f"prefix scan: upward level {lvl}",
            carry_forward=True,
        )

    # Downward pass: compute each group's offset from its parent's.
    top = len(counts) - 1

    def seed_top(ctx: MachineContext) -> None:
        # The top level has at most `capacity` groups: one machine scans it.
        running = 0
        for g in range(counts[top]):
            ctx.write(("off", top, g), running)
            running += ctx.read(("tot", top, g))

    runtime.round([(seed_top, None)], "prefix scan: top offsets", carry_forward=True)

    for lvl in range(top, 0, -1):

        def push(ctx: MachineContext, _lvl: int = lvl) -> None:
            g = ctx.payload
            base = ctx.read(("off", _lvl, g))
            running = base
            for child in range(g * capacity, min((g + 1) * capacity, counts[_lvl - 1])):
                ctx.write(("off", _lvl - 1, child), running)
                running += ctx.read(("tot", _lvl - 1, child))

        runtime.round(
            [(push, g) for g in range(counts[lvl])],
            f"prefix scan: downward level {lvl}",
            carry_forward=True,
        )


def ampc_prefix_sums(
    config: AMPCConfig,
    values: Sequence[int],
    *,
    ledger: RoundLedger | None = None,
) -> list[int]:
    """Inclusive prefix sums of ``values`` as a distributed scan."""
    sums, _ = _prefix_impl(config, values, ledger=ledger)
    return sums


def ampc_min_prefix_sum(
    config: AMPCConfig,
    values: Sequence[int],
    *,
    ledger: RoundLedger | None = None,
) -> int:
    """Minimum over all (inclusive, non-empty) prefix sums — Theorem 5.

    Raises ``ValueError`` on empty input (no non-empty prefix exists).
    """
    if len(values) == 0:
        raise ValueError("minimum prefix sum of empty sequence is undefined")
    _, minimum = _prefix_impl(config, values, ledger=ledger)
    return minimum


def _columnar_ok(values: Sequence[int]) -> bool:
    """True when the columnar path provably matches the object path.

    Restricted to genuine Python ints (bools carry a different runtime
    type even though they hash equal) whose running sums cannot leave
    int64 range — ``np.cumsum`` over int64 is then exact, so the two
    paths are bit-identical.  Floats stay on the object path: blocked
    cumsum would re-associate additions and drift in the last ulp.
    """
    n = len(values)
    if n == 0:
        return True
    bound = 2**62 // n
    return all(type(v) is int and -bound < v < bound for v in values)


def _prefix_impl(
    config: AMPCConfig,
    values: Sequence[int],
    *,
    ledger: RoundLedger | None,
) -> tuple[list[int], int]:
    runtime = AMPCRuntime(config, ledger=ledger)
    n = len(values)
    if n == 0:
        return [], 0
    if runtime.backend.supports_columnar and _columnar_ok(values):
        return _prefix_columnar(runtime, values)
    n_chunks, _ = seed_chunks(runtime, "x", values)
    capacity = max(2, chunk_size_for(config))

    # ---------------------------------------------------------- round 1
    def local_scan(ctx: MachineContext) -> None:
        j = ctx.payload
        chunk = ctx.read(("x", "chunk", j))
        words = word_size(chunk)
        ctx.hold(words)
        total = 0
        local_min = None
        for v in chunk:
            total += v
            local_min = total if local_min is None else min(local_min, total)
        ctx.write(("tot", 0, j), total)
        ctx.write(("locmin", j), local_min if local_min is not None else 0)
        ctx.release(words)

    runtime.round(
        [(local_scan, j) for j in range(n_chunks)],
        "prefix scan: chunk totals",
        carry_forward=True,
    )

    # ------------------------------------------------- rounds 2..O(1/eps)
    _scan_rounds(runtime, n_chunks, capacity)

    # ---------------------------------------------------------- round f
    def finalize(ctx: MachineContext) -> None:
        j = ctx.payload
        chunk = ctx.read(("x", "chunk", j))
        words = word_size(chunk)
        ctx.hold(words)
        offset = ctx.read(("off", 0, j))
        out = []
        running = offset
        for v in chunk:
            running += v
            out.append(running)
        ctx.write(("pref", "chunk", j), out)
        local_min = ctx.read(("locmin", j))
        ctx.write(("globmin", j), offset + local_min if chunk else None)
        ctx.release(words)

    runtime.round(
        [(finalize, j) for j in range(n_chunks)],
        "prefix scan: finalize",
        carry_forward=True,
    )

    # ---------------------------------------------------------- round m
    def reduce_min(ctx: MachineContext) -> None:
        best = None
        for j in range(n_chunks):
            cand = ctx.read_default(("globmin", j))
            if cand is not None and (best is None or cand < best):
                best = cand
        ctx.write(("minprefix",), best)

    runtime.round([(reduce_min, None)], "prefix scan: min reduce", carry_forward=True)

    out: list[int] = []
    for j in range(n_chunks):
        out.extend(runtime.table.get(("pref", "chunk", j)))
    return out, runtime.table.get(("minprefix",))


def _prefix_columnar(
    runtime: AMPCRuntime, values: Sequence[int]
) -> tuple[list[int], int]:
    """Columnar twin of the object scan above, round for round.

    Same host control flow — identical round count, reason strings and
    machine counts — but every round is a picklable spec from
    :mod:`repro.ampc.columnar` executed over int64 columns (blocked
    ``np.cumsum`` instead of per-element Python adds).  Int arithmetic
    is exact, so outputs are bit-identical to the object reference; the
    differential harness holds this path to that.
    """
    config = runtime.config
    n = len(values)
    # Ints are one word each, so seed_chunks' word-budget packing
    # degenerates to fixed-size chunks; replicate its boundaries.
    budget = chunk_size_for(config)
    bounds = list(range(0, n, budget)) + [n]
    n_chunks = len(bounds) - 1
    capacity = max(2, budget)

    runtime.seed_columns(
        col.pack(col.T_X, np.arange(n)), np.asarray(values, dtype=np.int64)
    )

    runtime.column_round(
        "prefix_chunk_stats",
        {"bounds": bounds},
        n_chunks,
        "prefix scan: chunk totals",
        carry_forward=True,
    )

    counts = [n_chunks]
    while counts[-1] > capacity:
        counts.append((counts[-1] + capacity - 1) // capacity)
    for lvl in range(1, len(counts)):
        runtime.column_round(
            "prefix_group_sum",
            {
                "capacity": capacity,
                "src_level": lvl - 1,
                "dst_level": lvl,
                "src_count": counts[lvl - 1],
            },
            counts[lvl],
            f"prefix scan: upward level {lvl}",
            carry_forward=True,
        )

    top = len(counts) - 1
    runtime.column_round(
        "prefix_top_scan",
        {"top_level": top},
        1,
        "prefix scan: top offsets",
        carry_forward=True,
    )
    for lvl in range(top, 0, -1):
        runtime.column_round(
            "prefix_push_down",
            {"capacity": capacity, "level": lvl, "child_count": counts[lvl - 1]},
            counts[lvl],
            f"prefix scan: downward level {lvl}",
            carry_forward=True,
        )

    runtime.column_round(
        "prefix_finalize",
        {"bounds": bounds},
        n_chunks,
        "prefix scan: finalize",
        carry_forward=True,
    )
    runtime.column_round(
        "prefix_min_reduce", {}, 1, "prefix scan: min reduce", carry_forward=True
    )

    pref = runtime.table.get_many(col.pack(col.T_PREF, np.arange(n)))
    minimum = int(runtime.table.get(int(col.pack(col.T_MINPREF, 0))))
    return [int(x) for x in pref.tolist()], minimum
