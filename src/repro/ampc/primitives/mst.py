"""Minimum spanning forest.

Algorithm 3 (SmallestSingletonCut) starts by computing the MST of the
randomly-keyed graph.  Edge keys are unique, so the MST is unique — a
property Section 4 relies on ("since weights are unique, the MST is
unique as well").

Pipeline (and its accounting):

1. **distributed sample sort** of the edges by key — genuinely executed
   (:func:`~repro.ampc.primitives.sort.ampc_sort`, measured rounds);
2. **Kruskal consolidation** over the sorted stream with union–find —
   charged ``O(1/eps)`` rounds against the adaptive-connectivity result
   of Behnezhad et al. [4] (see DESIGN.md substitution table: the paper
   itself consumes MST as a black box built from its citations [2–5]).

The output is exact, which is all the downstream algorithms need.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..config import AMPCConfig
from ..ledger import RoundLedger
from .sort import ampc_sort


def ampc_minimum_spanning_forest(
    config: AMPCConfig,
    vertices: Sequence[Hashable],
    edges: Sequence[tuple[Hashable, Hashable, int]],
    *,
    ledger: RoundLedger | None = None,
) -> list[tuple[Hashable, Hashable, int]]:
    """Minimum spanning forest of ``(u, v, key)`` edges; keys must be unique.

    Returns the forest edges sorted by key (ascending).
    """
    keys = [k for (_, _, k) in edges]
    if len(set(keys)) != len(keys):
        raise ValueError("edge keys must be unique (the paper's w: E -> [n^3])")

    sorted_edges = ampc_sort(config, list(edges), key=lambda e: e[2], ledger=ledger)

    parent: dict[Hashable, Hashable] = {v: v for v in vertices}
    size: dict[Hashable, int] = {v: 1 for v in vertices}

    def find(v: Hashable) -> Hashable:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    forest: list[tuple[Hashable, Hashable, int]] = []
    for u, v, k in sorted_edges:
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        if size[ru] < size[rv]:
            ru, rv = rv, ru
        parent[rv] = ru
        size[ru] += size[rv]
        forest.append((u, v, k))

    if ledger is not None:
        ledger.charge(
            config.rounds_per_primitive,
            "MST consolidation via adaptive connectivity (Behnezhad et al. [4])",
            local_peak=config.local_memory_words,
            total_peak=len(vertices) + len(edges),
        )
    return forest
