"""Chunking helpers shared by the distributed primitives.

A machine can hold ``config.local_memory_words`` words, so bulk inputs
are split into chunks sized to leave headroom for the machine's own
bookkeeping.  The convention throughout the primitives: a list value
``xs`` is stored in the DHT under keys ``(name, "chunk", j)`` for chunk
index ``j`` plus a manifest ``(name, "meta")`` holding ``(n, n_chunks,
chunk_size)``.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..config import AMPCConfig
from ..machine import MachineContext
from ..runtime import AMPCRuntime

#: Fraction of local memory a chunk may occupy (the rest is headroom
#: for merge buffers, samples, and write staging; sample-sort buckets
#: can be ~2x a chunk under pivot skew, so 6 leaves real slack).
CHUNK_FRACTION = 6


def chunk_size_for(config: AMPCConfig) -> int:
    """Words per chunk so a machine can hold a chunk plus working space."""
    return max(8, config.local_memory_words // CHUNK_FRACTION)


def chunk_bounds(n: int, size: int) -> list[tuple[int, int]]:
    """Half-open ``(lo, hi)`` ranges covering ``range(n)`` in ``size`` steps."""
    return [(lo, min(lo + size, n)) for lo in range(0, max(n, 0), size)]


def seed_chunks(
    runtime: AMPCRuntime, name: str, values: Sequence[Any]
) -> tuple[int, int]:
    """Load ``values`` into ``H_0`` as chunks; return (n_chunks, chunk_size).

    Chunks are packed by *word* budget, not element count, so values
    with multi-word elements (edge tuples, interval records) still fit
    machine memory.
    """
    from ..dht import word_size

    budget = chunk_size_for(runtime.config)
    chunks: list[list[Any]] = []
    cur: list[Any] = []
    cur_words = 0
    for v in values:
        w = word_size(v)
        if cur and cur_words + w > budget:
            chunks.append(cur)
            cur, cur_words = [], 0
        cur.append(v)
        cur_words += w
    if cur or not chunks:
        chunks.append(cur)
    items: list[tuple[Any, Any]] = [
        ((name, "chunk", j), chunk) for j, chunk in enumerate(chunks)
    ]
    items.append(((name, "meta"), (len(values), len(chunks), budget)))
    runtime.seed(items)
    return len(chunks), budget


def read_meta(ctx: MachineContext, name: str) -> tuple[int, int, int]:
    """Read a chunked value's manifest: ``(n, n_chunks, chunk_size)``."""
    n, n_chunks, size = ctx.read((name, "meta"))
    return int(n), int(n_chunks), int(size)


def gather_chunks(runtime: AMPCRuntime, name: str) -> list[Any]:
    """Host-side: reassemble a chunked value from the current table."""
    meta = runtime.table.get_default((name, "meta"))
    if meta is None:
        return []
    _, n_chunks, _ = meta
    out: list[Any] = []
    for j in range(int(n_chunks)):
        out.extend(runtime.table.get((name, "chunk", j)))
    return out
