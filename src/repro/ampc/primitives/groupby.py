"""Shuffle-based group-by.

``ampc_group_by`` buckets ``(group, value)`` pairs by group key in two
rounds.  This is the idiom behind the paper's "group time intervals
with respect to vertices from L_i" step (Lemma 15) and the per-level
tuple preparation of Lemma 9.

A group may be far larger than one machine's ``O(n^eps)`` memory (a
popular vertex can own ``Θ(m)`` intervals), so groups are never
materialised on a single machine.  Instead:

* **scatter** — chunk machine ``j`` writes one *shard* per group it
  sees, ``("cellshard", group, j)``, holding that chunk's values in
  input order.  Shard sizes are bounded by the chunk size, so every
  write fits the local budget.
* **gather** — one machine per *shard* re-emits it under its ordinal
  position ``("group", group, rank)`` (ranks follow chunk order, and
  chunks are contiguous input slices, so concatenating shards by rank
  restores input order).  Per-machine memory is one shard, never one
  group.

The host assembles the final ``dict`` from the sharded table — the
return value is a host-side convenience; inside the model the group
*is* its ordered shard list, which is how downstream rounds consume it
(one machine per shard).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from ..config import AMPCConfig
from ..ledger import RoundLedger
from ..dht import word_size
from ..machine import MachineContext
from ..runtime import AMPCRuntime
from .distribute import seed_chunks


def ampc_group_by(
    config: AMPCConfig,
    pairs: Sequence[tuple[Hashable, Any]],
    *,
    ledger: RoundLedger | None = None,
) -> dict[Hashable, list[Any]]:
    """Group ``pairs`` by first component; order within groups follows input."""
    runtime = AMPCRuntime(config, ledger=ledger)
    if not pairs:
        runtime.seed([(("empty",), True)])
        runtime.round(
            [(lambda ctx: ctx.write(("done",), True), None)],
            "group-by: trivial input",
        )
        return {}

    n_chunks, _ = seed_chunks(runtime, "pairs", pairs)

    # Round 1: each chunk machine writes one shard per group it holds.
    # Distinct chunks write distinct keys, so no combiner is needed and
    # no machine ever stages more words than its own chunk.
    def scatter(ctx: MachineContext) -> None:
        j = ctx.payload
        chunk = ctx.read(("pairs", "chunk", j))
        words = word_size(chunk)
        ctx.hold(words)
        shards: dict[Hashable, list[Any]] = {}
        for group, value in chunk:
            shards.setdefault(group, []).append(value)
        for group, values in shards.items():
            ctx.write(("cellshard", group, j), values)
        ctx.release(words)

    runtime.round(
        [(scatter, j) for j in range(n_chunks)],
        "group-by: scatter",
        carry_forward=True,
    )

    # Host-side orchestration (control plane, like task assignment in
    # the real model): enumerate shards and rank them by chunk index.
    shard_keys = sorted(
        (key for key in runtime.table.keys()
         if isinstance(key, tuple) and key and key[0] == "cellshard"),
        key=lambda key: key[2],
    )
    ranks: dict[Hashable, int] = {}
    tasks: list[tuple[Hashable, int, int]] = []  # (group, chunk j, rank)
    for _, group, j in shard_keys:
        rank = ranks.get(group, 0)
        ranks[group] = rank + 1
        tasks.append((group, j, rank))

    # Round 2: one machine per shard re-emits it at its ordinal rank.
    def gather(ctx: MachineContext) -> None:
        group, j, rank = ctx.payload
        values = ctx.read(("cellshard", group, j))
        words = word_size(values)
        ctx.hold(words)
        ctx.write(("group", group, rank), values)
        ctx.release(words)

    runtime.round(
        [(gather, task) for task in tasks],
        "group-by: gather",
        carry_forward=True,
    )

    out: dict[Hashable, list[Any]] = {}
    for group, n_ranks in ranks.items():
        bucket: list[Any] = []
        for rank in range(n_ranks):
            bucket.extend(runtime.table.get(("group", group, rank)))
        out[group] = bucket
    return out
