"""Fan-in reduce trees and broadcast.

``ampc_reduce`` folds ``n`` values with an associative operator using a
tree of fan-in ``O(n^eps)``; the tree height — and hence the round
count — is ``O(1/eps)``.  ``ampc_broadcast`` is the one-round dual:
every machine adaptively reads the same key (adaptive reads make
broadcast free in AMPC, unlike MPC where it costs a spreading tree).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..config import AMPCConfig
from ..ledger import RoundLedger
from ..dht import word_size
from ..machine import MachineContext
from ..runtime import AMPCRuntime
from .distribute import chunk_size_for, seed_chunks


def ampc_reduce(
    config: AMPCConfig,
    values: Sequence[Any],
    op: Callable[[Any, Any], Any],
    *,
    ledger: RoundLedger | None = None,
) -> Any:
    """Reduce ``values`` with associative ``op`` in ``O(1/eps)`` rounds."""
    if len(values) == 0:
        raise ValueError("reduce of empty sequence")
    runtime = AMPCRuntime(config, ledger=ledger)
    n_chunks, _ = seed_chunks(runtime, "x", values)
    capacity = max(2, chunk_size_for(config))

    # Round 1: fold each chunk locally.
    def fold_chunk(ctx: MachineContext) -> None:
        j = ctx.payload
        chunk = ctx.read(("x", "chunk", j))
        words = word_size(chunk)
        ctx.hold(words)
        acc = chunk[0]
        for v in chunk[1:]:
            acc = op(acc, v)
        ctx.write(("acc", 0, j), acc)
        ctx.release(words)

    runtime.round(
        [(fold_chunk, j) for j in range(n_chunks)],
        "reduce: chunk fold",
        carry_forward=True,
    )

    # Upward fan-in rounds.
    level, count = 0, n_chunks
    while count > 1:
        groups = (count + capacity - 1) // capacity

        def fold_group(ctx: MachineContext, _level: int = level, _count: int = count) -> None:
            g = ctx.payload
            acc = None
            for child in range(g * capacity, min((g + 1) * capacity, _count)):
                v = ctx.read(("acc", _level, child))
                acc = v if acc is None else op(acc, v)
            ctx.write(("acc", _level + 1, g), acc)

        runtime.round(
            [(fold_group, g) for g in range(groups)],
            f"reduce: fan-in level {level + 1}",
            carry_forward=True,
        )
        level, count = level + 1, groups

    return runtime.table.get(("acc", level, 0))


def ampc_broadcast(
    config: AMPCConfig,
    value: Any,
    n_receivers: int,
    *,
    ledger: RoundLedger | None = None,
) -> list[Any]:
    """Broadcast ``value`` to ``n_receivers`` machines in one round.

    Returns the list of received values (all equal) as observed by the
    receivers — used by tests to confirm the adaptive-read broadcast
    pattern works and costs exactly one round.

    Receivers prove receipt by re-emitting the value into the next
    table, so the round's accounting includes ``n_receivers`` copies of
    the value in total space (and the value's words against each
    receiver's local memory).  That is the honest cost of observing a
    broadcast's delivery through the DHT — and it keeps the primitive
    correct under every round backend, including forked processes
    where host-side mutation from machine programs would be invisible.
    """
    runtime = AMPCRuntime(config, ledger=ledger)
    runtime.seed([(("bcast",), value)])

    # Receivers re-emit what they read; the host collects the emissions
    # from the table.  (Everything flows through the DHT — a machine
    # mutating host state it closed over would be invisible under the
    # process backend.)
    def receive(ctx: MachineContext) -> None:
        i = ctx.payload
        got = ctx.read(("bcast",))
        ctx.write(("recv", i), got)

    runtime.round(
        [(receive, i) for i in range(n_receivers)],
        "broadcast: adaptive read",
        carry_forward=True,
    )
    return [runtime.table.get(("recv", i)) for i in range(n_receivers)]
