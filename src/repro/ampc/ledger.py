"""Round and memory accounting for the AMPC simulator.

The paper's results are statements about three model-level quantities:

* number of **synchronous rounds**,
* peak **local memory** used by any machine within a round,
* peak **total space** held by the distributed hash tables.

:class:`RoundLedger` is the single source of truth for all three.  Two
kinds of entries exist:

``measured``
    produced by :class:`~repro.ampc.runtime.AMPCRuntime` when machine
    programs actually execute against the DHT;

``charged``
    produced by composite algorithm steps that perform their computation
    at numpy speed but account the round cost *proven* for that step by
    a cited lemma (see DESIGN.md section 5).  Every charge must carry a
    citation; tests audit this.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LedgerEntry:
    """One accounted step: how many rounds, why, and which kind."""

    rounds: int
    reason: str
    kind: str  # "measured" | "charged"
    local_peak: int = 0
    total_peak: int = 0
    queries: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative")
        if self.kind not in ("measured", "charged"):
            raise ValueError(f"unknown entry kind {self.kind!r}")
        if self.kind == "charged" and not self.reason:
            raise ValueError("charged entries must cite a reason/lemma")


@dataclass
class RoundLedger:
    """Accumulates rounds, memory high-water marks and DHT query counts."""

    entries: list[LedgerEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def measure(
        self,
        rounds: int,
        reason: str,
        *,
        local_peak: int = 0,
        total_peak: int = 0,
        queries: int = 0,
    ) -> None:
        """Record rounds that the runtime actually executed."""
        self.entries.append(
            LedgerEntry(
                rounds=rounds,
                reason=reason,
                kind="measured",
                local_peak=local_peak,
                total_peak=total_peak,
                queries=queries,
            )
        )

    def charge(
        self,
        rounds: int,
        reason: str,
        *,
        local_peak: int = 0,
        total_peak: int = 0,
        queries: int = 0,
    ) -> None:
        """Record rounds charged per a cited lemma/theorem.

        ``reason`` must name the source of the bound, e.g.
        ``"Lemma 13: edge time intervals"``.
        """
        self.entries.append(
            LedgerEntry(
                rounds=rounds,
                reason=reason,
                kind="charged",
                local_peak=local_peak,
                total_peak=total_peak,
                queries=queries,
            )
        )

    def absorb(self, other: "RoundLedger", *, parallel: bool = False) -> None:
        """Fold another ledger into this one.

        With ``parallel=True`` the other ledger describes work running
        *in parallel* with work already recorded, so its rounds extend
        this ledger only if they exceed the rounds already absorbed into
        the parallel group; callers model this by absorbing the max-round
        sibling (see :meth:`absorb_parallel`).
        """
        if parallel:
            raise NotImplementedError("use absorb_parallel for sibling groups")
        self.entries.extend(other.entries)

    def absorb_parallel(self, siblings: list["RoundLedger"], reason: str) -> None:
        """Absorb a group of ledgers whose work ran in parallel.

        The round cost of a parallel group is the **maximum** of the
        siblings' rounds (machines are partitioned among them); memory
        peaks are the max of local peaks and the *sum* of total peaks
        (they coexist in the DHT).
        """
        if not siblings:
            return
        rounds = max(s.rounds for s in siblings)
        local_peak = max(s.local_peak for s in siblings)
        total_peak = sum(s.total_peak for s in siblings)
        queries = sum(s.queries for s in siblings)
        kinds = {e.kind for s in siblings for e in s.entries}
        kind = "measured" if kinds == {"measured"} else "charged"
        self.entries.append(
            LedgerEntry(
                rounds=rounds,
                reason=f"parallel group ({len(siblings)} siblings): {reason}",
                kind=kind,
                local_peak=local_peak,
                total_peak=total_peak,
                queries=queries,
            )
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Total rounds across all recorded steps."""
        return sum(e.rounds for e in self.entries)

    @property
    def measured_rounds(self) -> int:
        return sum(e.rounds for e in self.entries if e.kind == "measured")

    @property
    def charged_rounds(self) -> int:
        return sum(e.rounds for e in self.entries if e.kind == "charged")

    @property
    def local_peak(self) -> int:
        """High-water mark of any machine's local memory, in words."""
        return max((e.local_peak for e in self.entries), default=0)

    @property
    def total_peak(self) -> int:
        """High-water mark of total DHT space, in words."""
        return max((e.total_peak for e in self.entries), default=0)

    @property
    def queries(self) -> int:
        """Total adaptive DHT read queries issued."""
        return sum(e.queries for e in self.entries)

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable per-step accounting table."""
        lines = [
            f"{'rounds':>6}  {'kind':<8}  {'local':>10}  {'total':>12}  reason",
            "-" * 78,
        ]
        for e in self.entries:
            lines.append(
                f"{e.rounds:>6}  {e.kind:<8}  {e.local_peak:>10}  "
                f"{e.total_peak:>12}  {e.reason}"
            )
        lines.append("-" * 78)
        lines.append(
            f"{self.rounds:>6}  total     {self.local_peak:>10}  {self.total_peak:>12}"
        )
        return "\n".join(lines)

    def citations(self) -> list[str]:
        """Reasons attached to charged entries (for the audit tests)."""
        return [e.reason for e in self.entries if e.kind == "charged"]
