"""AMPC model substrate: configuration, DHT chain, runtime, ledger.

The Adaptive Massively Parallel Computation model (Behnezhad et al.,
SPAA 2019) extends MPC with mid-round adaptive read access to a
distributed hash table.  This package simulates it with exact round,
local-memory and total-space accounting; see DESIGN.md for the
fidelity statement.
"""

from .config import AMPCConfig, DEFAULT_EPS
from .dht import DHTChain, HashTable, word_size
from .errors import (
    AMPCError,
    MemoryLimitExceeded,
    MissingKeyError,
    ProtocolError,
    TotalSpaceExceeded,
)
from .ledger import LedgerEntry, RoundLedger
from .machine import MachineContext
from .runtime import AMPCRuntime
from .trace import (
    export_trace,
    render_phase_table,
    render_timeline,
    summarize_phases,
)

__all__ = [
    "AMPCConfig",
    "DEFAULT_EPS",
    "AMPCError",
    "AMPCRuntime",
    "export_trace",
    "render_phase_table",
    "render_timeline",
    "summarize_phases",
    "DHTChain",
    "HashTable",
    "LedgerEntry",
    "MachineContext",
    "MemoryLimitExceeded",
    "MissingKeyError",
    "ProtocolError",
    "RoundLedger",
    "TotalSpaceExceeded",
    "word_size",
]
