"""AMPC model substrate: configuration, DHT chain, runtime, ledger.

The Adaptive Massively Parallel Computation model (Behnezhad et al.,
SPAA 2019) extends MPC with mid-round adaptive read access to a
distributed hash table.  This package simulates it with exact round,
local-memory and total-space accounting; see DESIGN.md for the
fidelity statement.

Rounds execute on a pluggable backend (:mod:`repro.ampc.backends`):
the serial reference, a thread pool, or forked worker processes that
partition the round's machines — selected per
:class:`~repro.ampc.config.AMPCConfig` (``backend=``), per runtime
(``AMPCRuntime(..., backend=...)``), or globally via the
``AMPC_BACKEND`` environment variable.  Backend choice never changes
observable results, ledger accounting, or traces; the differential
harness in ``tests/test_backend_equivalence.py`` enforces that.

Where this package sits relative to the graph core, the kernelization
pipeline and the serving layer is mapped in ``docs/ARCHITECTURE.md``.
"""

from .backends import (
    BACKENDS,
    MachineResult,
    ProcessBackend,
    RoundBackend,
    SerialBackend,
    ShmBackend,
    ThreadBackend,
    available_backends,
    resolve_backend,
)
from .config import AMPCConfig, DEFAULT_EPS
from .dht import (
    ColumnSnapshot,
    ColumnTable,
    DHTChain,
    HashTable,
    TableSnapshot,
    merge_writes,
    word_size,
)
from .errors import (
    AMPCError,
    AMPCUsageError,
    MemoryLimitExceeded,
    MissingKeyError,
    ProtocolError,
    TotalSpaceExceeded,
)
from .ledger import LedgerEntry, RoundLedger
from .machine import MachineContext
from .runtime import AMPCRuntime
from .trace import (
    export_trace,
    render_phase_table,
    render_timeline,
    summarize_phases,
)

__all__ = [
    "AMPCConfig",
    "BACKENDS",
    "DEFAULT_EPS",
    "AMPCError",
    "AMPCRuntime",
    "AMPCUsageError",
    "ColumnSnapshot",
    "ColumnTable",
    "export_trace",
    "render_phase_table",
    "render_timeline",
    "summarize_phases",
    "DHTChain",
    "HashTable",
    "LedgerEntry",
    "MachineContext",
    "MachineResult",
    "MemoryLimitExceeded",
    "MissingKeyError",
    "ProcessBackend",
    "ProtocolError",
    "RoundBackend",
    "RoundLedger",
    "SerialBackend",
    "ShmBackend",
    "TableSnapshot",
    "ThreadBackend",
    "TotalSpaceExceeded",
    "available_backends",
    "merge_writes",
    "resolve_backend",
    "word_size",
]
