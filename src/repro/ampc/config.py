"""AMPC model configuration.

The model parameters follow Section 1.1 of the paper:

* the input has size ``N`` (for graph problems, ``N = n + m``);
* every machine has local memory ``O(n^eps)`` words for a constant
  ``0 < eps < 1`` (the *fully scalable* regime);
* there are ``P = Theta~(N^(1-eps))`` machines;
* total space across all distributed hash tables is ``O~(N)`` — the
  specific algorithms in the paper use up to ``O((n+m) log^2 n)``.

:class:`AMPCConfig` turns the asymptotic statement into concrete word
budgets via explicit constants, so the simulator can *enforce* them and
benchmarks can report measured/budget ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _ceil_pow(n: int, exponent: float) -> int:
    """``ceil(n ** exponent)`` computed in floating point, min 1."""
    if n <= 1:
        return 1
    return max(1, math.ceil(n ** exponent))


@dataclass(frozen=True)
class AMPCConfig:
    """Concrete AMPC resource budgets for an input of size ``n_input``.

    Parameters
    ----------
    n_input:
        Problem-size parameter ``n`` the asymptotics are measured in.
        For the cut algorithms this is the number of vertices; budgets
        involving edges scale off :attr:`m_input`.
    eps:
        The fully-scalable memory exponent, ``0 < eps < 1``.  Local
        memory is ``local_constant * n ** eps`` words and most
        primitives finish in ``ceil(1/eps)`` rounds.
    m_input:
        Number of edges (defaults to ``n_input`` when unspecified).
    local_constant:
        Multiplier hidden in ``O(n^eps)``.  The default (8) is generous
        enough for the constant-factor bookkeeping all primitives need
        (e.g. sample sort pivot tables) while still forcing genuinely
        sublinear machines on every non-trivial input.
    total_log_power:
        Power of ``log2 n`` allowed in the total-space budget; the
        paper's Theorem 3 needs ``O((n+m) log^2 n)`` so the default
        is 2.
    total_constant:
        Multiplier hidden in the total-space ``O(.)``.
    backend:
        Round-execution backend name (``"serial"``, ``"thread"``,
        ``"process"``, ``"shm"``; see :mod:`repro.ampc.backends`).
        ``None`` defers
        to the ``AMPC_BACKEND`` environment variable, then serial.
        Backend choice never changes observable results — only how the
        round's machines execute on the host.
    """

    n_input: int
    eps: float = 0.5
    m_input: int | None = None
    local_constant: int = 8
    total_log_power: int = 2
    total_constant: int = 16
    backend: str | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.eps < 1.0):
            raise ValueError(f"eps must lie in (0,1), got {self.eps}")
        if self.n_input < 1:
            raise ValueError("n_input must be positive")
        if self.m_input is not None and self.m_input < 0:
            raise ValueError("m_input must be non-negative")

    # ------------------------------------------------------------------
    # Derived budgets
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Edge count used for total-space budgets."""
        return self.n_input if self.m_input is None else self.m_input

    @property
    def local_memory_words(self) -> int:
        """Per-machine budget: ``local_constant * N^eps`` words (>= 64).

        ``N = n + m`` is the *input size* the fully-scalable regime is
        defined over (Section 1: "an input of size N ... local memory
        of size O(N^eps)"); for edge-heavy graphs budgeting off ``n``
        alone would under-provision the machines that stream edges.
        The floor of 64 words keeps toy unit-test inputs runnable; it
        is irrelevant asymptotically.
        """
        big_n = self.n_input + self.m
        return max(64, self.local_constant * _ceil_pow(big_n, self.eps))

    @property
    def num_machines(self) -> int:
        """``Theta(N^(1-eps))`` machines with ``N = n + m``."""
        big_n = self.n_input + self.m
        return max(1, _ceil_pow(big_n, 1.0 - self.eps))

    @property
    def total_space_words(self) -> int:
        """Total DHT budget ``total_constant * (n+m) * log2(n)^p`` words."""
        big_n = self.n_input + self.m
        logn = max(1.0, math.log2(max(2, self.n_input)))
        return max(
            1024,
            math.ceil(self.total_constant * big_n * logn**self.total_log_power),
        )

    @property
    def rounds_per_primitive(self) -> int:
        """The ``O(1/eps)`` constant: rounds a primitive may take."""
        return math.ceil(1.0 / self.eps)

    # ------------------------------------------------------------------
    def scaled(self, n_input: int, m_input: int | None = None) -> "AMPCConfig":
        """Budget for a sub-instance (e.g. a recursive contraction copy).

        Keeps ``eps`` and the constants, swaps the instance size.  Used by
        Algorithm 1's recursion so that every level is accounted against
        budgets derived from *its own* instance size, matching how the
        paper divides machines among parallel sub-instances.
        """
        return AMPCConfig(
            n_input=n_input,
            eps=self.eps,
            m_input=m_input,
            local_constant=self.local_constant,
            total_log_power=self.total_log_power,
            total_constant=self.total_constant,
            backend=self.backend,
        )


DEFAULT_EPS = 0.5
