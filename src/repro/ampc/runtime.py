"""The AMPC round executor.

:class:`AMPCRuntime` owns the hash-table chain and the ledger.  One call
to :meth:`AMPCRuntime.round` executes a full synchronous round:

1. every machine program runs to completion with adaptive read access
   to an **immutable snapshot** of the previous table.  How the
   machines execute on the host — sequentially, on a thread pool, or
   partitioned over forked worker processes — is delegated to a
   pluggable :class:`~repro.ampc.backends.RoundBackend`; the model
   forbids intra-round machine-to-machine communication, so every
   backend is observationally equivalent (and differentially tested to
   be bit-identical) to the serial reference;
2. buffered writes are merged into the next table canonically by
   machine index (:func:`~repro.ampc.dht.merge_writes`); conflicting
   writes to the same key are resolved by last-writer-wins unless a
   ``combiner`` is supplied (e.g. ``min`` for reduce trees) — either
   way the merged table never depends on which machine finished first;
3. round counters and memory high-water marks land in the ledger,
   identically across backends.

Programs are dispatched as ``(program, payload)`` pairs; the payload is
the machine's "incoming message" for the round and is charged against
its local memory.

Backend selection: pass ``backend=`` (a name or a live
:class:`~repro.ampc.backends.RoundBackend`), set
:attr:`AMPCConfig.backend`, or export ``AMPC_BACKEND``; the default is
the serial reference.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .backends import RoundBackend, resolve_backend
from .config import AMPCConfig
from .dht import ColumnTable, DHTChain, HashTable, merge_writes
from .ledger import RoundLedger
from .machine import MachineContext

MachineProgram = Callable[[MachineContext], None]


class AMPCRuntime:
    """Executes machine programs round by round against the DHT chain."""

    def __init__(
        self,
        config: AMPCConfig,
        ledger: RoundLedger | None = None,
        *,
        num_shards: int = 16,
        backend: str | RoundBackend | None = None,
    ):
        self.config = config
        self.ledger = ledger if ledger is not None else RoundLedger()
        self.chain = DHTChain(config.total_space_words, num_shards=num_shards)
        self.backend = resolve_backend(
            backend, config_backend=getattr(config, "backend", None)
        )
        self._rounds_run = 0

    # ------------------------------------------------------------------
    @property
    def rounds_run(self) -> int:
        return self._rounds_run

    @property
    def table(self) -> HashTable:
        """The currently readable hash table."""
        return self.chain.current

    def seed(self, items: Iterable[tuple[Any, Any]]) -> None:
        """Load the input into ``H_0``."""
        self.chain.seed(items)

    def seed_columns(
        self, keys: Any, values: Any, value_dtype: Any = np.int64
    ) -> None:
        """Load packed-int64 input columns into a columnar ``H_0``."""
        table = ColumnTable("H0", value_dtype=value_dtype)
        table.put_many(keys, values)
        self.chain.seed_table(table)

    # ------------------------------------------------------------------
    def round(
        self,
        programs: Sequence[tuple[MachineProgram, Any]],
        reason: str,
        *,
        combiner: Callable[[Any, Any], Any] | None = None,
        carry_forward: bool = False,
    ) -> None:
        """Run one synchronous round.

        Parameters
        ----------
        programs:
            ``(program, payload)`` pairs, one per virtual machine.  The
            number of virtual machines may exceed ``config.num_machines``;
            the model allows that by time-multiplexing, which does not
            change the round count.
        reason:
            Label for the ledger entry.
        combiner:
            Optional associative merge for writes hitting the same key.
        carry_forward:
            When True, keys of the previous table that no program
            overwrote are copied into the next table.  This models the
            standard "re-emit your state" idiom without forcing every
            program to spell it out.
        """
        readable = self.chain.current
        snapshot = readable.snapshot()
        next_table = self.chain.make_next()

        results = self.backend.run_round(
            list(programs), snapshot, self.config.local_memory_words
        )

        local_peak = 0
        queries = 0
        for res in results:  # machine-index order, whatever ran when
            local_peak = max(local_peak, res.peak_words)
            queries += res.reads
        merge_writes(next_table, (res.writes for res in results), combiner)

        if carry_forward:
            for key, value in readable.items():
                if not next_table.contains(key):
                    next_table.put(key, value)

        self.chain.advance(next_table)
        self._rounds_run += 1
        self.ledger.measure(
            1,
            reason,
            local_peak=local_peak,
            total_peak=self.chain.high_water,
            queries=queries,
        )

    # ------------------------------------------------------------------
    def column_round(
        self,
        op: str,
        params: dict,
        n_machines: int,
        reason: str,
        *,
        combiner: str | None = None,
        carry_forward: bool = False,
    ) -> None:
        """Run one synchronous round over columnar state.

        The columnar twin of :meth:`round`: instead of closures, the
        round is a picklable spec — an op name registered in
        :mod:`repro.ampc.columnar` plus ``params`` — executed over the
        previous table's two array columns by a columnar-capable
        backend (``backend.supports_columnar``).  Merge, carry-forward,
        chain advancement and ledger accounting follow the exact same
        canonical rules as the object path; only the representation of
        machine state changes.
        """
        readable = self.chain.current
        snapshot = readable.snapshot()
        keys, values = snapshot.columns()
        next_table = self.chain.make_next_column(readable.value_dtype)

        results = self.backend.run_column_round(
            op, params, n_machines, keys, values, self.config.local_memory_words
        )

        local_peak = 0
        queries = 0
        for res in results:  # machine-index (lo) order
            local_peak = max(local_peak, res.peak_words)
            queries += res.reads
        next_table.merge_columns(
            [(res.write_keys, res.write_values) for res in results], combiner
        )

        if carry_forward:
            next_table.carry_forward(snapshot)

        self.chain.advance(next_table)
        self._rounds_run += 1
        self.ledger.measure(
            1,
            reason,
            local_peak=min(local_peak, self.config.local_memory_words),
            total_peak=self.chain.high_water,
            queries=queries,
        )

    # ------------------------------------------------------------------
    def run_plan(
        self,
        plan: Iterable[tuple[Sequence[tuple[MachineProgram, Any]], str]],
        *,
        combiner: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        """Execute a sequence of rounds."""
        for programs, reason in plan:
            self.round(programs, reason, combiner=combiner)

    def collect(self, prefix: str | None = None) -> dict[Any, Any]:
        """Gather results out of the final table (host-side, not a round).

        With ``prefix`` set, only string/tuple keys whose first component
        equals the prefix are returned, with the prefix stripped from
        tuple keys.
        """
        out: dict[Any, Any] = {}
        for key, value in self.table.items():
            if prefix is None:
                out[key] = value
            elif isinstance(key, tuple) and len(key) >= 2 and key[0] == prefix:
                rest = key[1] if len(key) == 2 else key[1:]
                out[rest] = value
        return out
