"""The AMPC round executor.

:class:`AMPCRuntime` owns the hash-table chain and the ledger.  One call
to :meth:`AMPCRuntime.round` executes a full synchronous round:

1. every machine program runs to completion with adaptive read access
   to the previous table (programs are executed sequentially — the model
   forbids intra-round machine-to-machine communication, so sequential
   execution is observationally equivalent to parallel execution);
2. buffered writes are merged into the next table; conflicting writes to
   the same key are resolved by last-writer-wins unless a ``combiner``
   is supplied (e.g. ``min`` for reduce trees);
3. round counters and memory high-water marks land in the ledger.

Programs are dispatched as ``(program, payload)`` pairs; the payload is
the machine's "incoming message" for the round and is charged against
its local memory.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from .config import AMPCConfig
from .dht import DHTChain, HashTable
from .ledger import RoundLedger
from .machine import MachineContext

MachineProgram = Callable[[MachineContext], None]


class AMPCRuntime:
    """Executes machine programs round by round against the DHT chain."""

    def __init__(
        self,
        config: AMPCConfig,
        ledger: RoundLedger | None = None,
        *,
        num_shards: int = 16,
    ):
        self.config = config
        self.ledger = ledger if ledger is not None else RoundLedger()
        self.chain = DHTChain(config.total_space_words, num_shards=num_shards)
        self._rounds_run = 0

    # ------------------------------------------------------------------
    @property
    def rounds_run(self) -> int:
        return self._rounds_run

    @property
    def table(self) -> HashTable:
        """The currently readable hash table."""
        return self.chain.current

    def seed(self, items: Iterable[tuple[Any, Any]]) -> None:
        """Load the input into ``H_0``."""
        self.chain.seed(items)

    # ------------------------------------------------------------------
    def round(
        self,
        programs: Sequence[tuple[MachineProgram, Any]],
        reason: str,
        *,
        combiner: Callable[[Any, Any], Any] | None = None,
        carry_forward: bool = False,
    ) -> None:
        """Run one synchronous round.

        Parameters
        ----------
        programs:
            ``(program, payload)`` pairs, one per virtual machine.  The
            number of virtual machines may exceed ``config.num_machines``;
            the model allows that by time-multiplexing, which does not
            change the round count.
        reason:
            Label for the ledger entry.
        combiner:
            Optional associative merge for writes hitting the same key.
        carry_forward:
            When True, keys of the previous table that no program
            overwrote are copied into the next table.  This models the
            standard "re-emit your state" idiom without forcing every
            program to spell it out.
        """
        readable = self.chain.current
        next_table = self.chain.make_next()
        local_limit = self.config.local_memory_words

        local_peak = 0
        queries = 0
        for machine_id, (program, payload) in enumerate(programs):
            ctx = MachineContext(machine_id, readable, local_limit, payload=payload)
            program(ctx)
            local_peak = max(local_peak, ctx.peak_words)
            queries += ctx.reads
            for key, value in ctx.drain_writes():
                if combiner is not None and next_table.contains(key):
                    value = combiner(next_table.get(key), value)
                next_table.put(key, value)

        if carry_forward:
            for key, value in readable.items():
                if not next_table.contains(key):
                    next_table.put(key, value)

        self.chain.advance(next_table)
        self._rounds_run += 1
        self.ledger.measure(
            1,
            reason,
            local_peak=local_peak,
            total_peak=self.chain.high_water,
            queries=queries,
        )

    # ------------------------------------------------------------------
    def run_plan(
        self,
        plan: Iterable[tuple[Sequence[tuple[MachineProgram, Any]], str]],
        *,
        combiner: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        """Execute a sequence of rounds."""
        for programs, reason in plan:
            self.round(programs, reason, combiner=combiner)

    def collect(self, prefix: str | None = None) -> dict[Any, Any]:
        """Gather results out of the final table (host-side, not a round).

        With ``prefix`` set, only string/tuple keys whose first component
        equals the prefix are returned, with the prefix stripped from
        tuple keys.
        """
        out: dict[Any, Any] = {}
        for key, value in self.table.items():
            if prefix is None:
                out[key] = value
            elif isinstance(key, tuple) and len(key) >= 2 and key[0] == prefix:
                rest = key[1] if len(key) == 2 else key[1:]
                out[rest] = value
        return out
