"""Per-machine execution context.

A *machine program* is a Python callable ``program(ctx)`` receiving a
:class:`MachineContext`.  During the round the program may:

* :meth:`MachineContext.read` — adaptive random access into the
  previous round's hash table (this is the A in AMPC: the key may
  depend on values read earlier in the same round);
* :meth:`MachineContext.write` — buffer a key/value for the *next*
  table; writes become visible only after the round ends;
* :meth:`MachineContext.hold` / :meth:`release` — declare local working
  memory so the simulator can enforce the ``O(n^eps)`` budget.

Reads and writes are themselves accounted against local memory: a
machine cannot read more words than fit in its memory, mirroring the
model's "reading and writing is limited by machine local memory".

``readable`` is normally an immutable
:class:`~repro.ampc.dht.TableSnapshot` handed out by the runtime's
round backend — contexts never get a handle that could write the
previous table, which is what makes parallel backends sound.  Machines
run isolated: a program must communicate only through ``ctx`` (reads,
writes, payload), never by mutating host objects it closed over —
host-side mutations are invisible under the process backend.
"""

from __future__ import annotations

from typing import Any, Iterable, Union

from .dht import HashTable, TableSnapshot, word_size
from .errors import MemoryLimitExceeded

ReadableTable = Union[HashTable, TableSnapshot]


class MachineContext:
    """Capability handle a machine program uses during one round."""

    def __init__(
        self,
        machine_id: int,
        readable: ReadableTable,
        local_limit: int,
        *,
        payload: Any = None,
    ):
        self.machine_id = machine_id
        self.payload = payload
        self._readable = readable
        self._local_limit = int(local_limit)
        self._held_words = 0
        self._peak_words = 0
        self._reads = 0
        self._writes: list[tuple[Any, Any]] = []
        self._write_words = 0
        if payload is not None:
            self.hold(word_size(payload))

    # ------------------------------------------------------------------
    # Local memory
    # ------------------------------------------------------------------
    def hold(self, words: int) -> None:
        """Declare ``words`` of local working memory as in use."""
        if words < 0:
            raise ValueError("words must be non-negative")
        self._held_words += words
        self._peak_words = max(self._peak_words, self._held_words)
        if self._held_words > self._local_limit:
            raise MemoryLimitExceeded(
                self._held_words, self._local_limit, self.machine_id
            )

    def release(self, words: int) -> None:
        """Release previously-held local memory."""
        self._held_words = max(0, self._held_words - words)

    @property
    def local_limit(self) -> int:
        return self._local_limit

    @property
    def peak_words(self) -> int:
        return self._peak_words

    @property
    def reads(self) -> int:
        return self._reads

    # ------------------------------------------------------------------
    # DHT access
    # ------------------------------------------------------------------
    def read(self, key: Any) -> Any:
        """Adaptive read from the previous round's table."""
        value = self._readable.get(key)
        self._reads += 1
        words = word_size(value)
        # Model the value passing through local memory.
        self.hold(words)
        self.release(words)
        return value

    def read_default(self, key: Any, default: Any = None) -> Any:
        value = self._readable.get_default(key, default)
        self._reads += 1
        words = word_size(value)
        self.hold(words)
        self.release(words)
        return value

    def contains(self, key: Any) -> bool:
        self._reads += 1
        return self._readable.contains(key)

    def write(self, key: Any, value: Any) -> None:
        """Buffer a write for the next table (visible next round)."""
        words = word_size(key) + word_size(value)
        self._write_words += words
        # Outgoing messages must fit in local memory alongside held data.
        self.hold(words)
        self.release(words)
        self._writes.append((key, value))

    def write_many(self, items: Iterable[tuple[Any, Any]]) -> None:
        for key, value in items:
            self.write(key, value)

    # ------------------------------------------------------------------
    def drain_writes(self) -> list[tuple[Any, Any]]:
        """Runtime hook: collect buffered writes at end of round."""
        writes, self._writes = self._writes, []
        return writes
