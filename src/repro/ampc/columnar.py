"""Columnar round specs: the vectorized execution path of the runtime.

The object path runs machine *programs* — Python closures reading and
writing one key at a time.  Closures cannot cross a spawn boundary, so
the process backend forks per round and every element pays interpreter
dispatch.  The columnar path replaces the closures with **round
specs**: a named op from the registry below plus a small picklable
``params`` dict.  Round state lives in a :class:`~repro.ampc.dht.ColumnTable`
whose two int64/float64 columns are the entire snapshot — exactly what
the shm backend publishes zero-copy to its persistent spawn pool.

Identity packing
----------------
Object-path keys are tuples like ``("succ", lvl, v)``.  Columnar keys
pack a small integer *tag* (which logical column) and an *index*
(which element) into one int64::

    key = (tag << IDX_BITS) | index        0 <= index < 2**IDX_BITS

A whole logical column is therefore one contiguous slice of the sorted
key column (:func:`column`), and sparse lookups are one
``searchsorted`` (:func:`column_get`).

Op contract
-----------
``op(keys, values, params, lo, hi) -> (write_keys, write_values,
peak_words, reads)`` executes virtual machines ``lo..hi`` of the round
against the snapshot columns and returns its buffered writes plus
ledger stats.  Ops must only *read* the snapshot (the arrays are
flagged read-only) and must emit writes in machine order, mirroring
the object path's per-machine write buffers — the runtime merges slice
results in machine-index order, same canonical rule as
:func:`repro.ampc.dht.merge_writes`.

Every op mirrors its object-path counterpart's *round structure*: the
same host control flow issues the same number of rounds with the same
reason strings, and outputs are bit-identical — that is what the
differential harness (``tests/test_columnar_equivalence.py``) checks.
Ledger *words/queries* are recomputed from array sizes and may differ
from the object path within a documented tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

#: bits reserved for the element index inside a packed int64 key
IDX_BITS = 38

_SENTINEL = np.int64(np.iinfo(np.int64).min // 2)


def pack(tag: int, idx: Any) -> Any:
    """Pack ``(tag, index)`` identities into int64 key space."""
    return (np.int64(tag) << IDX_BITS) | np.asarray(idx, dtype=np.int64)


def column(keys: np.ndarray, values: np.ndarray, tag: int) -> np.ndarray:
    """The contiguous value slice of logical column ``tag`` (index order)."""
    lo = np.searchsorted(keys, np.int64(tag) << IDX_BITS)
    hi = np.searchsorted(keys, np.int64(tag + 1) << IDX_BITS)
    return values[lo:hi]


def column_get(
    keys: np.ndarray,
    values: np.ndarray,
    tag: int,
    idx: np.ndarray,
    default: Any = None,
) -> np.ndarray:
    """Sparse lookup of ``column[tag][idx]``; missing keys get ``default``.

    With ``default=None`` a missing key raises ``KeyError`` — columnar
    ops only look up identities the mirrored object program would have
    read, so a miss is a bug, not data.
    """
    want = pack(tag, idx)
    pos = np.searchsorted(keys, want)
    pos_c = np.minimum(pos, max(0, keys.size - 1))
    if keys.size:
        found = (pos < keys.size) & (keys[pos_c] == want)
    else:
        found = np.zeros(want.shape, dtype=bool)
    if found.all():
        return values[pos_c]
    if default is None:
        raise KeyError(int(want[~found][0]))
    out = np.full(want.shape, default, dtype=values.dtype)
    out[found] = values[pos_c[found]]
    return out


def _masked_get(keys, values, tag, idx, default):
    """``column_get`` that passes ``-1`` indices through as ``default``."""
    idx = np.asarray(idx, dtype=np.int64)
    safe = np.where(idx < 0, 0, idx)
    out = column_get(keys, values, tag, safe, default=default)
    return np.where(idx < 0, np.asarray(default, dtype=out.dtype), out)


@dataclass
class ColumnSliceResult:
    """One machine slice's contribution to a columnar round."""

    lo: int
    hi: int
    write_keys: np.ndarray
    write_values: np.ndarray
    peak_words: int = 0
    reads: int = 0


ColumnOp = Callable[
    [np.ndarray, np.ndarray, dict, int, int],
    tuple[np.ndarray, np.ndarray, int, int],
]

OPS: dict[str, ColumnOp] = {}


def columnar_op(name: str) -> Callable[[ColumnOp], ColumnOp]:
    def register(fn: ColumnOp) -> ColumnOp:
        OPS[name] = fn
        return fn

    return register


def execute_column_slice(
    op: str,
    keys: np.ndarray,
    values: np.ndarray,
    params: dict,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Run machines ``lo..hi`` of a columnar round spec.

    The single entry point shared by the shm backend's pool workers and
    its in-process fast path — a spawn worker needs to import only this
    module (plus numpy) to execute any round.
    """
    if op not in OPS:
        raise KeyError(f"unknown columnar op {op!r}")
    wk, wv, peak, reads = OPS[op](keys, values, params, lo, hi)
    return (
        np.asarray(wk, dtype=np.int64),
        np.asarray(wv),
        int(peak),
        int(reads),
    )


def _empty(dtype=np.int64):
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=dtype), 0, 0


# ======================================================================
# Shared column tags.  Each primitive uses its own runtime (fresh table
# chain), so tags only need to be unique within one primitive.
# ======================================================================

# prefix scan
T_X = 1          # input values
T_LOCMIN = 2     # per-chunk minimum running prefix
T_OFF_BASE = 100     # + level: per-group offsets
T_TOT_BASE = 300     # + level: per-group totals
T_PREF = 3       # final prefix values (element positions)
T_GLOBMIN = 4    # per-chunk global minimum candidates
T_MINPREF = 5    # the answer

# sample sort
T_IN = 1         # input values (element positions)
T_RUN = 2        # per-chunk sorted runs (element positions)
T_SAMP = 3       # regular samples (per-chunk offsets)
T_PIV = 4        # selected pivots
T_SEGSZ = 5      # (bucket, chunk) segment sizes, bucket-major
T_BOFF = 6       # per-bucket global output offsets
T_OUT = 7        # final sorted output (global positions)
T_MS_BASE = 500  # + merge level: merged stream storage

# list ranking
T_RANK = 1
T_SUCC_BASE = 10_000   # + level
T_W_BASE = 20_000      # + level
T_ANCH_BASE = 30_000   # + level


# ======================================================================
# Prefix scan ops (mirrors primitives/prefix.py round for round)
# ======================================================================

@columnar_op("prefix_chunk_stats")
def _prefix_chunk_stats(keys, values, params, lo, hi):
    bounds = params["bounds"]
    if hi <= lo:
        return _empty(values.dtype)
    x = column(keys, values, T_X)
    elo, ehi = bounds[lo], bounds[hi]
    seg = x[elo:ehi]
    starts = np.asarray(bounds[lo:hi], dtype=np.int64) - elo
    cs = np.cumsum(seg)
    # running prefix within each chunk: global cumsum minus the cumsum
    # at the chunk's start (exact for int64)
    chunk_base = np.repeat(
        np.concatenate([[0], cs[starts[1:] - 1]]) if starts.size > 1 else [0],
        np.diff(np.append(starts, ehi - elo)),
    )
    running = cs - chunk_base
    ends = np.append(starts[1:], ehi - elo) - 1
    totals = running[ends]
    locmin = np.minimum.reduceat(running, starts)
    machine = np.arange(lo, hi, dtype=np.int64)
    wk = np.concatenate([pack(T_TOT_BASE + 0, machine), pack(T_LOCMIN, machine)])
    wv = np.concatenate([totals, locmin])
    peak = int(np.diff(np.asarray(bounds[lo : hi + 1])).max()) + 4
    return wk, wv, peak, int(seg.size)


@columnar_op("prefix_group_sum")
def _prefix_group_sum(keys, values, params, lo, hi):
    cap = params["capacity"]
    src_count = params["src_count"]
    if hi <= lo:
        return _empty(values.dtype)
    src = column(keys, values, T_TOT_BASE + params["src_level"])
    child_lo, child_hi = lo * cap, min(hi * cap, src_count)
    seg = src[child_lo:child_hi]
    starts = np.arange(0, child_hi - child_lo, cap, dtype=np.int64)
    totals = np.add.reduceat(seg, starts)
    wk = pack(T_TOT_BASE + params["dst_level"], np.arange(lo, hi, dtype=np.int64))
    return wk, totals, cap + 2, int(seg.size)


@columnar_op("prefix_top_scan")
def _prefix_top_scan(keys, values, params, lo, hi):
    if hi <= lo:
        return _empty(values.dtype)
    top = params["top_level"]
    tot = column(keys, values, T_TOT_BASE + top)
    off = np.concatenate([[0], np.cumsum(tot[:-1])]) if tot.size else tot
    wk = pack(T_OFF_BASE + top, np.arange(tot.size, dtype=np.int64))
    return wk, np.asarray(off, dtype=values.dtype), int(tot.size) + 2, int(tot.size)


@columnar_op("prefix_push_down")
def _prefix_push_down(keys, values, params, lo, hi):
    cap = params["capacity"]
    lvl = params["level"]
    child_count = params["child_count"]
    if hi <= lo:
        return _empty(values.dtype)
    off = column(keys, values, T_OFF_BASE + lvl)[lo:hi]
    tot = column(keys, values, T_TOT_BASE + (lvl - 1))
    child_lo, child_hi = lo * cap, min(hi * cap, child_count)
    seg = tot[child_lo:child_hi]
    starts = np.arange(0, child_hi - child_lo, cap, dtype=np.int64)
    cs = np.cumsum(seg)
    excl = cs - seg                      # inclusive -> exclusive
    group_sizes = np.diff(np.append(starts, child_hi - child_lo))
    group_base = np.repeat(excl[starts], group_sizes)
    child_off = np.repeat(off, group_sizes) + (excl - group_base)
    wk = pack(
        T_OFF_BASE + (lvl - 1),
        np.arange(child_lo, child_hi, dtype=np.int64),
    )
    return wk, child_off, cap + 4, int(seg.size) + (hi - lo)


@columnar_op("prefix_finalize")
def _prefix_finalize(keys, values, params, lo, hi):
    bounds = params["bounds"]
    if hi <= lo:
        return _empty(values.dtype)
    x = column(keys, values, T_X)
    off = column(keys, values, T_OFF_BASE + 0)[lo:hi]
    locmin = column(keys, values, T_LOCMIN)[lo:hi]
    elo, ehi = bounds[lo], bounds[hi]
    seg = x[elo:ehi]
    starts = np.asarray(bounds[lo:hi], dtype=np.int64) - elo
    cs = np.cumsum(seg)
    chunk_base = np.repeat(
        np.concatenate([[0], cs[starts[1:] - 1]]) if starts.size > 1 else [0],
        np.diff(np.append(starts, ehi - elo)),
    )
    sizes = np.diff(np.append(starts, ehi - elo))
    pref = (cs - chunk_base) + np.repeat(off, sizes)
    machine = np.arange(lo, hi, dtype=np.int64)
    wk = np.concatenate(
        [pack(T_PREF, np.arange(elo, ehi, dtype=np.int64)), pack(T_GLOBMIN, machine)]
    )
    wv = np.concatenate([pref, off + locmin])
    peak = int(sizes.max()) * 2 + 4
    return wk, wv, peak, int(seg.size) + 2 * (hi - lo)


@columnar_op("prefix_min_reduce")
def _prefix_min_reduce(keys, values, params, lo, hi):
    if hi <= lo:
        return _empty(values.dtype)
    gm = column(keys, values, T_GLOBMIN)
    wk = pack(T_MINPREF, np.zeros(1, dtype=np.int64))
    return wk, np.asarray([gm.min()], dtype=values.dtype), 2, int(gm.size)


# ======================================================================
# Sample sort ops (mirrors primitives/sort.py round for round)
# ======================================================================

@columnar_op("sort_local")
def _sort_local(keys, values, params, lo, hi):
    bounds, spc, samp_off = params["bounds"], params["spc"], params["samp_off"]
    if hi <= lo:
        return _empty(values.dtype)
    x = column(keys, values, T_IN)
    wk_parts, wv_parts = [], []
    peak = 0
    reads = 0
    for j in range(lo, hi):
        run = np.sort(x[bounds[j] : bounds[j + 1]], kind="stable")
        wk_parts.append(pack(T_RUN, np.arange(bounds[j], bounds[j + 1], dtype=np.int64)))
        wv_parts.append(run)
        step = max(1, run.size // spc)
        samples = run[::step][:spc]
        wk_parts.append(
            pack(T_SAMP, samp_off[j] + np.arange(samples.size, dtype=np.int64))
        )
        wv_parts.append(samples)
        peak = max(peak, run.size + samples.size)
        reads += run.size
    return np.concatenate(wk_parts), np.concatenate(wv_parts), peak, reads


@columnar_op("sort_pivots")
def _sort_pivots(keys, values, params, lo, hi):
    if hi <= lo:
        return _empty(values.dtype)
    n_buckets = params["n_buckets"]
    samples = np.sort(column(keys, values, T_SAMP), kind="stable")
    step = max(1, samples.size // n_buckets)
    pivots = samples[step::step][: n_buckets - 1]
    wk = pack(T_PIV, np.arange(pivots.size, dtype=np.int64))
    return wk, pivots, int(samples.size) + 2, int(samples.size)


@columnar_op("sort_partition")
def _sort_partition(keys, values, params, lo, hi):
    bounds, n_chunks = params["bounds"], params["n_chunks"]
    n_buckets = params["n_buckets"]
    if hi <= lo:
        return _empty(values.dtype)
    run_col = column(keys, values, T_RUN)
    pivots = column(keys, values, T_PIV)
    wk_parts, wv_parts = [], []
    peak = 0
    reads = 0
    for j in range(lo, hi):
        run = run_col[bounds[j] : bounds[j + 1]]
        cuts = np.searchsorted(run, pivots, side="right")
        edges = np.concatenate([[0], cuts, [run.size]])
        sizes = np.diff(edges)
        wk_parts.append(
            pack(T_SEGSZ, np.arange(n_buckets, dtype=np.int64) * n_chunks + j)
        )
        wv_parts.append(sizes)
        peak = max(peak, run.size + pivots.size + n_buckets)
        reads += run.size + pivots.size
    return np.concatenate(wk_parts), np.concatenate(wv_parts), peak, reads


@columnar_op("sort_bucket_offsets")
def _sort_bucket_offsets(keys, values, params, lo, hi):
    if hi <= lo:
        return _empty(values.dtype)
    n_buckets, n_chunks = params["n_buckets"], params["n_chunks"]
    segsz = column(keys, values, T_SEGSZ)
    totals = (
        segsz.reshape(n_buckets, n_chunks).sum(axis=1)
        if segsz.size
        else np.zeros(n_buckets, dtype=values.dtype)
    )
    off = np.concatenate([[0], np.cumsum(totals[:-1])])
    wk = pack(T_BOFF, np.arange(n_buckets, dtype=np.int64))
    return wk, np.asarray(off, dtype=values.dtype), n_buckets * 2, int(segsz.size)


def _gather_sources(keys, values, sources):
    parts = [
        column(keys, values, tag)[start : start + length]
        for tag, start, length in sources
    ]
    return np.concatenate(parts) if parts else np.empty(0, dtype=values.dtype)


@columnar_op("sort_merge_level")
def _sort_merge_level(keys, values, params, lo, hi):
    groups, out_tag = params["groups"], params["out_tag"]
    if hi <= lo:
        return _empty(values.dtype)
    wk_parts, wv_parts = [], []
    peak = 0
    reads = 0
    for g in range(lo, hi):
        sources, out_start = groups[g]
        merged = np.sort(_gather_sources(keys, values, sources), kind="stable")
        wk_parts.append(
            pack(out_tag, out_start + np.arange(merged.size, dtype=np.int64))
        )
        wv_parts.append(merged)
        peak = max(peak, merged.size + len(sources))
        reads += merged.size
    return np.concatenate(wk_parts), np.concatenate(wv_parts), peak, reads


@columnar_op("sort_final_merge")
def _sort_final_merge(keys, values, params, lo, hi):
    buckets = params["buckets"]  # machine b -> list of sources
    if hi <= lo:
        return _empty(values.dtype)
    boff = column(keys, values, T_BOFF)
    wk_parts, wv_parts = [], []
    peak = 0
    reads = 0
    for b in range(lo, hi):
        merged = np.sort(_gather_sources(keys, values, buckets[b]), kind="stable")
        if merged.size:
            start = int(boff[b])
            wk_parts.append(pack(T_OUT, start + np.arange(merged.size, dtype=np.int64)))
            wv_parts.append(merged)
        peak = max(peak, merged.size + 2)
        reads += merged.size + 1
    if not wk_parts:
        return _empty(values.dtype)
    return np.concatenate(wk_parts), np.concatenate(wv_parts), peak, reads


# ======================================================================
# List ranking ops (mirrors primitives/listrank.py round for round)
# ======================================================================

@columnar_op("lr_mark")
def _lr_mark(keys, values, params, lo, hi):
    idxs = np.asarray(params["idxs"], dtype=np.int64)[lo:hi]
    wk = pack(params["out_tag"], idxs)
    return wk, np.ones(idxs.size, dtype=np.int64), 2, 0


@columnar_op("lr_zero_rank")
def _lr_zero_rank(keys, values, params, lo, hi):
    idxs = np.asarray(params["idxs"], dtype=np.int64)[lo:hi]
    return pack(T_RANK, idxs), np.zeros(idxs.size, dtype=np.int64), 2, 0


@columnar_op("lr_contract")
def _lr_contract(keys, values, params, lo, hi):
    succ_tag, w_tag = params["succ_tag"], params["w_tag"]
    anchor_tag = params["anchor_tag"]
    v = np.asarray(params["next_idxs"], dtype=np.int64)[lo:hi]
    if v.size == 0:
        return _empty(values.dtype)
    # Mirrors the object walk: u = succ[v]; w = w[v]; while u is not an
    # anchor (tails are always anchors, so u only hits None when v is a
    # tail itself): total += w; w = w[u]; u = succ[u]; finally add w.
    u = column_get(keys, values, succ_tag, v)
    w = column_get(keys, values, w_tag, v)
    tot = np.zeros(v.size, dtype=np.int64)
    reads = 2 * v.size
    anch = _masked_get(keys, values, anchor_tag, u, 0) != 0
    active = (u >= 0) & ~anch
    steps = 0
    limit = params["max_steps"]
    while active.any():
        steps += 1
        if steps > limit:
            raise ValueError("list has no tail; input must be acyclic")
        ai = np.flatnonzero(active)
        tot[ai] += w[ai]
        w[ai] = column_get(keys, values, w_tag, u[ai])
        u[ai] = column_get(keys, values, succ_tag, u[ai])
        reads += 3 * ai.size
        anch_a = _masked_get(keys, values, anchor_tag, u[ai], 0) != 0
        active[ai] = (u[ai] >= 0) & ~anch_a
    reached = u >= 0
    tot = np.where(reached, tot + w, 0)
    wk = np.concatenate(
        [pack(params["out_succ_tag"], v), pack(params["out_w_tag"], v)]
    )
    wv = np.concatenate([u, tot])
    return wk, wv, 8, int(reads)


@columnar_op("lr_base")
def _lr_base(keys, values, params, lo, hi):
    succ_tag, w_tag = params["succ_tag"], params["w_tag"]
    top = np.asarray(params["top_idxs"], dtype=np.int64)
    if hi <= lo or top.size == 0:
        return _empty(values.dtype)
    # rank[v] = sum of w along the chain from v, excluding the tail's 0.
    cur = top.copy()
    tot = np.zeros(top.size, dtype=np.int64)
    nxt = column_get(keys, values, succ_tag, cur)
    active = nxt >= 0
    reads = top.size
    for _ in range(top.size + 1):
        if not active.any():
            break
        ai = np.flatnonzero(active)
        tot[ai] += column_get(keys, values, w_tag, cur[ai])
        cur[ai] = nxt[ai]
        nxt_a = column_get(keys, values, succ_tag, cur[ai])
        reads += 2 * ai.size
        active[ai] = nxt_a >= 0
        nxt[ai] = nxt_a
    else:
        raise ValueError("list has a cycle; input must be acyclic")
    return pack(T_RANK, top), tot, 3 * int(top.size) + 2, int(reads)


@columnar_op("lr_unwind")
def _lr_unwind(keys, values, params, lo, hi):
    succ_tag, w_tag = params["succ_tag"], params["w_tag"]
    v = np.asarray(params["pending_idxs"], dtype=np.int64)[lo:hi]
    if v.size == 0:
        return _empty(values.dtype)
    # Mirrors: total = 0; u = v; while rank[u] unknown: total += w[u];
    # u = succ[u]; if u is None -> rank 0 tail; else rank[v] = total + rank[u].
    res = np.zeros(v.size, dtype=np.int64)
    tot = np.zeros(v.size, dtype=np.int64)
    u = v.copy()
    pending = np.arange(v.size)
    reads = 0
    limit = params["max_steps"]
    steps = 0
    while pending.size:
        steps += 1
        if steps > limit:
            raise ValueError("list has a cycle; input must be acyclic")
        up = u[pending]
        tot[pending] += column_get(keys, values, w_tag, up)
        up = column_get(keys, values, succ_tag, up)
        u[pending] = up
        reads += 2 * pending.size
        tail = up < 0
        rk = _masked_get(keys, values, T_RANK, up, _SENTINEL)
        known = rk != _SENTINEL
        reads += pending.size
        done = tail | known
        di = pending[done]
        res[di] = tot[di] + np.where(tail[done], 0, rk[done])
        pending = pending[~done]
    return pack(T_RANK, v), res, 8, int(reads)
