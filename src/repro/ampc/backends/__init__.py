"""Pluggable round-execution backends for the AMPC runtime.

The AMPC model is defined by machines running *in parallel* against a
shared DHT each round.  :class:`~repro.ampc.runtime.AMPCRuntime`
delegates round execution to a :class:`RoundBackend`:

===========================  ===========================================
:class:`SerialBackend`       machines run one by one in-process — the
                             reference semantics every other backend is
                             differentially tested against
:class:`ThreadBackend`       a shared thread pool over the round's
                             immutable table snapshot
:class:`ProcessBackend`      forked worker processes, each executing a
                             contiguous slice of the machine indices and
                             shipping its write buffers back to the
                             parent for the canonical index-ordered merge
:class:`ShmBackend`          a **persistent spawn-context pool** fed
                             picklable columnar round specs over
                             zero-copy ``multiprocessing.shared_memory``
                             snapshots; object-path rounds run inline
===========================  ===========================================

Selection (first match wins): an explicit ``backend=`` argument to
``AMPCRuntime``, the :attr:`repro.ampc.AMPCConfig.backend` field, the
``AMPC_BACKEND`` environment variable, then ``"serial"``.  String names
resolve to process-wide shared instances so the thousands of short-lived
runtimes the primitives create all reuse one pool.
"""

from __future__ import annotations

import os
import threading

from .base import MachineResult, RoundBackend, execute_machine
from .process import ProcessBackend
from .serial import SerialBackend
from .shm import ShmBackend
from .thread import ThreadBackend

#: name -> constructor for the built-in backends (CLI / env spellings)
BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
    "shm": ShmBackend,
}

_shared: dict[str, RoundBackend] = {}
_shared_lock = threading.Lock()


def available_backends() -> list[str]:
    """The selectable backend names, reference first."""
    return list(BACKENDS)


def parse_backend_spec(spec: str) -> tuple[str, int | None]:
    """Validate a ``name[:workers]`` spec; returns ``(name, workers)``.

    Raises ``ValueError`` for unknown names, non-positive or malformed
    worker counts, and worker counts on ``serial`` (which has none).
    The single parser shared by :func:`resolve_backend` and the CLI
    flag, so the two can never disagree about what is valid.
    """
    key = spec.strip().lower()
    name, _, workers_part = key.partition(":")
    workers: int | None = None
    if workers_part:
        try:
            workers = int(workers_part)
        except ValueError:
            raise ValueError(f"bad worker count in AMPC backend spec {spec!r}")
        if workers < 1:
            raise ValueError(f"worker count must be >= 1 in {spec!r}")
    if name not in BACKENDS or (workers is not None and name == "serial"):
        raise ValueError(
            f"unknown AMPC backend {spec!r}; available: {available_backends()} "
            "(thread/process/shm optionally take ':<workers>')"
        )
    return name, workers


def resolve_backend(
    spec: str | RoundBackend | None = None,
    *,
    config_backend: str | None = None,
) -> RoundBackend:
    """Turn a backend spec into a live backend instance.

    ``spec`` may be a :class:`RoundBackend` (used as-is), a name, or
    ``None`` — in which case ``config_backend`` and then the
    ``AMPC_BACKEND`` environment variable are consulted before falling
    back to the serial reference.  Thread/process names accept an
    explicit worker count as ``"thread:8"`` / ``"process:4"`` (without
    one, the host's CPU count decides — note ``process`` on a
    single-core host degrades to serial execution, which is
    observationally identical).  Named backends are shared
    process-wide, one instance per distinct spec.
    """
    if isinstance(spec, RoundBackend):
        return spec
    raw = spec or config_backend or os.environ.get("AMPC_BACKEND") or "serial"
    name, workers = parse_backend_spec(raw)
    key = raw.strip().lower()
    with _shared_lock:
        backend = _shared.get(key)
        if backend is None:
            backend = BACKENDS[name]() if workers is None else BACKENDS[name](workers)
            _shared[key] = backend
        return backend


def shutdown_shared_backends() -> None:
    """Close and drop the shared named backends (tests / clean exits)."""
    with _shared_lock:
        backends = list(_shared.values())
        _shared.clear()
    for backend in backends:
        backend.close()


__all__ = [
    "BACKENDS",
    "MachineResult",
    "ProcessBackend",
    "RoundBackend",
    "SerialBackend",
    "ShmBackend",
    "ThreadBackend",
    "available_backends",
    "execute_machine",
    "parse_backend_spec",
    "resolve_backend",
    "shutdown_shared_backends",
]
