"""Process-pool round backend (fork-per-round).

Machine programs are arbitrary Python closures — the primitives build
them on the fly around captured host state — so they cannot cross a
pickle boundary into a long-lived worker pool.  Instead the backend
forks its workers *at the round boundary*: each child inherits the
round batch (programs + table snapshot) through copy-on-write memory,
runs a contiguous slice of the machine indices, and ships back only the
plain-data :class:`~repro.ampc.backends.base.MachineResult` buffers
(DHT keys and values are picklable by construction — they live in hash
tables).  The parent then concatenates the slices in index order and
hands them to the runtime, whose canonical machine-index write merge
(:func:`repro.ampc.dht.merge_writes`) makes combiner resolution
independent of which worker finished first.

Failure semantics match the serial reference: the parent re-raises the
exception of the lowest-indexed failing machine.  A worker that dies
without reporting (segfault, ``os._exit``) surfaces as a
:class:`~repro.ampc.errors.ProtocolError` naming its machine slice.

Platforms without ``fork`` (Windows; macOS constraints) and
single-worker configurations fall back to in-process serial execution,
which is observationally identical — that is the whole point of the
backend contract.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Any, Sequence

from ..errors import ProtocolError
from .base import (
    MachineProgram,
    MachineResult,
    Readable,
    RoundBackend,
    execute_machine,
)
from .serial import SerialBackend

#: the round batch a forked child inherits: (programs, readable, limit).
#: Set immediately before forking, cleared right after; never read by
#: the parent's own execution paths.  ``_fork_lock`` serializes the
#: set-batch/fork/clear window: the backend instance is shared
#: process-wide and concurrent rounds (e.g. HTTP handler threads each
#: running trials inline) would otherwise fork children against each
#: other's batches.  Only the spawn window is serialized — workers of
#: concurrent rounds still *run* in parallel.
_FORK_BATCH: tuple | None = None
_fork_lock = threading.Lock()


def _worker_main(conn, lo: int, hi: int) -> None:
    """Child entry point: run machines ``lo..hi`` and report via pipe."""
    assert _FORK_BATCH is not None, "forked without a round batch"
    programs, readable, local_limit = _FORK_BATCH
    results: list[MachineResult] = []
    failure: tuple[int, BaseException] | None = None
    for machine_id in range(lo, hi):
        program, payload = programs[machine_id]
        try:
            results.append(
                execute_machine(machine_id, program, payload, readable, local_limit)
            )
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            failure = (machine_id, exc)
            break
    try:
        if failure is not None:
            conn.send(("err", failure[0], failure[1]))
        else:
            conn.send(("ok", lo, results))
    except Exception as exc:  # unpicklable value or exception
        conn.send(
            (
                "err",
                failure[0] if failure is not None else lo,
                ProtocolError(
                    f"machine result for slice [{lo}, {hi}) could not cross "
                    f"the process boundary: {exc!r}"
                ),
            )
        )
    finally:
        conn.close()


def _slices(n: int, workers: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``workers`` contiguous, balanced slices."""
    workers = min(workers, n)
    base, extra = divmod(n, workers)
    bounds = []
    lo = 0
    for w in range(workers):
        hi = lo + base + (1 if w < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ProcessBackend(RoundBackend):
    """Partitions machines over forked worker processes, one per round."""

    name = "process"

    def __init__(self, workers: int | None = None, *, min_machines: int = 4):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or (os.cpu_count() or 1)
        #: rounds with fewer machines than this run serially in-process:
        #: fork+pipe costs ~ms per round, so machine counts that cannot
        #: amortise it should not pay it.  Observationally identical
        #: either way.
        self.min_machines = max(1, min_machines)
        self._serial = SerialBackend()
        self._fork_available = "fork" in multiprocessing.get_all_start_methods()

    def run_round(
        self,
        programs: Sequence[tuple[MachineProgram, Any]],
        readable: Readable,
        local_limit: int,
    ) -> list[MachineResult]:
        n = len(programs)
        if (
            n < self.min_machines
            or min(self.workers, n) <= 1
            or not self._fork_available
        ):
            return self._serial.run_round(programs, readable, local_limit)

        global _FORK_BATCH
        ctx = multiprocessing.get_context("fork")
        workers: list[tuple] = []
        with _fork_lock:
            _FORK_BATCH = (programs, readable, local_limit)
            try:
                for lo, hi in _slices(n, self.workers):
                    recv_conn, send_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_worker_main, args=(send_conn, lo, hi), daemon=True
                    )
                    proc.start()
                    send_conn.close()  # child holds the write end now
                    workers.append((proc, recv_conn, lo, hi))
            finally:
                _FORK_BATCH = None

        slices: list[list[MachineResult]] = []
        first_error: tuple[int, BaseException] | None = None
        for proc, conn, lo, hi in workers:
            try:
                # Receive before join: a worker blocked on a full pipe
                # buffer would otherwise deadlock against our join.
                message = conn.recv()
            except EOFError:
                message = (
                    "err",
                    lo,
                    ProtocolError(
                        f"round worker for machines [{lo}, {hi}) exited "
                        "without reporting results"
                    ),
                )
            finally:
                conn.close()
            proc.join()
            if message[0] == "ok":
                slices.append(message[2])
            else:
                _, machine_id, exc = message
                if first_error is None or machine_id < first_error[0]:
                    first_error = (machine_id, exc)
        if first_error is not None:
            raise first_error[1]
        results = [res for chunk in slices for res in chunk]
        return results
