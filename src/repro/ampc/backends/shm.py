"""Shared-memory round backend: persistent spawn pool, zero-copy snapshots.

:class:`~repro.ampc.backends.process.ProcessBackend` forks per round
because machine programs are closures; that costs milliseconds of
fork+pipe per round and ties the backend to fork-capable platforms.
The shm backend removes both constraints by changing *what* crosses the
process boundary: instead of closures it ships **columnar round specs**
— an op name from :mod:`repro.ampc.columnar` plus a small picklable
params dict — to a pool of workers started **once** with the ``spawn``
context and reused for every subsequent round (the warm path).

The round snapshot is two numpy columns (int64 keys, int64/float64
values).  The parent copies them once into a
``multiprocessing.shared_memory`` segment; each worker attaches the
segment and builds read-only array views directly over it — zero
per-worker copy, zero pickling of round state.  Only the (small) write
columns come back over the pipes.

Failure semantics match the backend contract: the exception of the
lowest-indexed failing machine slice propagates.  A worker that dies
mid-round surfaces as a :class:`~repro.ampc.errors.ProtocolError` and
poisons the pool, which is rebuilt on the next round.

Observability: the module-level :data:`METRICS` registry (folded into
``GET /metrics`` by the serving tier) counts segment attaches, rounds
served warm vs. inline, and bytes shared per round — the counters that
prove the pool actually persists (``ampc.pool.warm_rounds > 0`` after a
multi-round plan) and that snapshots travel by page, not by pickle.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from multiprocessing import shared_memory
from typing import Any, Sequence

import numpy as np

from ...obs.metrics import MetricsRegistry
from ..columnar import ColumnSliceResult, execute_column_slice
from ..errors import ProtocolError
from .base import MachineProgram, MachineResult, Readable, RoundBackend
from .process import _slices
from .serial import SerialBackend

#: process-wide metrics for the shm tier; eagerly registered so the
#: ``/metrics`` payload always carries the keys, even before any round.
METRICS = MetricsRegistry()
for _name in (
    "ampc.shm.attach",
    "ampc.shm.rounds",
    "ampc.shm.inline_rounds",
    "ampc.shm.bytes_shared",
    "ampc.pool.warm_rounds",
    "ampc.pool.cold_starts",
    "ampc.pool.workers_started",
):
    METRICS.counter(_name)
del _name


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without registering it for cleanup.

    The parent owns the segment lifecycle (it unlinks after the round);
    a worker registering the same name with its resource tracker would
    double-unlink and warn at exit.  Python 3.13 grew ``track=False``
    for exactly this; older versions need the manual unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Pre-3.13: suppress tracker registration for the duration of
        # the attach.  (Unregistering *after* would race other workers
        # of the same round — the tracker's name set collapses their
        # duplicate registrations, and the extra unregisters then spam
        # KeyError tracebacks in the tracker process.)
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register


def _pool_worker_main(conn) -> None:
    """Worker loop: attach snapshot, execute a machine slice, report."""
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg is None:
            break
        shm_name, n_keys, vdtype, op, params, lo, hi = msg
        seg = None
        keys = values = None
        try:
            if shm_name is None:
                keys = np.empty(0, dtype=np.int64)
                values = np.empty(0, dtype=np.dtype(vdtype))
            else:
                seg = _attach_segment(shm_name)
                keys = np.ndarray((n_keys,), dtype=np.int64, buffer=seg.buf)
                values = np.ndarray(
                    (n_keys,),
                    dtype=np.dtype(vdtype),
                    buffer=seg.buf,
                    offset=keys.nbytes,
                )
                keys.flags.writeable = False
                values.flags.writeable = False
            wk, wv, peak, reads = execute_column_slice(
                op, keys, values, params, lo, hi
            )
            # Copy before sending: the views must not outlive the segment.
            conn.send(("ok", lo, hi, np.array(wk), np.array(wv), peak, reads))
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            try:
                conn.send(("err", lo, exc))
            except Exception:
                conn.send(
                    ("err", lo, ProtocolError(f"unpicklable worker error: {exc!r}"))
                )
        finally:
            keys = values = None
            if seg is not None:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - stray view ref
                    pass
    conn.close()


class ShmBackend(RoundBackend):
    """Persistent spawn-safe worker pool over shared-memory snapshots."""

    name = "shm"
    supports_columnar = True

    def __init__(self, workers: int | None = None, *, min_machines: int = 4):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or (os.cpu_count() or 1)
        #: columnar rounds with fewer machines than this run inline —
        #: pipe latency cannot be amortised.  Identical either way.
        self.min_machines = max(1, min_machines)
        self._serial = SerialBackend()
        self._pool: list[tuple[Any, Any]] | None = None  # (proc, conn)
        self._lock = threading.Lock()
        # A forked child (TrialExecutor's process pool) inherits this
        # object but not the pool processes; drop the dead handles so
        # the child lazily spawns its own pool if it ever needs one.
        if hasattr(os, "register_at_fork"):
            os.register_at_fork(after_in_child=self._drop_pool_after_fork)

    def _drop_pool_after_fork(self) -> None:
        pool, self._pool = self._pool, None
        self._lock = threading.Lock()  # inherited lock state is undefined
        if pool:
            for _proc, conn in pool:
                try:
                    conn.close()
                except Exception:
                    pass

    def _ensure_pool(self) -> tuple[list[tuple[Any, Any]], bool]:
        """Return ``(pool, was_warm)``, spawning workers on first use."""
        with self._lock:
            if self._pool is not None:
                return self._pool, True
            ctx = multiprocessing.get_context("spawn")
            pool = []
            for _ in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_pool_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                pool.append((proc, parent_conn))
            self._pool = pool
            METRICS.counter("ampc.pool.cold_starts").inc()
            METRICS.counter("ampc.pool.workers_started").inc(len(pool))
            return pool, False

    def _poison_pool(self) -> None:
        """Tear down a pool a worker died in; next round respawns."""
        with self._lock:
            pool, self._pool = self._pool, None
        for proc, conn in pool or []:
            try:
                conn.close()
            except Exception:
                pass
            proc.terminate()
            proc.join(timeout=5)

    # ------------------------------------------------------------------
    # object path: machine programs are closures and cannot reach a
    # spawn pool; run them in-process.  This keeps the shm backend a
    # complete RoundBackend — primitives without a columnar spec (and
    # mixed plans) still execute, observationally identical to serial.
    # ------------------------------------------------------------------
    def run_round(
        self,
        programs: Sequence[tuple[MachineProgram, Any]],
        readable: Readable,
        local_limit: int,
    ) -> list[MachineResult]:
        return self._serial.run_round(programs, readable, local_limit)

    def _run_inline(
        self, op, params, bounds, keys, values
    ) -> list[ColumnSliceResult]:
        METRICS.counter("ampc.shm.inline_rounds").inc()
        results = []
        for lo, hi in bounds:
            wk, wv, peak, reads = execute_column_slice(
                op, keys, values, params, lo, hi
            )
            results.append(ColumnSliceResult(lo, hi, wk, wv, peak, reads))
        return results

    def run_column_round(
        self,
        op: str,
        params: dict,
        n_machines: int,
        keys: np.ndarray,
        values: np.ndarray,
        local_limit: int,
    ) -> list[ColumnSliceResult]:
        METRICS.counter("ampc.shm.rounds").inc()
        n = max(0, int(n_machines))
        bounds = _slices(n, self.workers) if n else []
        if n < self.min_machines or min(self.workers, n) <= 1:
            return self._run_inline(op, params, bounds, keys, values)

        pool, was_warm = self._ensure_pool()
        nbytes = keys.nbytes + values.nbytes
        seg = None
        shm_name = None
        if nbytes:
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
            kv = np.ndarray(keys.shape, dtype=np.int64, buffer=seg.buf)
            vv = np.ndarray(
                values.shape, dtype=values.dtype, buffer=seg.buf, offset=keys.nbytes
            )
            kv[:] = keys
            vv[:] = values
            del kv, vv
            shm_name = seg.name
            METRICS.counter("ampc.shm.bytes_shared").inc(nbytes)
        if was_warm:
            METRICS.counter("ampc.pool.warm_rounds").inc()

        vdtype = values.dtype.str
        active = []
        try:
            for (proc, conn), (lo, hi) in zip(pool, bounds):
                conn.send((shm_name, int(keys.size), vdtype, op, params, lo, hi))
                active.append((proc, conn, lo, hi))
            if shm_name is not None:
                METRICS.counter("ampc.shm.attach").inc(len(active))

            slices: list[ColumnSliceResult] = []
            first_error: tuple[int, BaseException] | None = None
            poisoned = False
            for proc, conn, lo, hi in active:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = (
                        "err",
                        lo,
                        ProtocolError(
                            f"shm pool worker for machines [{lo}, {hi}) died "
                            "without reporting results"
                        ),
                    )
                    poisoned = True
                if message[0] == "ok":
                    _, mlo, mhi, wk, wv, peak, reads = message
                    slices.append(ColumnSliceResult(mlo, mhi, wk, wv, peak, reads))
                else:
                    _, machine_id, exc = message
                    if first_error is None or machine_id < first_error[0]:
                        first_error = (machine_id, exc)
            if poisoned:
                self._poison_pool()
            if first_error is not None:
                raise first_error[1]
            slices.sort(key=lambda r: r.lo)
            return slices
        finally:
            if seg is not None:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        for proc, conn in pool or []:
            try:
                conn.send(None)
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
        for proc, _conn in pool or []:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
