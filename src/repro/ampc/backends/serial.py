"""The serial reference backend.

Machines execute one after another in index order, exactly the
behaviour the simulator had before backends existed.  Every other
backend is tested for bit-identical observable behaviour against this
one, so keep it boring: no pooling, no reordering, fail at the first
failing machine.
"""

from __future__ import annotations

from typing import Any, Sequence

from .base import (
    MachineProgram,
    MachineResult,
    Readable,
    RoundBackend,
    execute_machine,
)


class SerialBackend(RoundBackend):
    """Runs machines sequentially in-process — the reference semantics."""

    name = "serial"

    def run_round(
        self,
        programs: Sequence[tuple[MachineProgram, Any]],
        readable: Readable,
        local_limit: int,
    ) -> list[MachineResult]:
        results: list[MachineResult] = []
        for machine_id, (program, payload) in enumerate(programs):
            results.append(
                execute_machine(machine_id, program, payload, readable, local_limit)
            )
        return results
