"""The round-backend contract.

A *round backend* answers one question for the runtime: given the
round's ``(program, payload)`` pairs, an immutable snapshot of the
previous table, and the per-machine memory budget, produce one
:class:`MachineResult` per machine, **ordered by machine index**.  The
runtime does everything else — write merging (canonical, by machine
index, see :func:`repro.ampc.dht.merge_writes`), carry-forward, chain
advancement and ledger accounting — so observational equivalence across
backends reduces to three obligations every backend must meet:

1. each machine runs against the same immutable snapshot (machines
   cannot see each other mid-round — the model forbids it);
2. results come back in machine-index order, whatever order execution
   actually happened in;
3. when machines fail, the exception of the **lowest-indexed** failing
   machine propagates (matching the serial reference, which executes in
   index order and dies at the first failure).

``tests/test_backend_equivalence.py`` is the differential harness that
holds every backend to bit-identical outputs, round counts and trace
digests against :class:`~repro.ampc.backends.serial.SerialBackend`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, Union

from ..dht import HashTable, TableSnapshot
from ..errors import ProtocolError
from ..machine import MachineContext

MachineProgram = Callable[[MachineContext], None]
Readable = Union[HashTable, TableSnapshot]


@dataclass
class MachineResult:
    """What one machine's execution contributes back to the round.

    Everything the runtime needs to merge writes and account the round:
    the buffered writes (in the machine's own write order), the local
    memory high-water mark, and the adaptive-read count.  Plain data,
    picklable whenever the DHT values are — the process backend ships
    these across the worker pipe.
    """

    machine_id: int
    writes: list[tuple[Any, Any]] = field(default_factory=list)
    peak_words: int = 0
    reads: int = 0


def execute_machine(
    machine_id: int,
    program: MachineProgram,
    payload: Any,
    readable: Readable,
    local_limit: int,
) -> MachineResult:
    """Run one machine program to completion; shared by all backends."""
    ctx = MachineContext(machine_id, readable, local_limit, payload=payload)
    program(ctx)
    return MachineResult(
        machine_id=machine_id,
        writes=ctx.drain_writes(),
        peak_words=ctx.peak_words,
        reads=ctx.reads,
    )


class RoundBackend(ABC):
    """Executes the machine programs of one synchronous round."""

    #: registry / CLI name ("serial", "thread", "process", "shm")
    name: str = "abstract"

    #: whether :meth:`run_column_round` is implemented.  Primitives probe
    #: this to decide between the object path (closures) and the columnar
    #: path (picklable round specs over array snapshots).
    supports_columnar: bool = False

    @abstractmethod
    def run_round(
        self,
        programs: Sequence[tuple[MachineProgram, Any]],
        readable: Readable,
        local_limit: int,
    ) -> list[MachineResult]:
        """Run every program against ``readable``; results in index order."""

    def run_column_round(
        self,
        op: str,
        params: dict,
        n_machines: int,
        keys: Any,
        values: Any,
        local_limit: int,
    ) -> list[Any]:
        """Run a columnar round spec; slice results in machine order.

        Only backends advertising ``supports_columnar`` implement this;
        the runtime never calls it otherwise.
        """
        raise ProtocolError(
            f"backend {self.name!r} does not execute columnar rounds"
        )

    def close(self) -> None:
        """Release pooled resources (idempotent; default: nothing)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
