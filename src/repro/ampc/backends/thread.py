"""Thread-pool round backend.

Machines of a round share no mutable state: each gets its own
:class:`~repro.ampc.machine.MachineContext`, reads go through the
round's immutable :class:`~repro.ampc.dht.TableSnapshot` (CPython dict
reads are safe under concurrent readers when nothing writes), and
writes stay buffered per machine.  That makes a thread pool a sound
executor with zero coordination beyond the final gather.

The GIL means pure-Python machine programs rarely get wall-clock
speedup here — the thread backend's value is (a) overlapping any
releasing work machines do (numpy kernels, I/O) and (b) being a cheap
always-available stress test that the snapshot/buffer discipline really
is order-independent.  Results are gathered in submission order and the
lowest-indexed failure propagates, so behaviour is bit-identical to
:class:`~repro.ampc.backends.serial.SerialBackend`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from .base import (
    MachineProgram,
    MachineResult,
    Readable,
    RoundBackend,
    execute_machine,
)


class ThreadBackend(RoundBackend):
    """Runs machines on a shared thread pool, one task per machine."""

    name = "thread"

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or min(32, (os.cpu_count() or 1) * 2)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        # A forked child (TrialExecutor's process pool, ProcessBackend
        # workers, ...) inherits this object but NOT the pool's threads;
        # submitting to the inherited executor would deadlock forever.
        # Drop the dead pool in the child so it is lazily rebuilt there.
        if hasattr(os, "register_at_fork"):
            os.register_at_fork(after_in_child=self._drop_pool_after_fork)

    def _drop_pool_after_fork(self) -> None:
        self._pool = None
        self._lock = threading.Lock()  # inherited lock state is undefined

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="ampc-round"
                )
            return self._pool

    def run_round(
        self,
        programs: Sequence[tuple[MachineProgram, Any]],
        readable: Readable,
        local_limit: int,
    ) -> list[MachineResult]:
        if len(programs) <= 1:
            results = []
            for machine_id, (program, payload) in enumerate(programs):
                results.append(
                    execute_machine(
                        machine_id, program, payload, readable, local_limit
                    )
                )
            return results
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                execute_machine, machine_id, program, payload, readable, local_limit
            )
            for machine_id, (program, payload) in enumerate(programs)
        ]
        results: list[MachineResult] = []
        first_error: BaseException | None = None
        for future in futures:  # submission order == machine-index order
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
