"""Open-loop load generator with SLO gates for the serving layer.

The BENCH_*.json artifacts the repo accumulated per PR are one-shot
microbenchmarks; nothing replayed realistic *traffic*.  This module is
the missing harness, huggingbench-runner style:

* **open-loop arrivals** — requests are scheduled at a fixed target
  rate regardless of how fast the server answers (closed-loop clients
  self-throttle and hide saturation; open-loop ones expose it as queue
  delay and p99 blow-up);
* **bounded in-flight window** — ``max_inflight`` worker threads issue
  the scheduled requests; arrivals beyond the window queue, and their
  latency is measured **from the scheduled arrival time**, so a server
  that can't keep up shows it in the tail quantiles;
* **mixed traffic** — weighted op classes over a scripted corpus:
  graph uploads, warm/cold min-cut queries, s–t oracle queries,
  increase-only mutations, and multi-op batches;
* **per-op-class report** — p50/p95/p99/mean/max latency (open-loop
  and service-only), achieved vs target RPS, error counts, scheduler
  lag, and an optional fire-as-fast-as-possible **saturation probe**;
* **SLO gates** — :func:`check_slos` turns a report plus a floors dict
  into a list of violations; the CI perf leg
  (``benchmarks/bench_load.py``) fails on any.

The generator speaks plain HTTP (``repro.service.http.request_json``),
so it drives any server — the in-process test fixture, ``repro-cut
serve`` on another host, or the ``repro-cut loadgen --self`` one-shot.
"""

from __future__ import annotations

import json
import math
import queue
import random
import threading
import time
from dataclasses import dataclass, field

__all__ = ["DEFAULT_MIX", "LoadGen", "LoadGenConfig", "check_slos"]

#: default op-class weights: query-heavy with a mutation/upload trickle,
#: the regime the ROADMAP's serving tier is built for.  The scenario
#: ops (PR 10) default to zero weight — the default traffic shape is
#: unchanged — but are recognised, so ``--mix gomoryhu=1`` (or
#: ``sparsestcut=1``) folds all-pairs / sparsest-cut traffic in.
DEFAULT_MIX = {
    "mincut": 4.0,
    "stcut": 4.0,
    "gomoryhu": 0.0,
    "sparsestcut": 0.0,
    "mutate": 1.0,
    "batch": 1.0,
    "upload": 1.0,
}


@dataclass
class LoadGenConfig:
    """Knobs of one load-generation run (all durations in seconds)."""

    url: str
    rate: float = 50.0            # open-loop target arrivals per second
    duration_s: float = 5.0
    max_inflight: int = 16        # bounded async in-flight window
    mix: dict = field(default_factory=lambda: dict(DEFAULT_MIX))
    graphs: int = 2               # scripted corpus size
    graph_n: int = 48             # vertices per corpus graph
    #: corpus family: ``"planted"`` (PR 6's planted-cut instances) or
    #: ``"viecut"`` (literature-shaped clustered / expander / planted
    #: instances from :mod:`repro.workloads.viecut`)
    corpus: str = "planted"
    seed: int = 0
    timeout_s: float = 30.0
    probe_s: float = 0.0          # saturation probe duration (0 = skip)
    #: fraction of mutate ops that *decrease* a weight (downward
    #: reweight of a resident edge, never to zero) instead of the
    #: increase-only reinforcement — so mixed traffic exercises the
    #: localized Gomory–Hu repair path, not just the masked one
    decrease_fraction: float = 0.25

    def as_dict(self) -> dict:
        return {
            "url": self.url,
            "rate": self.rate,
            "duration_s": self.duration_s,
            "max_inflight": self.max_inflight,
            "mix": dict(self.mix),
            "graphs": self.graphs,
            "graph_n": self.graph_n,
            "corpus": self.corpus,
            "seed": self.seed,
            "probe_s": self.probe_s,
            "decrease_fraction": self.decrease_fraction,
        }


@dataclass
class _Sample:
    op: str
    scheduled: float   # perf_counter at which the arrival was due
    started: float     # perf_counter at which a worker picked it up
    finished: float
    error: bool        # non-429 failure (4xx/5xx/exception/inline error)
    shed: bool = False  # 429 from the admission gate: load shedding,
    #                     by design — reported separately from errors

    @property
    def latency_s(self) -> float:
        """Open-loop latency: completion measured from scheduled arrival."""
        return self.finished - self.scheduled

    @property
    def service_s(self) -> float:
        """Server-side view: completion measured from actual send."""
        return self.finished - self.started


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[idx]


class LoadGen:
    """Drive a live server with an open-loop mixed workload.

    ``run()`` registers the scripted corpus, replays the schedule,
    optionally runs the saturation probe, and returns the JSON-able
    report (the ``BENCH_PR6.json`` body).
    """

    def __init__(self, config: LoadGenConfig):
        if config.rate <= 0:
            raise ValueError("rate must be > 0")
        if config.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not config.mix or any(w < 0 for w in config.mix.values()):
            raise ValueError("mix must be non-empty with weights >= 0")
        unknown = set(config.mix) - set(DEFAULT_MIX)
        if unknown:
            raise ValueError(f"unknown op classes in mix: {sorted(unknown)}")
        if config.corpus not in ("planted", "viecut"):
            raise ValueError(
                f"unknown corpus {config.corpus!r} (want planted or viecut)"
            )
        if not 0.0 <= config.decrease_fraction <= 1.0:
            raise ValueError("decrease_fraction must be in [0, 1]")
        self.config = config
        self._samples: list[_Sample] = []
        self._samples_lock = threading.Lock()
        self._corpus_edges: list[list] = []
        self._mut_edges: list[list] = []

    # ------------------------------------------------------------------
    # Corpus + schedule (deterministic per seed)
    # ------------------------------------------------------------------
    def _request_json(self, path: str, payload=None):
        return self._request_status_json(path, payload)[1]

    def _request_status_json(self, path: str, payload=None):
        from ..service.http import (  # lazy: avoids an import cycle
            request_status_json,
        )

        return request_status_json(
            self.config.url, path, payload, timeout=self.config.timeout_s
        )

    def _corpus_graph(self, j: int):
        # lazy imports: avoid an import cycle through repro.service
        cfg = self.config
        if cfg.corpus == "viecut":
            from ..workloads import (
                clustered_community,
                near_regular_expander,
                planted_viecut,
            )

            family = j % 3
            if family == 0:
                return clustered_community(cfg.graph_n, seed=100 + j).graph
            if family == 1:
                return near_regular_expander(cfg.graph_n, 4, seed=100 + j)
            return planted_viecut(cfg.graph_n, seed=100 + j).graph
        from ..workloads import planted_cut

        return planted_cut(cfg.graph_n, inner_degree=4, seed=100 + j).graph

    def _build_corpus(self) -> None:
        cfg = self.config
        self._corpus_edges = []
        for j in range(cfg.graphs):
            g = self._corpus_graph(j)
            edges = [[u, v, w] for u, v, w in g.edges()]
            self._corpus_edges.append(edges)
            self._request_json("/graphs", {"name": f"lg{j}", "edges": edges})
        if cfg.corpus == "viecut":
            from ..workloads import clustered_community

            mut = clustered_community(cfg.graph_n, seed=999).graph
        else:
            from ..workloads import planted_cut

            mut = planted_cut(cfg.graph_n, inner_degree=4, seed=999).graph
        self._mut_edges = [[u, v, w] for u, v, w in mut.edges()]
        self._request_json("/graphs", {"name": "lgmut", "edges": self._mut_edges})

    def _schedule(self) -> list[tuple[str, str, dict]]:
        """The scripted request list: (op_class, path, payload) rows."""
        cfg = self.config
        rng = random.Random(cfg.seed)
        classes = [c for c, w in sorted(cfg.mix.items()) if w > 0]
        weights = [cfg.mix[c] for c in classes]
        total = max(1, int(cfg.rate * cfg.duration_s))
        plan = []
        for _ in range(total):
            op = rng.choices(classes, weights=weights)[0]
            plan.append((op, *self._payload_for(op, rng)))
        return plan

    def _payload_for(self, op: str, rng: random.Random) -> tuple[str, dict]:
        cfg = self.config
        graph = f"lg{rng.randrange(cfg.graphs)}"
        if op == "mincut":
            # a handful of seeds per graph: the steady state is warm
            # LRU hits with a cold computation per new (graph, seed)
            return "/mincut", {
                "graph": graph,
                "seed": rng.randrange(3),
                "trials": 2,
                "preprocess": "safe",
            }
        if op == "stcut":
            s = rng.randrange(cfg.graph_n)
            t = (s + 1 + rng.randrange(cfg.graph_n - 1)) % cfg.graph_n
            # a slice of st-cut traffic lands on the mutated graph so
            # the retained oracle there is actually queried between
            # deltas (masked hits and localized repairs, not just
            # bookkeeping)
            if rng.random() < 0.25:
                graph = "lgmut"
            return "/stcut", {"graph": graph, "s": s, "t": t}
        if op == "gomoryhu":
            # the whole matrix in one round trip: cold once per
            # fingerprint, a result-cache hit thereafter — and a slice
            # lands on the mutated graph so the masked/repaired oracle
            # paths serve all-pairs traffic too
            if rng.random() < 0.25:
                graph = "lgmut"
            return "/gomoryhu", {"graph": graph}
        if op == "sparsestcut":
            return "/sparsestcut", {
                "graph": graph,
                "seed": rng.randrange(2),
                "trials": 1,
            }
        if op == "mutate":
            u, v, w = self._mut_edges[rng.randrange(len(self._mut_edges))]
            if rng.random() < cfg.decrease_fraction:
                # weaken a resident edge: a genuine decrease, so the
                # retained Gomory-Hu oracle must take the localized
                # repair path. Halving the *initial* weight keeps the
                # value dyadic and strictly positive, so lgmut never
                # disconnects.
                return "/mutate", {
                    "graph": "lgmut",
                    "reweights": [[u, v, w * 0.5]],
                }
            # reinforce a resident edge: increase-only, so the retained
            # Gomory-Hu oracle stays masked instead of repairing
            return "/mutate", {"graph": "lgmut", "adds": [[u, v, 0.5]]}
        if op == "batch":
            s = rng.randrange(cfg.graph_n)
            return "/batch", {
                "requests": [
                    {"op": "stcut", "graph": graph, "s": s,
                     "t": (s + 1) % cfg.graph_n},
                    {"op": "mincut", "graph": graph, "seed": 0, "trials": 2,
                     "preprocess": "safe"},
                ]
            }
        if op == "upload":
            j = rng.randrange(cfg.graphs)
            return "/graphs", {"name": f"lg{j}", "edges": self._corpus_edges[j]}
        raise ValueError(f"unknown op class {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker(self, jobs: "queue.Queue") -> None:
        while True:
            item = jobs.get()
            if item is None:
                return
            op, path, payload, scheduled = item
            started = time.perf_counter()
            error = False
            shed = False
            try:
                status, resp = self._request_status_json(path, payload)
                if status == 429:
                    # admission-gate shed: the server staying up and
                    # saying "not now" is the designed overload
                    # behaviour, not a failure
                    shed = True
                else:
                    error = isinstance(resp, dict) and "error" in resp
            except Exception:
                error = True
            finished = time.perf_counter()
            sample = _Sample(op, scheduled, started, finished, error, shed)
            with self._samples_lock:
                self._samples.append(sample)

    def _probe_saturation(self) -> float:
        """Fire warm queries as fast as the window allows; completed/s."""
        cfg = self.config
        deadline = time.perf_counter() + cfg.probe_s
        done = [0] * cfg.max_inflight

        def hammer(slot: int) -> None:
            while time.perf_counter() < deadline:
                try:
                    self._request_json(
                        "/stcut", {"graph": "lg0", "s": 0, "t": 1}
                    )
                except Exception:
                    continue
                done[slot] += 1

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(cfg.max_inflight)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = max(time.perf_counter() - t0, 1e-9)
        return sum(done) / elapsed

    def run(self) -> dict:
        """Execute the configured run; returns the JSON-able report."""
        cfg = self.config
        self._request_json("/healthz")  # fail fast on an unreachable server
        self._build_corpus()
        plan = self._schedule()
        self._samples = []

        jobs: queue.Queue = queue.Queue()
        workers = [
            threading.Thread(target=self._worker, args=(jobs,), daemon=True)
            for _ in range(cfg.max_inflight)
        ]
        for w in workers:
            w.start()

        interval = 1.0 / cfg.rate
        t0 = time.perf_counter()
        for i, (op, path, payload) in enumerate(plan):
            due = t0 + i * interval
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            # open loop: enqueue on schedule even if the window is busy
            jobs.put((op, path, payload, due))
        for _ in workers:
            jobs.put(None)
        for w in workers:
            w.join()
        wall_s = time.perf_counter() - t0

        saturation_rps = self._probe_saturation() if cfg.probe_s > 0 else None
        return self._report(plan, wall_s, saturation_rps)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, plan, wall_s: float, saturation_rps) -> dict:
        cfg = self.config
        by_class: dict[str, list[_Sample]] = {}
        for s in self._samples:
            by_class.setdefault(s.op, []).append(s)
        op_classes = {}
        for op, samples in sorted(by_class.items()):
            lat = sorted(x.latency_s for x in samples)
            svc = sorted(x.service_s for x in samples)
            op_classes[op] = {
                "count": len(samples),
                "errors": sum(1 for x in samples if x.error),
                "sheds": sum(1 for x in samples if x.shed),
                "p50_s": _percentile(lat, 0.50),
                "p95_s": _percentile(lat, 0.95),
                "p99_s": _percentile(lat, 0.99),
                "mean_s": sum(lat) / len(lat),
                "max_s": lat[-1],
                "service_p50_s": _percentile(svc, 0.50),
                "service_p99_s": _percentile(svc, 0.99),
            }
        errors = sum(1 for s in self._samples if s.error)
        sheds = sum(1 for s in self._samples if s.shed)
        completed = len(self._samples)
        return {
            "harness": "open-loop-loadgen",
            "config": cfg.as_dict(),
            "planned_requests": len(plan),
            "completed_requests": completed,
            "errors": errors,
            "sheds": sheds,
            "wall_s": wall_s,
            "target_rps": cfg.rate,
            "achieved_rps": completed / wall_s if wall_s > 0 else 0.0,
            "max_sched_lag_s": max(
                (s.started - s.scheduled for s in self._samples), default=0.0
            ),
            "op_classes": op_classes,
            "saturation_rps": saturation_rps,
        }


# ----------------------------------------------------------------------
# SLO gates
# ----------------------------------------------------------------------
def check_slos(report: dict, floors: dict) -> list[str]:
    """Evaluate SLO floors against a :meth:`LoadGen.run` report.

    Recognised floor keys:

    * ``"<op>_p99_s"`` — the op class's open-loop p99 must not exceed
      the value (e.g. ``"mincut_p99_s": 0.5``);
    * ``"min_rps"`` — achieved throughput must reach the value;
    * ``"max_error_rate"`` — errors/completed must stay at or below
      (429 sheds are *not* errors; see ``max_shed_rate``);
    * ``"max_shed_rate"`` — 429 sheds/completed must stay at or below;
    * ``"min_saturation_rps"`` — the saturation probe (if run) must
      reach the value.

    Returns a list of human-readable violations (empty = all SLOs met).

    >>> report = {"achieved_rps": 10.0, "completed_requests": 10,
    ...           "errors": 0, "saturation_rps": None,
    ...           "op_classes": {"stcut": {"p99_s": 0.2}}}
    >>> check_slos(report, {"stcut_p99_s": 0.5, "min_rps": 5})
    []
    >>> check_slos(report, {"min_rps": 50})
    ['achieved_rps 10.00 < floor 50.00']
    """
    violations = []
    for key, floor in sorted(floors.items()):
        if key == "min_rps":
            if report["achieved_rps"] < floor:
                violations.append(
                    f"achieved_rps {report['achieved_rps']:.2f} < "
                    f"floor {floor:.2f}"
                )
        elif key == "min_saturation_rps":
            sat = report.get("saturation_rps")
            if sat is None or sat < floor:
                violations.append(
                    f"saturation_rps {sat if sat is None else f'{sat:.2f}'} "
                    f"< floor {floor:.2f}"
                )
        elif key == "max_error_rate":
            completed = max(1, report["completed_requests"])
            rate = report["errors"] / completed
            if rate > floor:
                violations.append(
                    f"error rate {rate:.4f} > ceiling {floor:.4f}"
                )
        elif key == "max_shed_rate":
            completed = max(1, report["completed_requests"])
            rate = report.get("sheds", 0) / completed
            if rate > floor:
                violations.append(
                    f"shed rate {rate:.4f} > ceiling {floor:.4f}"
                )
        elif key.endswith("_p99_s"):
            op = key[: -len("_p99_s")]
            stats = report["op_classes"].get(op)
            if stats is None:
                violations.append(f"op class {op!r} absent from the report")
            elif stats["p99_s"] > floor:
                violations.append(
                    f"{op} p99 {stats['p99_s'] * 1000:.1f}ms > "
                    f"floor {floor * 1000:.1f}ms"
                )
        else:
            raise ValueError(f"unknown SLO floor {key!r}")
    return violations


def write_report(report: dict, path: str) -> None:
    """Dump a report as pretty JSON (the ``BENCH_PR6.json`` artifact)."""
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
