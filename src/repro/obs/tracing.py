"""Low-overhead structured tracing — spans, ring buffer, JSONL export.

Every request the serving layer handles carries a **span tree**: one
root span per HTTP request, child spans for each lifecycle stage (body
parse → store lookup → kernel → result-cache tier → oracle path →
executor fan-out → lift-back), each with monotonic-clock timing and a
small attribute dict (fingerprint, algorithm, cache tier, shrink
ratio, ...).  Finished spans land in a **bounded ring buffer** — the
oldest spans fall off under load, the server never grows — and can be
drained as JSON lines (:meth:`Tracer.export_jsonl`) or read over HTTP
(``GET /trace``).

Design constraints, in order:

* **a disabled tracer must cost nothing measurable** — ``span()``
  returns a shared no-op context manager after one attribute check, no
  allocation, no clock read (``tests/test_tracing.py`` pins the
  overhead at <5% of a warm query);
* **nesting must survive thread hops** — the current span rides a
  :class:`contextvars.ContextVar`, and a worker thread (or any other
  execution context) is stitched into the tree by passing
  ``parent=tracer.context()`` captured on the submitting side.  The
  same handshake covers process pools: the parent side opens the
  fan-out span around submit+wait, so the tree stays connected even
  though worker processes cannot share the ring;
* **timing is monotonic** — durations come from ``perf_counter``;
  the wall-clock ``start_unix`` field exists only for humans reading
  exports.

>>> tracer = Tracer(capacity=16)
>>> with tracer.span("outer") as outer:
...     outer.set(graph="demo")
...     with tracer.span("inner") as inner:
...         pass
>>> spans = tracer.snapshot()
>>> [s["name"] for s in spans]
['inner', 'outer']
>>> spans[0]["parent_id"] == spans[1]["span_id"]
True
>>> spans[0]["trace_id"] == spans[1]["trace_id"]
True
>>> Tracer(enabled=False).span("x").__enter__() is NULL_SPAN
True
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextvars import ContextVar
from typing import IO

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "Tracer",
    "span_roots",
    "self_times",
]

_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


class SpanContext:
    """The (trace_id, span_id) pair that survives a thread/process hop."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id


class Span:
    """One timed, attributed node of a request's span tree."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_unix",
        "duration_s",
        "attrs",
        "status",
        "_t0",
        "_token",
    )

    def __init__(
        self, name: str, trace_id: str, span_id: str, parent_id: str | None
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_unix = time.time()
        self.duration_s = 0.0
        self.attrs: dict = {}
        self.status = "ok"
        self._t0 = 0.0
        self._token = None

    def set(self, **attrs) -> None:
        """Attach attributes (fingerprint, cache tier, shrink, ...)."""
        self.attrs.update(attrs)

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def __bool__(self) -> bool:
        return True

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Falsy, attribute-absorbing stand-in when tracing is disabled."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    duration_s = 0.0
    status = "ok"

    def set(self, **attrs) -> None:
        pass

    def context(self) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _NullSpanCM:
    """Stateless shared no-op context manager — the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CM = _NullSpanCM()


class _SpanCM:
    """Context manager entering/recording one real span."""

    __slots__ = ("_tracer", "_name", "_parent", "_span")

    def __init__(self, tracer: "Tracer", name: str, parent):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._span = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = self._parent
        if parent is None:
            parent = _CURRENT.get()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = tracer._new_trace_id()
            parent_id = None
        span = Span(self._name, trace_id, tracer._new_span_id(), parent_id)
        span._token = _CURRENT.set(span)
        span._t0 = time.perf_counter()
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - span._t0
        if exc_type is not None:
            span.status = "error"
            span.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        _CURRENT.reset(span._token)
        span._token = None
        self._tracer._record(span)
        return False


class Tracer:
    """Span factory + bounded in-memory ring of finished spans.

    ``capacity`` bounds the ring: when full, the oldest span is dropped
    (counted in ``dropped``) — a server under sustained load keeps the
    most recent window, never grows.  ``enabled=False`` turns
    :meth:`span` into a shared no-op context manager.
    """

    def __init__(self, *, capacity: int = 4096, enabled: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self._ring: list[Span] = []
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._prefix = os.urandom(4).hex()
        self.finished = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def span(self, name: str, parent: SpanContext | Span | None = None):
        """Open a span as a context manager.

        ``parent`` overrides the ambient (context-local) parent — pass
        a :class:`SpanContext` captured on another thread to stitch
        work submitted across an executor boundary into one tree.
        """
        if not self.enabled:
            return _NULL_CM
        return _SpanCM(self, name, parent)

    def current(self) -> Span | None:
        """The live span of this execution context (None outside any)."""
        return _CURRENT.get() if self.enabled else None

    def context(self) -> SpanContext | None:
        """Capture the current span's context for a thread/process hop."""
        span = self.current()
        return span.context() if span is not None else None

    def annotate(self, **attrs) -> None:
        """Set attributes on the current span, if any (cheap no-op else)."""
        if not self.enabled:
            return
        span = _CURRENT.get()
        if span is not None:
            span.attrs.update(attrs)

    # ------------------------------------------------------------------
    def _new_trace_id(self) -> str:
        return f"{self._prefix}{next(self._seq):08x}"

    def _new_span_id(self) -> str:
        return f"s{next(self._seq):x}"

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._ring) >= self.capacity:
                # drop the oldest entry; bounded memory beats complete
                # history for a serving process
                del self._ring[0]
                self.dropped += 1
            self._ring.append(span)
            self.finished += 1

    # ------------------------------------------------------------------
    def snapshot(self, limit: int | None = None) -> list[dict]:
        """The most recent ``limit`` finished spans, oldest first."""
        with self._lock:
            spans = self._ring[-limit:] if limit else list(self._ring)
        return [s.as_dict() for s in spans]

    def drain(self) -> list[dict]:
        """Snapshot **and clear** the ring (export-and-reset)."""
        with self._lock:
            spans, self._ring = self._ring, []
        return [s.as_dict() for s in spans]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def export_jsonl(self, fp: IO[str] | str, limit: int | None = None) -> int:
        """Write buffered spans as JSON lines; returns the count."""
        spans = self.snapshot(limit)
        if isinstance(fp, str):
            with open(fp, "w") as handle:
                return self.write_jsonl(handle, spans)
        return self.write_jsonl(fp, spans)

    @staticmethod
    def write_jsonl(fp: IO[str], spans: list[dict]) -> int:
        for span in spans:
            fp.write(json.dumps(span, sort_keys=True))
            fp.write("\n")
        return len(spans)

    def stats(self) -> dict:
        """JSON-able tracer health (folded into ``/stats``)."""
        with self._lock:
            buffered = len(self._ring)
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "buffered": buffered,
            "finished": self.finished,
            "dropped": self.dropped,
        }


#: shared disabled tracer — the default for components constructed
#: outside a service (standalone oracle/executor in tests and
#: libraries pay the no-op path only)
NULL_TRACER = Tracer(capacity=1, enabled=False)


# ----------------------------------------------------------------------
# Span-tree helpers (used by tests, the load harness and docs examples)
# ----------------------------------------------------------------------
def span_roots(spans: list[dict]) -> list[dict]:
    """Spans with no parent **present in the list** (tree roots)."""
    ids = {s["span_id"] for s in spans}
    return [s for s in spans if s["parent_id"] not in ids]


def self_times(spans: list[dict]) -> dict[str, float]:
    """Per-span self time: duration minus the sum of child durations.

    For a properly nested tree the self times over a trace sum to the
    root's duration — which is how the acceptance check "spans account
    for ≥95% of a traced query's wall time" is evaluated.

    >>> spans = [
    ...     {"span_id": "a", "parent_id": None, "duration_s": 1.0},
    ...     {"span_id": "b", "parent_id": "a", "duration_s": 0.4},
    ... ]
    >>> self_times(spans)
    {'a': 0.6, 'b': 0.4}
    """
    child_sum: dict[str, float] = {}
    for s in spans:
        parent = s["parent_id"]
        if parent is not None:
            child_sum[parent] = child_sum.get(parent, 0.0) + s["duration_s"]
    return {
        s["span_id"]: s["duration_s"] - child_sum.get(s["span_id"], 0.0)
        for s in spans
    }
