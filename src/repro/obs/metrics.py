"""Metrics registry — counters, gauges, streaming log-bucket histograms.

The serving layer used to keep its counters as ad-hoc ints and dataclass
fields scattered over ``store.py`` / ``cache.py`` / ``oracle.py`` /
``executor.py``, each with its own ``stats()`` shape.  This module is
the one primitive replacing them all: a thread-safe
:class:`MetricsRegistry` handing out named :class:`Counter`,
:class:`Gauge` and :class:`Histogram` instruments, snapshotted in one
pass by ``GET /metrics`` and folded into ``/stats``.

Latency distributions use **fixed log-spaced buckets** (base
``10**0.05`` — ~12.2% relative width, 280 buckets spanning 1 µs to
~10⁸ µs), so recording is O(1), memory is constant, and p50/p95/p99
come back with bounded relative error — the streaming-histogram trade
every serving-side metrics system makes (HdrHistogram, Prometheus
native histograms).  No sample is ever stored.

>>> reg = MetricsRegistry()
>>> reg.counter("store.hits").inc()
>>> reg.counter("store.hits").inc(2)
>>> reg.counter("store.hits").value
3
>>> h = reg.histogram("request.mincut.latency_s")
>>> for ms in [1, 1, 2, 3, 100]:
...     h.record(ms / 1000.0)
>>> h.count
5
>>> 0.0008 < h.quantile(0.5) < 0.0025
True
>>> sorted(reg.snapshot()["counters"])
['store.hits']
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
]


class Counter:
    """Monotonic named counter (``.inc()`` / ``.value``)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Last-write-wins instantaneous value (``.set()`` / ``.value``)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


#: histogram geometry: bucket i (i >= 1) covers
#: [LO * BASE**(i-1), LO * BASE**i); bucket 0 catches values <= LO.
_LO = 1e-6
_BASE = 10 ** 0.05          # ~12.2% relative bucket width
_LOG_BASE = math.log(_BASE)
_NBUCKETS = 280             # LO * BASE**280 = 1e8 — 14 decades


class Histogram:
    """Streaming log-bucket histogram with quantile estimates.

    Values are expected to be positive (latencies in seconds); values
    at or below 1 µs land in the first bucket, values beyond ~10⁸ s in
    the last.  Quantiles are the geometric midpoint of the answering
    bucket, so the relative error is bounded by the bucket width
    (~±6%) — exactly what p50/p95/p99 tiles need, at O(1) per record.

    >>> h = Histogram("latency_s")
    >>> for v in [0.01] * 98 + [1.0] * 2:
    ...     h.record(v)
    >>> 0.009 < h.quantile(0.5) < 0.011
    True
    >>> 0.9 < h.quantile(0.99) <= 1.1
    True
    >>> h.summary()["count"]
    100
    """

    __slots__ = ("name", "_counts", "_lock", "count", "_sum", "_max", "_min")

    def __init__(self, name: str):
        self.name = name
        self._counts = [0] * _NBUCKETS
        self._lock = threading.Lock()
        self.count = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = math.inf

    @staticmethod
    def _bucket(value: float) -> int:
        if value <= _LO:
            return 0
        idx = 1 + int(math.log(value / _LO) / _LOG_BASE)
        return idx if idx < _NBUCKETS else _NBUCKETS - 1

    @staticmethod
    def _midpoint(bucket: int) -> float:
        if bucket == 0:
            return _LO
        return _LO * _BASE ** (bucket - 0.5)

    def record(self, value: float) -> None:
        idx = self._bucket(value)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if value < self._min:
                self._min = value

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = max(1, math.ceil(q * self.count))
            seen = 0
            for i, c in enumerate(self._counts):
                seen += c
                if seen >= target:
                    return self._midpoint(i)
        return self._max  # pragma: no cover - unreachable

    def summary(self) -> dict:
        """JSON-able digest: count/sum/mean/min/max + p50/p95/p99."""
        with self._lock:
            count, total = self.count, self._sum
            mx = self._max
            mn = self._min if count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": mn,
            "max": mx,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instrument registry; ``snapshot()`` is the ``/metrics`` body.

    Instruments are get-or-create (the first caller wins the slot; a
    later caller asking for the same name under a different kind
    raises).  :meth:`scope` returns a prefixing view so a component can
    register ``hits`` and land on ``store.hits`` without knowing who
    owns it.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, table: dict, others: tuple, name: str, factory):
        with self._lock:
            inst = table.get(name)
            if inst is None:
                for other in others:
                    if name in other:
                        raise ValueError(
                            f"metric {name!r} already registered as a "
                            "different kind"
                        )
                inst = table[name] = factory(name)
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(
            self._counters, (self._gauges, self._histograms), name, Counter
        )

    def gauge(self, name: str) -> Gauge:
        return self._get(
            self._gauges, (self._counters, self._histograms), name, Gauge
        )

    def histogram(self, name: str) -> Histogram:
        return self._get(
            self._histograms, (self._counters, self._gauges), name, Histogram
        )

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self, prefix)

    def histograms(self, prefix: str = "") -> dict[str, Histogram]:
        """Registered histograms whose name starts with ``prefix``."""
        with self._lock:
            return {
                n: h
                for n, h in self._histograms.items()
                if n.startswith(prefix)
            }

    def snapshot(self) -> dict:
        """One JSON-able pass over every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }


class MetricsScope:
    """Prefixing view onto a :class:`MetricsRegistry` (``store.hits``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._name(name))

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(self._name(name))

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, self._name(prefix))
