"""Observability layer: structured tracing, metrics, and load generation.

Three pieces, each usable standalone and wired together by the serving
layer (:mod:`repro.service`):

* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer`: per-request
  span trees with monotonic timing, a bounded in-memory ring buffer,
  JSONL export, and ``GET /trace``;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: named counters,
  gauges and streaming log-bucket histograms (p50/p95/p99), surfaced at
  ``GET /metrics`` and folded into ``/stats``;
* :mod:`repro.obs.loadgen` — :class:`LoadGen`: an open-loop load
  generator (target request rate, bounded in-flight window, mixed
  upload/query/mutate/batch traffic) reporting per-op-class latency
  quantiles and saturation throughput, with SLO-floor gates
  (``repro-cut loadgen`` / ``benchmarks/bench_load.py``).

See ``docs/OBSERVABILITY.md`` for the span vocabulary, the metrics
catalog and load-harness usage.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsScope
from .tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanContext,
    Tracer,
    self_times,
    span_roots,
)
from .loadgen import LoadGen, LoadGenConfig, check_slos

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LoadGen",
    "LoadGenConfig",
    "MetricsRegistry",
    "MetricsScope",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "Tracer",
    "check_slos",
    "self_times",
    "span_roots",
]
