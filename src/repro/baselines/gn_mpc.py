"""Ghaffari–Nowicki MPC cost model (the [11] baseline, and Corollary 1).

G&N's algorithm is mathematically the same recursion as Algorithm 1 —
the difference this paper contributes is *round cost per level*:

* **MPC (G&N)**: singleton-cut tracking per level is a divide-and-
  conquer over the MST costing ``O(log n)`` rounds, so the full
  recursion costs ``O(log n * log log n)`` rounds;
* **AMPC (this paper)**: the same tracking collapses to ``O(1/eps)``
  rounds (Theorem 3), so the recursion costs ``O(log log n)``.

:func:`gn_mpc_min_cut` runs the identical cut computation (so results
match Algorithm 1's distribution) but charges the MPC model's rounds,
making E1's round-count comparison apples-to-apples.  Corollary 1's
k-cut bound (``O(k log n log log n)`` MPC rounds) is modelled the same
way by :func:`gn_mpc_kcut_rounds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ampc import RoundLedger
from ..core.mincut import MinCutResult, ampc_min_cut
from ..core.schedule import RecursionSchedule, schedule_for
from ..graph import Graph

#: multiplicative constant for the per-level O(log n) MPC cost — covers
#: the MST computation and the O(log n)-depth divide-and-conquer of
#: G&N's singleton tracking.
_MPC_LEVEL_CONSTANT = 2
#: additive per-level rounds (copy fan-out, min-reduce)
_MPC_LEVEL_ADDITIVE = 2


def mpc_level_rounds(instance_size: int) -> int:
    """MPC rounds one recursion level costs under the G&N scheme."""
    logn = math.ceil(math.log2(max(2, instance_size)))
    return _MPC_LEVEL_CONSTANT * logn + _MPC_LEVEL_ADDITIVE


def gn_mpc_rounds(schedule: RecursionSchedule) -> int:
    """Total MPC rounds for a full recursion under the G&N cost model."""
    total = sum(mpc_level_rounds(level.instance_size) for level in schedule.levels)
    return total + 1  # base-case solve


def gn_mpc_min_cut(
    graph: Graph,
    *,
    eps: float = 0.5,
    seed: int = 0,
    max_copies: int = 3,
) -> MinCutResult:
    """The G&N baseline: Algorithm 1's cut, MPC round accounting.

    The returned result's ledger contains a single charged entry with
    the MPC cost model's rounds (per-level ``O(log n)`` summed over the
    ``O(log log n)`` levels).
    """
    result = ampc_min_cut(graph, eps=eps, seed=seed, max_copies=max_copies)
    mpc_ledger = RoundLedger()
    mpc_ledger.charge(
        gn_mpc_rounds(result.schedule),
        "Ghaffari–Nowicki [11] MPC cost model: O(log n) singleton "
        "tracking per level x O(log log n) levels",
        local_peak=result.ledger.local_peak,
        total_peak=result.ledger.total_peak,
    )
    return MinCutResult(
        cut=result.cut,
        ledger=mpc_ledger,
        schedule=result.schedule,
        base_solves=result.base_solves,
        singleton_runs=result.singleton_runs,
    )


def gn_mpc_kcut_rounds(n: int, k: int, *, eps: float = 0.5) -> int:
    """Corollary 1's round count: k iterations of the MPC min cut."""
    schedule = schedule_for(max(2, n), eps=eps)
    per_iteration = gn_mpc_rounds(schedule) + 1  # +1: pick lightest cut
    return max(1, k - 1) * per_iteration


@dataclass(frozen=True)
class RoundComparison:
    """One row of the E1 table."""

    n: int
    ampc_rounds: int
    mpc_rounds: int

    @property
    def speedup(self) -> float:
        return self.mpc_rounds / max(1, self.ampc_rounds)
