"""Matula's deterministic ``(2+eps)``-approximate Min Cut (1993).

The paper's Theorem 1 gives a *randomized* ``(2+eps)`` approximation in
``O(log log n)`` AMPC rounds.  Matula's linear-time algorithm is the
classic **sequential deterministic** comparator at the same quality
target, so benches can report three points on the quality/model grid:
exact (Stoer–Wagner), deterministic sequential ``2+eps`` (here), and
the paper's parallel ``2+eps`` (Algorithm 1).

The algorithm alternates the two Nagamochi–Ibaraki facts from
:mod:`repro.graph.sparsify`:

1. The minimum weighted degree ``δ`` is itself a cut (a singleton in
   the current contracted graph lifts to a cut of the input), so it is
   always a *valid* candidate.
2. Set ``k = δ / (2 + eps)`` and scan-first-search the graph.  Any edge
   whose level interval reaches past ``k`` (``r(e) + w(e) > k``)
   certifies endpoint connectivity ``> k``, so **if** the true min cut
   ``λ < k``, no such edge crosses a minimum cut and contracting all of
   them preserves it.  If instead ``λ >= k``, then ``δ <= (2+eps) λ``
   and the candidate recorded in step 1 is already good enough.

Progress is unconditional: the capacity below level ``k`` is at most
``k (n-1) = δ (n-1) / (2+eps) < δ n / 2 <=`` total weight, so at least
one edge pokes above ``k`` every iteration and gets contracted.  The
returned cut therefore satisfies ``λ <= weight <= (2+eps) λ``,
deterministically — no boosting, no failure probability.

References: D. Matula, *A linear time 2+ε approximation algorithm for
edge connectivity*, SODA 1993; Karger's lecture notes for the weighted
extension via NI scan intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..graph import Cut, Graph
from ..graph.sparsify import ni_edge_starts

Vertex = Hashable


@dataclass
class MatulaResult:
    """Outcome of Matula's algorithm.

    ``cut`` is the best singleton-block cut found; ``stages`` counts
    contraction iterations (``O(log n)`` in practice — each stage
    removes a constant fraction of vertices on bounded-degree inputs).
    """

    cut: Cut
    stages: int

    @property
    def weight(self) -> float:
        return self.cut.weight


def matula_min_cut(graph: Graph, *, eps: float = 0.5) -> MatulaResult:
    """Deterministic ``(2+eps)``-approximate minimum cut.

    Requires a connected graph on at least two vertices (the min cut of
    a disconnected graph is 0; callers split into components first,
    exactly as APX-SPLIT does).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    n = graph.num_vertices
    if n < 2:
        raise ValueError("min cut needs n >= 2")
    if len(graph.components()) != 1:
        raise ValueError("graph must be connected (min cut would be 0)")

    work = graph.copy()
    # blocks[v] = original vertices contracted into current vertex v.
    blocks: dict[Vertex, list[Vertex]] = {v: [v] for v in graph.vertices()}
    best: Cut | None = None
    stages = 0

    while work.num_vertices > 2:
        stages += 1
        best = _best_singleton(graph, work, blocks, best)
        delta = float(work.degree_vector().min())
        k = delta / (2.0 + eps)

        # Contract every edge whose NI level interval pokes above k,
        # selected in one vectorized pass over the edge columns.
        scan = ni_edge_starts(work)
        us, vs, ws = work.edge_arrays()
        hit = np.flatnonzero(scan.levels_for(work) + ws > k)
        if len(hit) == 0:  # impossible by the counting argument; belt & braces
            raise AssertionError(
                "Matula invariant violated: no contractible edge found"
            )
        work_vertices = work.vertices()
        dsu_parent = list(range(work.num_vertices))

        def find(x: int) -> int:
            while dsu_parent[x] != x:
                dsu_parent[x] = dsu_parent[dsu_parent[x]]
                x = dsu_parent[x]
            return x

        # The first certified edge always merges (fresh DSU, distinct
        # endpoints), so a non-empty hit set guarantees progress.
        for iu, iv in zip(us[hit].tolist(), vs[hit].tolist()):
            ru, rv = find(iu), find(iv)
            if ru != rv:
                dsu_parent[ru] = rv
        rep = {
            v: work_vertices[find(i)] for i, v in enumerate(work_vertices)
        }
        work, new_blocks = work.quotient(rep)
        blocks = {
            r: [orig for member in members for orig in blocks[member]]
            for r, members in new_blocks.items()
        }
        if work.num_edges == 0:
            # quotient collapsed everything into one block: the last
            # recorded candidates already include the surviving cuts.
            break

    best = _best_singleton(graph, work, blocks, best)
    assert best is not None
    return MatulaResult(cut=best, stages=stages)


def matula_min_cut_weight(graph: Graph, *, eps: float = 0.5) -> float:
    """Weight-only convenience wrapper around :func:`matula_min_cut`."""
    return matula_min_cut(graph, eps=eps).weight


def _best_singleton(
    original: Graph,
    work: Graph,
    blocks: dict[Vertex, list[Vertex]],
    best: Cut | None,
) -> Cut | None:
    """Fold the current graph's singleton cuts into the running best.

    A singleton ``{v}`` of the contracted graph is the block
    ``blocks[v]`` of the original graph, with identical cut weight
    (contraction merges parallel edges by weight sum and removes only
    intra-block edges).
    """
    if work.num_vertices < 2:
        return best
    for v in work.vertices():
        w = work.degree(v)
        if best is None or w < best.weight:
            best = Cut.of(original, blocks[v])
    return best
