"""Exact Min k-Cut by partition enumeration (small-n oracle).

Enumerates all set partitions of ``V`` into exactly ``k`` non-empty
parts (restricted growth strings), evaluating the crossing weight of
each.  ``S(n, k)`` grows fast; guarded to ``n <= 14``.  Used by E5 and
the k-cut property tests as ground truth, and to certify the planted
weights of the workload generators on small instances.
"""

from __future__ import annotations

from typing import Hashable, Iterator

import numpy as np

from ..graph import Graph, KCut

Vertex = Hashable

_MAX_N = 14


def exact_min_kcut(graph: Graph, k: int) -> KCut:
    """Exact Min k-Cut; raises for n > 14 (enumeration blow-up guard)."""
    n = graph.num_vertices
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n > _MAX_N:
        raise ValueError(f"exact_min_kcut is limited to n <= {_MAX_N}")
    vertices = graph.vertices()
    us, vs, ws = graph.edge_arrays()

    best_weight = np.inf
    best_assign: list[int] | None = None
    for assign in _restricted_growth_strings(n, k):
        a = np.asarray(assign, dtype=np.int64)
        weight = float(ws[a[us] != a[vs]].sum())
        if weight < best_weight:
            best_weight = weight
            best_assign = list(assign)
    assert best_assign is not None
    parts: list[set] = [set() for _ in range(k)]
    for i, p in enumerate(best_assign):
        parts[p].add(vertices[i])
    return KCut.of(graph, parts)


def exact_min_kcut_weight(graph: Graph, k: int) -> float:
    return exact_min_kcut(graph, k).weight


def _restricted_growth_strings(n: int, k: int) -> Iterator[list[int]]:
    """All assignments ``V -> {0..k-1}`` using exactly ``k`` labels,
    canonicalised so label ``j`` first appears before label ``j+1``
    (each set partition enumerated once)."""
    assign = [0] * n

    def rec(i: int, used: int) -> Iterator[list[int]]:
        remaining = n - i
        if used + remaining < k:
            return  # cannot reach k labels any more
        if i == n:
            if used == k:
                yield assign
            return
        top = min(used + 1, k)
        for label in range(top):
            assign[i] = label
            yield from rec(i + 1, max(used, label + 1))

    yield from rec(0, 0)
