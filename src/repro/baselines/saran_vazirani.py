"""Saran–Vazirani Min k-Cut baselines (the [18] comparator).

Two constructions from their paper, both ``(2 - 2/k)``-approximate:

* :func:`sv_split_kcut` — the SPLIT greedy: repeatedly remove the
  lightest **exact** min cut among current components.  This is
  APX-SPLIT (Algorithm 4) with the approximation factor set to 1, so
  E5 can isolate how much the ``(2+eps)`` inner cuts cost.
* :func:`sv_gomory_hu_kcut` — EFFICIENT: union of the ``k-1`` lightest
  Gomory–Hu cuts (Observation 10's sequence ``b_1 .. b_{k-1}``).
"""

from __future__ import annotations

import math
from typing import Hashable

from ..flow.gomory_hu import gomory_hu_tree
from ..graph import Graph, KCut
from .stoer_wagner import stoer_wagner_min_cut

Vertex = Hashable


def sv_split_kcut(graph: Graph, k: int) -> KCut:
    """Greedy splitting with exact min cuts (SPLIT)."""
    n = graph.num_vertices
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}")
    working = graph.copy()
    while True:
        components = working.components()
        if len(components) >= k:
            break
        best_edges = None
        best_weight = math.inf
        for comp in components:
            if len(comp) < 2:
                continue
            sub = working.induced_subgraph(comp)
            cut = stoer_wagner_min_cut(sub)
            if cut.weight < best_weight:
                best_weight = cut.weight
                best_edges = [
                    (u, v)
                    for u, v, _ in sub.edges()
                    if (u in cut.side) != (v in cut.side)
                ]
        if best_edges is None:
            raise ValueError(f"cannot split into {k} parts")
        working = working.without_edges(best_edges)
    parts = [frozenset(c) for c in working.components()]
    parts.sort(key=len)
    while len(parts) > k:
        a = parts.pop(0)
        b = parts.pop(0)
        parts.append(a | b)
        parts.sort(key=len)
    return KCut.of(graph, parts)


def sv_gomory_hu_kcut(graph: Graph, k: int) -> KCut:
    """Union of the ``k-1`` lightest Gomory–Hu cuts (EFFICIENT)."""
    n = graph.num_vertices
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}")
    if k == 1:
        return KCut.of(graph, [graph.vertices()])
    tree = gomory_hu_tree(graph)
    removed: set[frozenset] = set()
    working = graph.copy()
    for e in tree.edges_by_weight():
        if len(working.components()) >= k:
            break
        side = e.child_side
        cut_edges = [
            (u, v)
            for u, v, _ in working.edges()
            if (u in side) != (v in side)
        ]
        if cut_edges:
            working = working.without_edges(cut_edges)
    parts = [frozenset(c) for c in working.components()]
    if len(parts) < k:
        raise ValueError(
            "Gomory–Hu cut union produced fewer than k components; "
            "graph too degenerate for the EFFICIENT construction"
        )
    parts.sort(key=len)
    while len(parts) > k:
        a = parts.pop(0)
        b = parts.pop(0)
        parts.append(a | b)
        parts.sort(key=len)
    return KCut.of(graph, parts)
