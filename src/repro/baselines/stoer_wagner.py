"""Stoer–Wagner exact global minimum cut.

The deterministic ``O(n m + n^2 log n)`` algorithm: repeated maximum
adjacency (maximum weighted connectivity) orderings; the last vertex of
each ordering defines a *cut-of-the-phase* (that vertex alone against
the rest of the current contracted graph), and the best phase cut over
``n - 1`` phases is the global minimum cut.

This is the exactness oracle for E2/E5 (approximation-ratio
experiments) and the single-machine base case of Algorithm 1.
Differentially tested against ``networkx.stoer_wagner``.
"""

from __future__ import annotations

import heapq
from typing import Hashable

from ..graph import Cut, Graph

Vertex = Hashable


def stoer_wagner_min_cut(graph: Graph) -> Cut:
    """Exact minimum cut of a connected graph with ``n >= 2``."""
    n = graph.num_vertices
    if n < 2:
        raise ValueError("min cut needs n >= 2")

    # Working adjacency over "supervertices"; merged[x] = original
    # vertices absorbed into x.
    adj: dict[Vertex, dict[Vertex, float]] = {
        v: dict(nbrs) for v, nbrs in graph.adjacency().items()
    }
    merged: dict[Vertex, list[Vertex]] = {v: [v] for v in graph.vertices()}

    best_weight = float("inf")
    best_side: list[Vertex] | None = None

    while len(adj) > 1:
        # --- one maximum-adjacency phase --------------------------------
        start = next(iter(adj))
        in_a = {start}
        # lazy-deletion priority queue on connectivity to A
        weight_to_a: dict[Vertex, float] = {}
        heap: list[tuple[float, Vertex]] = []
        for u, w in adj[start].items():
            weight_to_a[u] = w
            heapq.heappush(heap, (-w, u))
        order = [start]
        while len(order) < len(adj):
            while True:
                neg_w, u = heapq.heappop(heap)
                if u not in in_a and weight_to_a.get(u) == -neg_w:
                    break
            in_a.add(u)
            order.append(u)
            for nbr, w in adj[u].items():
                if nbr not in in_a:
                    weight_to_a[nbr] = weight_to_a.get(nbr, 0.0) + w
                    heapq.heappush(heap, (-weight_to_a[nbr], nbr))
        s, t = order[-2], order[-1]
        phase_weight = weight_to_a.get(t, 0.0)
        if phase_weight < best_weight:
            best_weight = phase_weight
            best_side = list(merged[t])
        # --- merge t into s ---------------------------------------------
        merged[s].extend(merged[t])
        del merged[t]
        for nbr, w in adj[t].items():
            if nbr == s:
                continue
            adj[s][nbr] = adj[s].get(nbr, 0.0) + w
            adj[nbr][s] = adj[s][nbr]
            del adj[nbr][t]
        adj[s].pop(t, None)
        del adj[t]

    assert best_side is not None
    return Cut.of(graph, best_side)


def exact_min_cut_weight(graph: Graph) -> float:
    """Weight-only convenience wrapper."""
    return stoer_wagner_min_cut(graph).weight
