"""Stoer–Wagner exact global minimum cut.

The deterministic ``O(n m + n^2 log n)`` algorithm: repeated maximum
adjacency (maximum weighted connectivity) orderings; the last vertex of
each ordering defines a *cut-of-the-phase* (that vertex alone against
the rest of the current contracted graph), and the best phase cut over
``n - 1`` phases is the global minimum cut.

This is the exactness oracle for E2/E5 (approximation-ratio
experiments) and the single-machine base case of Algorithm 1.
Differentially tested against ``networkx.stoer_wagner``.
"""

from __future__ import annotations

import heapq
from typing import Hashable

from ..graph import Cut, Graph

Vertex = Hashable


def stoer_wagner_min_cut(graph: Graph) -> Cut:
    """Exact minimum cut of a connected graph with ``n >= 2``.

    Runs entirely over dense vertex indices: the working adjacency is
    a list of ``{neighbor_index: weight}`` maps seeded straight from
    the graph's edge columns (in edge-insertion order, matching
    :meth:`Graph.adjacency`), and the maximum-adjacency heap holds
    ``(-w, rank, index)`` entries where ``rank`` is the vertex's
    position in sorted label order — so equal-connectivity ties
    resolve exactly as the label-keyed heap of the scalar
    implementation did, without hashing or comparing labels inside
    the phase loop.
    """
    n = graph.num_vertices
    if n < 2:
        raise ValueError("min cut needs n >= 2")

    vertices = graph.vertices()
    # Label-order rank: the scalar implementation broke heap ties by
    # comparing vertex labels.  Unorderable (mixed-type) label sets —
    # where the old code could only crash if a tie actually arose —
    # fall back to insertion order.
    try:
        by_label = sorted(range(n), key=vertices.__getitem__)
    except TypeError:
        by_label = range(n)
    rank = [0] * n
    for r, i in enumerate(by_label):
        rank[i] = r
    us, vs, ws = graph.edge_arrays()
    # Working adjacency over "supervertices"; merged[x] = original
    # vertex indices absorbed into x.
    adj: list[dict[int, float]] = [{} for _ in range(n)]
    for iu, iv, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
        adj[iu][iv] = w
        adj[iv][iu] = w
    merged: list[list[int] | None] = [[i] for i in range(n)]

    alive = n
    first_alive = 0  # supervertices die in t-role only, never the start
    best_weight = float("inf")
    best_side: list[int] | None = None

    while alive > 1:
        # --- one maximum-adjacency phase --------------------------------
        while merged[first_alive] is None:
            first_alive += 1
        start = first_alive
        in_a = bytearray(n)
        in_a[start] = 1
        # lazy-deletion priority queue on connectivity to A
        weight_to_a = [0.0] * n
        heap: list[tuple[float, int, int]] = []
        for u, w in adj[start].items():
            weight_to_a[u] = w
            heap.append((-w, rank[u], u))
        heapq.heapify(heap)
        order = [start]
        while len(order) < alive:
            while True:
                neg_w, _, u = heapq.heappop(heap)
                if not in_a[u] and weight_to_a[u] == -neg_w:
                    break
            in_a[u] = 1
            order.append(u)
            for nbr, w in adj[u].items():
                if not in_a[nbr]:
                    weight_to_a[nbr] += w
                    heapq.heappush(heap, (-weight_to_a[nbr], rank[nbr], nbr))
        s, t = order[-2], order[-1]
        phase_weight = weight_to_a[t]
        if phase_weight < best_weight:
            best_weight = phase_weight
            best_side = list(merged[t])  # type: ignore[arg-type]
        # --- merge t into s ---------------------------------------------
        merged[s].extend(merged[t])  # type: ignore[union-attr, arg-type]
        merged[t] = None
        for nbr, w in adj[t].items():
            if nbr == s:
                continue
            adj[s][nbr] = adj[s].get(nbr, 0.0) + w
            adj[nbr][s] = adj[s][nbr]
            del adj[nbr][t]
        adj[s].pop(t, None)
        adj[t] = {}
        alive -= 1

    assert best_side is not None
    return Cut.of(graph, [vertices[i] for i in best_side])


def exact_min_cut_weight(graph: Graph) -> float:
    """Weight-only convenience wrapper."""
    return stoer_wagner_min_cut(graph).weight
