"""Karger's single-run contraction (the Lemma 1 probe).

One run contracts weight-biased random edges until two supervertices
remain; the surviving bipartition is a cut that equals the minimum cut
with probability ``Omega(1/n^2)`` (Lemma 1 with ``t = n/2``).  The E7
experiment replays many runs to chart the empirical preservation
probability against that bound, and against Lemma 2's stronger
singleton-aware bound.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..graph import Cut, Graph
from ..core.contraction import contract_to_size
from ..core.keys import draw_contraction_keys

Vertex = Hashable


def karger_single_run(graph: Graph, *, seed: int = 0) -> Cut:
    """Contract to two supervertices; return the surviving cut."""
    if graph.num_vertices < 2:
        raise ValueError("need n >= 2")
    keys = draw_contraction_keys(graph, seed=seed)
    contracted, blocks = contract_to_size(graph, keys, 2)
    reps = contracted.vertices()
    if len(reps) != 2:
        raise ValueError("graph must be connected")
    side = frozenset(blocks[reps[0]])
    return Cut.of(graph, side)


def karger_best_of(graph: Graph, runs: int, *, seed: int = 0) -> Cut:
    """Best cut over independent runs (naive boosting baseline)."""
    if runs < 1:
        raise ValueError("need at least one run")
    best: Cut | None = None
    for r in range(runs):
        cut = karger_single_run(graph, seed=seed + 104_729 * r)
        if best is None or cut.weight < best.weight:
            best = cut
    assert best is not None
    return best


def contraction_preserves_cut(
    graph: Graph, side: frozenset, target: int, *, seed: int = 0
) -> bool:
    """Does contracting to ``target`` vertices preserve the cut ``side``?

    "Preserve" = no edge crossing the cut was contracted, i.e. every
    contracted block stays entirely on one side.  This is the event of
    Lemma 1 / Lemma 2 whose probability E7 estimates.
    """
    keys = draw_contraction_keys(graph, seed=seed)
    _, blocks = contract_to_size(graph, keys, target)
    # Vectorized purity check: label every vertex with its block id and
    # compare each block's inside-count against its size.
    index = graph._index
    n = graph.num_vertices
    block_id = np.empty(n, dtype=np.int64)
    in_side = np.zeros(n, dtype=np.int64)
    for b, members in enumerate(blocks.values()):
        for v in members:
            block_id[index[v]] = b
    for v in side:
        i = index.get(v)
        if i is not None:  # foreign side vertices can never be members
            in_side[i] = 1
    inside = np.bincount(block_id, weights=in_side, minlength=len(blocks))
    sizes = np.bincount(block_id, minlength=len(blocks))
    return bool(np.all((inside == 0) | (inside == sizes)))
