"""Baselines: exact cuts, Karger variants, MPC cost model, Saran–Vazirani.

Every approximate result in :mod:`repro.core` is differentially tested
against something exact here; see ``docs/ARCHITECTURE.md`` for the
subsystem map."""

from .exact_kcut import exact_min_kcut, exact_min_kcut_weight
from .gn_mpc import (
    RoundComparison,
    gn_mpc_kcut_rounds,
    gn_mpc_min_cut,
    gn_mpc_rounds,
    mpc_level_rounds,
)
from .karger import contraction_preserves_cut, karger_best_of, karger_single_run
from .matula import MatulaResult, matula_min_cut, matula_min_cut_weight
from .karger_stein import karger_stein_boosted, karger_stein_min_cut
from .saran_vazirani import sv_gomory_hu_kcut, sv_split_kcut
from .stoer_wagner import exact_min_cut_weight, stoer_wagner_min_cut

__all__ = [
    "MatulaResult",
    "RoundComparison",
    "contraction_preserves_cut",
    "exact_min_cut_weight",
    "exact_min_kcut",
    "exact_min_kcut_weight",
    "gn_mpc_kcut_rounds",
    "gn_mpc_min_cut",
    "gn_mpc_rounds",
    "karger_best_of",
    "karger_single_run",
    "karger_stein_boosted",
    "karger_stein_min_cut",
    "matula_min_cut",
    "matula_min_cut_weight",
    "mpc_level_rounds",
    "stoer_wagner_min_cut",
    "sv_gomory_hu_kcut",
    "sv_split_kcut",
]
