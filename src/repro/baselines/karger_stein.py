"""Karger–Stein recursive contraction — the paper's foundational substrate.

Section 2's description, verbatim: create two copies, contract each
(independently) until ``n / sqrt(2)`` vertices remain, recurse on both,
return the better cut.  Success probability ``Omega(1 / log n)`` per
invocation; ``O(log^2 n)`` invocations give high probability.

Used as the exact-result baseline in E2 (it finds the true minimum cut
w.h.p., unlike the 2+eps-approximate Algorithm 1, at a much higher
round cost in a parallel model) and in E7's preservation experiments.
"""

from __future__ import annotations

import math
from typing import Hashable

from ..core.contraction import contract_to_size
from ..core.keys import draw_contraction_keys
from ..graph import Cut, Graph, lift_cut
from .stoer_wagner import stoer_wagner_min_cut

Vertex = Hashable

_SQRT2 = math.sqrt(2.0)


def karger_stein_min_cut(graph: Graph, *, seed: int = 0, base: int = 6) -> Cut:
    """One invocation of the recursive contraction algorithm.

    The contraction step is one key draw + one vectorized quotient per
    copy (:func:`~repro.core.contraction.contract_to_size`); the base
    case is the columnar Stoer–Wagner.
    """
    if graph.num_vertices < 2:
        raise ValueError("need n >= 2")
    return _recurse(graph, seed, base)


def _recurse(graph: Graph, seed: int, base: int) -> Cut:
    n = graph.num_vertices
    if n <= base:
        return stoer_wagner_min_cut(graph)
    target = max(2, math.ceil(n / _SQRT2))
    if target >= n:
        target = n - 1
    best: Cut | None = None
    for copy in range(2):
        copy_seed = (seed * 2_654_435_761 + copy + 1) & 0x7FFFFFFF
        keys = draw_contraction_keys(graph, seed=copy_seed)
        contracted, blocks = contract_to_size(graph, keys, target)
        if contracted.num_vertices < 2:
            continue
        sub = _recurse(contracted, copy_seed + 17, base)
        lifted = Cut.of(graph, lift_cut(blocks, sub.side))
        if best is None or lifted.weight < best.weight:
            best = lifted
    if best is None:  # both copies degenerated (tiny/odd graphs)
        return stoer_wagner_min_cut(graph)
    return best


def karger_stein_boosted(
    graph: Graph, *, trials: int | None = None, seed: int = 0
) -> Cut:
    """``Theta(log^2 n)`` independent invocations — the w.h.p. wrapper."""
    n = graph.num_vertices
    if trials is None:
        trials = max(1, math.ceil(math.log2(max(4, n)) ** 2 / 2))
    best: Cut | None = None
    for t in range(trials):
        cut = karger_stein_min_cut(graph, seed=seed + 7907 * t)
        if best is None or cut.weight < best.weight:
            best = cut
    assert best is not None
    return best
