"""Edge-list serialization.

A minimal, dependency-free text format::

    # comment
    n_vertices
    u v weight
    ...

Vertices are written by ``repr``-stable string; on load they come back
as ints when they parse as ints, else strings.  Sufficient for sharing
benchmark workloads and example graphs.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import TextIO

from .graph import Graph


def write_edgelist(graph: Graph, fp: TextIO) -> None:
    """Serialize ``graph`` to an open text file."""
    fp.write(f"{graph.num_vertices}\n")
    order = {v: i for i, v in enumerate(graph.vertices())}
    for v in graph.vertices():
        fp.write(f"v {_fmt(v)}\n")
    for u, v, w in sorted(graph.edges(), key=lambda e: (order[e[0]], order[e[1]])):
        fp.write(f"e {_fmt(u)} {_fmt(v)} {w!r}\n")


def read_edgelist(fp: TextIO) -> Graph:
    """Parse a graph previously written by :func:`write_edgelist`."""
    header = fp.readline()
    if not header:
        raise ValueError("empty edge-list file")
    n = int(header.strip())
    g = Graph()
    for line in fp:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "v":
            g.add_vertex(_parse(parts[1]))
        elif parts[0] == "e":
            u, v = _parse(parts[1]), _parse(parts[2])
            w = float(parts[3])
            if not math.isfinite(w):
                # NaN/inf would poison the fingerprint (NaN != NaN
                # breaks cache keys) and every cut comparison.
                raise ValueError(
                    f"edge weight for {u!r} -- {v!r} must be finite, got {w}"
                )
            if u == v or w == 0:
                # Self-loops and zero-weight edges cannot cross any
                # cut; drop them (keeping the endpoints as vertices),
                # matching the DIMACS/METIS readers' canonicalization.
                g.add_vertex(u)
                g.add_vertex(v)
                continue
            g.add_edge(u, v, w)
        else:
            raise ValueError(f"unrecognised line: {line!r}")
    if g.num_vertices != n:
        raise ValueError(
            f"header declared {n} vertices but {g.num_vertices} were listed"
        )
    return g


def save_graph(graph: Graph, path: str | Path) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        write_edgelist(graph, fp)


def load_graph(path: str | Path) -> Graph:
    with open(path, "r", encoding="utf-8") as fp:
        return read_edgelist(fp)


def _fmt(v) -> str:
    return str(v)


def _parse(s: str):
    try:
        return int(s)
    except ValueError:
        return s
