"""Cut values and validation helpers shared across the library.

A *cut* is represented by one side (a frozen vertex set); its weight is
evaluated against a given graph.  A *k-cut* is a partition into k
non-empty parts; its weight is the total weight of edges joining
different parts (matching the paper's ``sum_i delta(V_i)`` divided by
two — see :func:`kcut_weight` for the convention note).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

from .graph import Graph


@dataclass(frozen=True)
class Cut:
    """A 2-cut: one side plus its evaluated weight."""

    side: frozenset
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("cut weight cannot be negative")

    @staticmethod
    def of(graph: Graph, side: Iterable[Hashable]) -> "Cut":
        fs = frozenset(side)
        if not fs or len(fs) >= graph.num_vertices:
            raise ValueError("cut side must be a proper non-empty subset")
        return Cut(side=fs, weight=graph.cut_weight(fs))

    def validate(self, graph: Graph) -> None:
        """Re-evaluate against ``graph`` and check stored weight."""
        actual = graph.cut_weight(self.side)
        if abs(actual - self.weight) > 1e-9 * max(1.0, abs(actual)):
            raise ValueError(
                f"stored cut weight {self.weight} != evaluated {actual}"
            )


@dataclass(frozen=True)
class KCut:
    """A k-cut: the partition plus its evaluated weight."""

    parts: tuple[frozenset, ...]
    weight: float

    @staticmethod
    def of(graph: Graph, parts: Sequence[Iterable[Hashable]]) -> "KCut":
        frozen = tuple(frozenset(p) for p in parts)
        if any(not p for p in frozen):
            raise ValueError("k-cut parts must be non-empty")
        total = sum(len(p) for p in frozen)
        union = set().union(*frozen)
        if total != len(union) or len(union) != graph.num_vertices:
            raise ValueError("parts must partition the vertex set")
        return KCut(parts=frozen, weight=graph.partition_cut_weight(frozen))

    @property
    def k(self) -> int:
        return len(self.parts)


def singleton_cut_weight(graph: Graph, v: Hashable) -> float:
    """Weight of the singleton cut ``({v}, V-v)`` = weighted degree."""
    return graph.degree(v)


def min_singleton_cut(graph: Graph) -> Cut:
    """Best singleton cut of the graph (baseline / sanity bound).

    Served from the cached degree vector; ``argmin`` keeps the
    first-index tie-break of the scalar scan.
    """
    best_v = graph.vertices()[int(np.argmin(graph.degree_vector()))]
    return Cut.of(graph, [best_v])


def kcut_weight(graph: Graph, parts: Sequence[Iterable[Hashable]]) -> float:
    """Weight of a k-cut as *edges between different parts*.

    The paper states the objective as ``sum_i delta(V_i)`` which counts
    every crossing edge twice; the standard Min k-Cut objective (and
    Saran–Vazirani's) counts each edge once.  Approximation ratios are
    identical under either convention; we use the count-once form
    everywhere and note the factor in EXPERIMENTS.md.
    """
    return graph.partition_cut_weight([list(p) for p in parts])


def lift_cut(blocks: dict, side: Iterable[Hashable]) -> frozenset:
    """Lift a cut side of a quotient graph back to original vertices.

    ``blocks`` maps quotient vertices to the original vertices they
    absorbed (as produced by :meth:`Graph.quotient`).
    """
    out: set = set()
    for rep in side:
        out.update(blocks[rep])
    return frozenset(out)
