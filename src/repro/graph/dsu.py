"""Union–find (disjoint set union) with path halving and union by size.

Used by the contraction-process replay (the differential oracle for
Algorithm 3), Kruskal consolidation, and quotient-graph construction.
"""

from __future__ import annotations

from typing import Hashable, Iterable


class DSU:
    """Disjoint sets over an arbitrary hashable universe."""

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._count = 0
        for x in elements:
            self.add(x)

    # ------------------------------------------------------------------
    def add(self, x: Hashable) -> None:
        """Register ``x`` as a singleton set (idempotent)."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._count += 1

    def find(self, x: Hashable) -> Hashable:
        """Representative of ``x``'s set (path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def set_size(self, x: Hashable) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        return self._count

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def groups(self) -> dict[Hashable, list[Hashable]]:
        """Map representative -> members (members in insertion order)."""
        out: dict[Hashable, list[Hashable]] = {}
        for x in self._parent:
            out.setdefault(self.find(x), []).append(x)
        return out
