"""DIMACS and METIS graph formats.

The library's native edge list (:mod:`repro.graph.io`) is explicit but
nobody else speaks it.  Cut/partitioning workloads in the wild come as:

* **DIMACS** (the min-cut/max-flow challenge format)::

      c comment
      p <problem> <n> <m>
      e <u> <v> [w]        -- 1-based vertex ids

  ``read_dimacs`` accepts any problem tag (``edge``, ``cut``, ``max``),
  merges duplicate edges by weight sum (the cut-preserving semantics of
  :class:`~repro.graph.graph.Graph`), and ignores self-loops and
  zero-weight edges rather than erroring (real DIMACS files contain
  them; neither can ever affect a cut).  All readers canonicalize
  identically — the invariant the kernelization pipeline
  (:mod:`repro.preprocess`) starts from.

* **METIS / Chaco** (the partitioner input format)::

      % comment
      <n> <m> [fmt]
      <adjacency of vertex 1, as "nbr [w] nbr [w] ..." >
      ...

  ``fmt`` is the standard 3-digit flag string; this reader supports
  ``0``/``001`` (edge weights off/on) and rejects vertex-weighted
  variants (``01x``, ``1xx``) loudly since dropping vertex weights
  silently would corrupt a partitioning experiment.

Both readers produce 1-based integer vertices exactly as written, so a
graph round-trips bit-for-bit through its own writer; both writers
normalise to sorted vertex order for reproducible files.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import TextIO

from .graph import Graph



def _vertex_sort_key(v) -> tuple:
    """Numeric order for int vertices, lexicographic for the rest."""
    if isinstance(v, bool):  # bool is an int subclass; keep it textual
        return (1, 0, str(v))
    if isinstance(v, int):
        return (0, v, "")
    return (1, 0, str(v))


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------
def write_dimacs(graph: Graph, fp: TextIO, *, problem: str = "cut") -> None:
    """Write the DIMACS edge format, remapping vertices to ``1..n``."""
    order = sorted(graph.vertices(), key=_vertex_sort_key)
    vid = {v: i + 1 for i, v in enumerate(order)}
    fp.write(f"c repro graph: {graph.num_vertices} vertices\n")
    fp.write(f"p {problem} {graph.num_vertices} {graph.num_edges}\n")
    for u, v, w in sorted(graph.edges(), key=lambda e: (vid[e[0]], vid[e[1]])):
        a, b = sorted((vid[u], vid[v]))
        if w == int(w):
            fp.write(f"e {a} {b} {int(w)}\n")
        else:
            fp.write(f"e {a} {b} {w!r}\n")


def read_dimacs(fp: TextIO) -> Graph:
    """Parse a DIMACS edge-format file into a :class:`Graph`.

    Vertices are the 1-based integers of the file.  Duplicate edges
    merge by weight sum; self-loops are skipped (they cannot cross any
    cut).  Unweighted ``e u v`` lines get weight 1.
    """
    n_declared: int | None = None
    g = Graph()
    for lineno, raw in enumerate(fp, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if n_declared is not None:
                raise ValueError(f"line {lineno}: second problem line")
            if len(parts) < 4:
                raise ValueError(f"line {lineno}: malformed problem line")
            n_declared = int(parts[2])
            for v in range(1, n_declared + 1):
                g.add_vertex(v)
        elif parts[0] in ("e", "a"):
            if n_declared is None:
                raise ValueError(f"line {lineno}: edge before problem line")
            if len(parts) not in (3, 4):
                raise ValueError(f"line {lineno}: malformed edge line")
            u, v = int(parts[1]), int(parts[2])
            w = float(parts[3]) if len(parts) == 4 else 1.0
            if not math.isfinite(w):
                raise ValueError(
                    f"line {lineno}: edge weight must be finite, got {w}"
                )
            if not (1 <= u <= n_declared and 1 <= v <= n_declared):
                raise ValueError(
                    f"line {lineno}: vertex out of range 1..{n_declared}"
                )
            if u == v:
                continue  # self-loops never cross a cut
            if w == 0:
                continue  # zero-capacity edges cannot affect any cut
            g.add_edge(u, v, w)
        else:
            raise ValueError(f"line {lineno}: unrecognised {parts[0]!r} line")
    if n_declared is None:
        raise ValueError("missing problem line")
    return g


def save_dimacs(graph: Graph, path: str | Path, *, problem: str = "cut") -> None:
    with open(path, "w", encoding="utf-8") as fp:
        write_dimacs(graph, fp, problem=problem)


def load_dimacs(path: str | Path) -> Graph:
    with open(path, "r", encoding="utf-8") as fp:
        return read_dimacs(fp)


# ----------------------------------------------------------------------
# METIS
# ----------------------------------------------------------------------
def write_metis(graph: Graph, fp: TextIO) -> None:
    """Write METIS adjacency format (with edge weights, fmt=001)."""
    order = sorted(graph.vertices(), key=_vertex_sort_key)
    vid = {v: i + 1 for i, v in enumerate(order)}
    adj = graph.adjacency()
    weighted = any(w != 1.0 for _, _, w in graph.edges())
    fmt = " 001" if weighted else ""
    fp.write(f"{graph.num_vertices} {graph.num_edges}{fmt}\n")
    for v in order:
        row: list[str] = []
        for u, w in sorted(adj[v].items(), key=lambda kv: vid[kv[0]]):
            row.append(str(vid[u]))
            if weighted:
                row.append(str(int(w)) if w == int(w) else repr(w))
        fp.write(" ".join(row) + "\n")


def read_metis(fp: TextIO) -> Graph:
    """Parse METIS adjacency format (fmt 0 or 001) into a :class:`Graph`."""
    header: list[str] | None = None
    rows: list[str] = []
    for raw in fp:
        line = raw.strip()
        if line.startswith("%"):
            continue
        if header is None:
            if not line:
                continue  # leading blanks before the header
            header = line.split()
        else:
            # blank lines after the header are *rows*: a vertex with an
            # empty adjacency list (isolated vertex)
            rows.append(line)
    if header is None:
        raise ValueError("empty METIS file")
    if len(header) not in (2, 3):
        raise ValueError(f"malformed METIS header: {header}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) == 3 else "0"
    fmt = fmt.zfill(3)
    if fmt[0] != "0" or fmt[1] != "0":
        raise ValueError(
            f"METIS fmt {fmt!r}: vertex weights/sizes are not supported"
        )
    has_ew = fmt[2] == "1"
    if len(rows) < n:
        # blank adjacency lines for isolated trailing vertices are legal
        rows.extend([""] * (n - len(rows)))
    if len(rows) > n:
        raise ValueError(f"expected {n} adjacency lines, found {len(rows)}")

    g = Graph(vertices=range(1, n + 1))
    pairs_seen: set[tuple[int, int]] = set()
    for i, line in enumerate(rows, start=1):
        toks = line.split()
        step = 2 if has_ew else 1
        if len(toks) % step:
            raise ValueError(f"vertex {i}: odd token count with edge weights")
        # A neighbour listed twice in the SAME row is a parallel edge:
        # merge by weight sum first, exactly as Graph.add_edge (and the
        # edge-list/DIMACS readers) canonicalize, so that duplicate
        # ingestion matches the kernel pipeline's parallel-edge merge.
        # The appearance in the neighbour's own row is then checked
        # against the merged total (the usual symmetry requirement).
        row_adj: dict[int, float] = {}
        for j in range(0, len(toks), step):
            u = int(toks[j])
            w = float(toks[j + 1]) if has_ew else 1.0
            if not math.isfinite(w):
                raise ValueError(
                    f"vertex {i}: edge weight must be finite, got {w}"
                )
            if not 1 <= u <= n:
                raise ValueError(f"vertex {i}: neighbour {u} out of range")
            if u == i:
                continue  # self-loops never cross a cut
            row_adj[u] = row_adj.get(u, 0.0) + w
        for u, w in row_adj.items():
            pair = (i, u) if i < u else (u, i)
            if pair in pairs_seen:  # listed from both endpoints
                prev = g.weight(i, u) if g.has_edge(i, u) else 0.0
                if abs(prev - w) > 1e-9:
                    raise ValueError(
                        f"edge ({i},{u}): asymmetric weights {prev} vs {w}"
                    )
                continue
            pairs_seen.add(pair)
            if w == 0:
                continue  # zero-weight edges cannot affect any cut
            g.add_edge(i, u, w)
    # The header's edge count may reflect either the canonical merged
    # view (what this reader materialises) or the raw listing including
    # zero-weight edges the canonicalization drops; accept both.
    if g.num_edges != m and len(pairs_seen) != m:
        raise ValueError(f"header declared {m} edges, parsed {g.num_edges}")
    return g


def save_metis(graph: Graph, path: str | Path) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        write_metis(graph, fp)


def load_metis(path: str | Path) -> Graph:
    with open(path, "r", encoding="utf-8") as fp:
        return read_metis(fp)
