"""Nagamochi–Ibaraki sparse certificates (min-cut-preserving sparsifiers).

The paper's total-memory budget is ``Õ(n + m)``; on dense inputs the
``m`` term dominates every DHT high-water mark.  Nagamochi and Ibaraki
(Algorithmica '92) showed that a *scan-first search* computes, in one
pass, a capacity assignment under which all small cuts survive exactly:

* :func:`ni_edge_starts` runs the scan and returns, for every edge
  ``e = (u, v, w)``, its **start level** ``r(e)``: viewing ``e`` as
  ``w`` parallel unit edges, the copies occupy forest levels
  ``(r, r + w]`` of the NI forest partition ``F_1, F_2, ...`` (each
  ``F_i`` a maximal spanning forest of what the earlier forests left).
* :func:`ni_certificate` keeps, for parameter ``k``, the overlap of
  each edge's level interval with ``[0, k)``.  The resulting graph
  ``G_k`` satisfies, for every vertex subset ``S``::

      min(k, w_G(δS))  <=  w_{G_k}(δS)  <=  w_G(δS)

  so with ``k >=`` the minimum weighted degree (``>= λ``, the min cut)
  **every minimum cut is preserved exactly** while the certificate
  carries total capacity at most ``k (n - 1)``.
* :func:`sparsify_preserving_min_cut` picks that safe ``k``
  automatically — the preprocessing step the sparsification ablation
  (bench E12) toggles in front of Algorithm 1.

Two structural facts the tests pin down (both are the inputs to
Matula's approximation, :mod:`repro.baselines.matula`):

* **level-forest property** — for every threshold ``t``, the edges
  whose interval covers ``t`` form a forest, hence the certificate's
  total capacity is at most ``k (n - 1)``;
* **connectivity witness** — an edge with ``r(e) + w(e) = q`` has
  endpoint connectivity ``λ(u, v) >= q`` (its top parallel copy lies in
  forest ``F_q``, and an ``F_i`` edge certifies ``i``-connectivity).

The scan itself is the maximum-adjacency order familiar from
Stoer–Wagner: repeatedly scan the unscanned vertex most heavily
attached to the scanned set; assigning each newly seen edge the
attachment weight its far endpoint had accumulated so far.

See also :mod:`repro.preprocess` — the exact kernelization pipeline
that composes these certificates with degree-one and heavy-edge
contractions in front of every solver (``repro-cut --preprocess``);
its R5/R6 rules are the connectivity-witness and certificate facts
above, applied at the ``lambda_hat`` candidate bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable, Iterator

from .graph import Graph

Vertex = Hashable
EdgeKey = tuple[Vertex, Vertex]


@dataclass(frozen=True)
class NIScan:
    """Result of one scan-first search over a weighted graph.

    ``starts`` maps each edge (keyed exactly as :meth:`Graph.edges`
    yields it, i.e. ``(u, v)`` with the graph's internal orientation)
    to its start level ``r(e) >= 0``.  ``order`` is the vertex scan
    order (a maximum-adjacency order).
    """

    starts: dict[EdgeKey, float]
    order: list[Vertex]

    def start(self, u: Vertex, v: Vertex) -> float:
        """Start level of edge ``{u, v}`` regardless of orientation."""
        if (u, v) in self.starts:
            return self.starts[(u, v)]
        return self.starts[(v, u)]

    def intervals(self, graph: Graph) -> Iterator[tuple[EdgeKey, float, float]]:
        """Yield ``((u, v), lo, hi)`` level intervals, ``hi - lo = w``."""
        for u, v, w in graph.edges():
            lo = self.start(u, v)
            yield (u, v), lo, lo + w


def ni_edge_starts(graph: Graph, *, first: Vertex | None = None) -> NIScan:
    """Scan-first search: start levels for every edge (NI '92).

    ``first`` seeds the scan (defaults to the graph's first vertex);
    disconnected graphs are handled by restarting the scan at an
    arbitrary unscanned vertex (attachment 0) whenever the frontier
    drains, exactly as the forest partition requires.

    Runs in ``O(m log n)`` with a lazy-deletion heap.
    """
    vertices = graph.vertices()
    if not vertices:
        return NIScan(starts={}, order=[])
    adj = graph.adjacency()
    if first is not None and first not in adj:
        raise ValueError(f"seed vertex {first!r} not in graph")

    ekeys = {(u, v) for u, v, _ in graph.edges()}
    # r[v]: total weight of already-assigned edges into v (= attachment
    # of v to the scanned set).  The heap holds (-r, tiebreak, v)
    # entries; stale entries are skipped on pop.
    r: dict[Vertex, float] = {v: 0.0 for v in vertices}
    scanned: set[Vertex] = set()
    starts: dict[EdgeKey, float] = {}
    order: list[Vertex] = []

    heap: list[tuple[float, int, Vertex]] = []
    tiebreak = {v: i for i, v in enumerate(vertices)}
    if first is None:
        first = vertices[0]
    heapq.heappush(heap, (0.0, tiebreak[first], first))
    remaining = [v for v in reversed(vertices) if v != first]

    while len(scanned) < len(vertices):
        u: Vertex | None = None
        while heap:
            neg_r, _, cand = heapq.heappop(heap)
            if cand not in scanned and -neg_r == r[cand]:
                u = cand
                break
        if u is None:
            # frontier drained: restart in a fresh component
            while remaining and remaining[-1] in scanned:
                remaining.pop()
            if not remaining:
                break
            u = remaining.pop()
        scanned.add(u)
        order.append(u)
        for v, w in adj[u].items():
            if v in scanned:
                continue
            key = (u, v) if (u, v) in ekeys else (v, u)
            starts[key] = r[v]
            r[v] += w
            heapq.heappush(heap, (-r[v], tiebreak[v], v))
    return NIScan(starts=starts, order=order)


def _edge_keys(graph: Graph) -> set[EdgeKey]:
    """Set of edge keys in the graph's own orientation (cached per call)."""
    # Graph yields each edge once with a fixed orientation; collect once.
    cache = getattr(graph, "_sparsify_edge_keys", None)
    if cache is None or len(cache) != graph.num_edges:
        cache = {(u, v) for u, v, _ in graph.edges()}
        try:
            graph._sparsify_edge_keys = cache  # type: ignore[attr-defined]
        except AttributeError:  # pragma: no cover - Graph always allows it
            pass
    return cache


def ni_certificate(graph: Graph, k: float, *, scan: NIScan | None = None) -> Graph:
    """The ``k``-certificate ``G_k``: per-edge overlap with ``[0, k)``.

    Every cut of ``G_k`` is sandwiched as ``min(k, w_G(δS)) <=
    w_{G_k}(δS) <= w_G(δS)``; edges entirely above level ``k`` vanish.
    Isolated-by-sparsification vertices are kept so ``G_k`` has the
    same vertex set.
    """
    if k < 0:
        raise ValueError(f"certificate parameter must be >= 0, got {k}")
    if scan is None:
        scan = ni_edge_starts(graph)
    cert = Graph(vertices=graph.vertices())
    for u, v, w in graph.edges():
        lo = scan.start(u, v)
        keep = min(w, k - lo)
        if keep > 0:
            cert.add_edge(u, v, keep)
    return cert


def ni_forest_partition(graph: Graph) -> list[list[tuple[Vertex, Vertex]]]:
    """NI forest partition ``F_1, F_2, ...`` of a **unit-weight** graph.

    ``F_i`` is the set of edges with start level ``i - 1``; the classic
    theorem makes each ``F_i`` a maximal spanning forest of
    ``G - (F_1 ∪ ... ∪ F_{i-1})``.  Raises on non-unit weights, where
    "the" partition is the interval structure of :func:`ni_edge_starts`
    instead.
    """
    for _, _, w in graph.edges():
        if w != 1.0:
            raise ValueError(
                "forest partition is defined for unit weights; "
                "use ni_edge_starts intervals for weighted graphs"
            )
    scan = ni_edge_starts(graph)
    if not scan.starts:
        return []
    depth = int(max(scan.starts.values())) + 1
    forests: list[list[tuple[Vertex, Vertex]]] = [[] for _ in range(depth)]
    for (u, v), lo in scan.starts.items():
        forests[int(lo)].append((u, v))
    return forests


def sparsify_preserving_min_cut(
    graph: Graph, *, slack: float = 1.0, scan: NIScan | None = None
) -> Graph:
    """Certificate at ``k = slack * (min weighted degree)``.

    The minimum degree upper-bounds the min cut, so any ``slack >= 1``
    preserves every minimum cut *exactly* (weight and membership) while
    capping total capacity at ``k (n - 1)`` — on dense graphs this
    shrinks the ``m`` term of the paper's ``Õ(n + m)`` total memory.
    :func:`repro.preprocess.kernelize` runs this as its final
    ``aggressive`` pass (rule R6), after the contraction rules, since
    it reweights edges.
    """
    if slack < 1.0:
        raise ValueError(f"slack < 1 may destroy minimum cuts (got {slack})")
    if graph.num_vertices == 0 or graph.num_edges == 0:
        return graph.copy()
    delta = min(graph.degree(v) for v in graph.vertices())
    return ni_certificate(graph, slack * delta, scan=scan)
