"""Nagamochi–Ibaraki sparse certificates (min-cut-preserving sparsifiers).

The paper's total-memory budget is ``Õ(n + m)``; on dense inputs the
``m`` term dominates every DHT high-water mark.  Nagamochi and Ibaraki
(Algorithmica '92) showed that a *scan-first search* computes, in one
pass, a capacity assignment under which all small cuts survive exactly:

* :func:`ni_edge_starts` runs the scan and returns, for every edge
  ``e = (u, v, w)``, its **start level** ``r(e)``: viewing ``e`` as
  ``w`` parallel unit edges, the copies occupy forest levels
  ``(r, r + w]`` of the NI forest partition ``F_1, F_2, ...`` (each
  ``F_i`` a maximal spanning forest of what the earlier forests left).
* :func:`ni_certificate` keeps, for parameter ``k``, the overlap of
  each edge's level interval with ``[0, k)``.  The resulting graph
  ``G_k`` satisfies, for every vertex subset ``S``::

      min(k, w_G(δS))  <=  w_{G_k}(δS)  <=  w_G(δS)

  so with ``k >=`` the minimum weighted degree (``>= λ``, the min cut)
  **every minimum cut is preserved exactly** while the certificate
  carries total capacity at most ``k (n - 1)``.
* :func:`sparsify_preserving_min_cut` picks that safe ``k``
  automatically — the preprocessing step the sparsification ablation
  (bench E12) toggles in front of Algorithm 1.

Two structural facts the tests pin down (both are the inputs to
Matula's approximation, :mod:`repro.baselines.matula`):

* **level-forest property** — for every threshold ``t``, the edges
  whose interval covers ``t`` form a forest, hence the certificate's
  total capacity is at most ``k (n - 1)``;
* **connectivity witness** — an edge with ``r(e) + w(e) = q`` has
  endpoint connectivity ``λ(u, v) >= q`` (its top parallel copy lies in
  forest ``F_q``, and an ``F_i`` edge certifies ``i``-connectivity).

The scan itself is the maximum-adjacency order familiar from
Stoer–Wagner: repeatedly scan the unscanned vertex most heavily
attached to the scanned set; assigning each newly seen edge the
attachment weight its far endpoint had accumulated so far.

See also :mod:`repro.preprocess` — the exact kernelization pipeline
that composes these certificates with degree-one and heavy-edge
contractions in front of every solver (``repro-cut --preprocess``);
its R5/R6 rules are the connectivity-witness and certificate facts
above, applied at the ``lambda_hat`` candidate bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable, Iterator

import numpy as np

from .graph import Graph

Vertex = Hashable
EdgeKey = tuple[Vertex, Vertex]


@dataclass(frozen=True)
class NIScan:
    """Result of one scan-first search over a weighted graph.

    ``starts`` maps each edge (keyed exactly as :meth:`Graph.edges`
    yields it, i.e. ``(u, v)`` with the graph's internal orientation)
    to its start level ``r(e) >= 0``.  ``order`` is the vertex scan
    order (a maximum-adjacency order).  ``start_levels``, when present,
    is the same information as a float column aligned with the scanned
    graph's edge rows (the fast path for vectorized consumers; absent
    on hand-built scans).
    """

    starts: dict[EdgeKey, float]
    order: list[Vertex]
    start_levels: np.ndarray | None = field(default=None, compare=False)
    #: the graph :func:`ni_edge_starts` scanned — the only graph whose
    #: edge rows ``start_levels`` is aligned with
    scanned_graph: Graph | None = field(default=None, repr=False, compare=False)

    def start(self, u: Vertex, v: Vertex) -> float:
        """Start level of edge ``{u, v}`` regardless of orientation."""
        if (u, v) in self.starts:
            return self.starts[(u, v)]
        return self.starts[(v, u)]

    def levels_for(self, graph: Graph) -> np.ndarray:
        """Start levels as a column aligned with ``graph``'s edge rows.

        The fast path (returning :attr:`start_levels` as-is) applies
        only when ``graph`` *is* the scanned graph with its edge count
        unchanged; any other graph goes through the endpoint-keyed
        lookups, which raise ``KeyError`` on edges the scan never saw —
        the same contract the dict-only implementation had.
        """
        if (
            self.start_levels is not None
            and graph is self.scanned_graph
            and len(self.start_levels) == graph.num_edges
        ):
            return self.start_levels
        return np.fromiter(
            (self.start(u, v) for u, v, _ in graph.edges()),
            np.float64,
            count=graph.num_edges,
        )

    def intervals(self, graph: Graph) -> Iterator[tuple[EdgeKey, float, float]]:
        """Yield ``((u, v), lo, hi)`` level intervals, ``hi - lo = w``."""
        for u, v, w in graph.edges():
            lo = self.start(u, v)
            yield (u, v), lo, lo + w


def ni_edge_starts(graph: Graph, *, first: Vertex | None = None) -> NIScan:
    """Scan-first search: start levels for every edge (NI '92).

    ``first`` seeds the scan (defaults to the graph's first vertex);
    disconnected graphs are handled by restarting the scan at the
    lowest-index unscanned vertex (attachment 0) whenever the frontier
    drains, exactly as the forest partition requires.

    Runs in ``O(m log n)`` with a lazy-deletion heap, entirely over
    dense vertex indices: the adjacency is an edge-id CSR built from
    the graph's columns, attachments live in a flat float list, and
    start levels are recorded per edge row (the ``start_levels``
    column of the returned scan).
    """
    vertices = graph.vertices()
    n = len(vertices)
    if n == 0:
        return NIScan(starts={}, order=[], start_levels=np.empty(0))
    if first is not None and first not in graph._index:
        raise ValueError(f"seed vertex {first!r} not in graph")

    us, vs, _ = graph.edge_arrays()
    m = len(us)
    # The graph's cached edge-id CSR: per vertex, incident (neighbor,
    # weight, edge row) triples in edge-insertion order — the same
    # order the dict-based adjacency yielded, so attachment
    # accumulation is bit-identical.
    indptr, nbr_a, nw_a, ne_a = graph.csr()
    nbr = nbr_a.tolist()
    nw = nw_a.tolist()
    ne = ne_a.tolist()
    ptr = indptr.tolist()

    # r[v]: total weight of already-assigned edges into v (= attachment
    # of v to the scanned set).  The heap holds (-r, v) entries (the
    # vertex index doubles as the deterministic tiebreak); stale
    # entries are skipped on pop.
    r = [0.0] * n
    scanned = bytearray(n)
    start_levels = np.zeros(m, dtype=np.float64)
    order: list[Vertex] = []

    first_i = 0 if first is None else graph._index[first]
    heap: list[tuple[float, int]] = [(0.0, first_i)]
    fresh = 0  # restart pointer: lowest index possibly unscanned
    scanned_count = 0

    while scanned_count < n:
        u = -1
        while heap:
            neg_r, cand = heapq.heappop(heap)
            if not scanned[cand] and -neg_r == r[cand]:
                u = cand
                break
        if u < 0:
            # frontier drained: restart in a fresh component
            while fresh < n and scanned[fresh]:
                fresh += 1
            if fresh >= n:
                break
            u = fresh
        scanned[u] = 1
        scanned_count += 1
        order.append(vertices[u])
        for j in range(ptr[u], ptr[u + 1]):
            v = nbr[j]
            if scanned[v]:
                continue
            start_levels[ne[j]] = r[v]
            r[v] += nw[j]
            heapq.heappush(heap, (-r[v], v))

    V = vertices
    starts = {
        (V[iu], V[iv]): lo
        for iu, iv, lo in zip(us.tolist(), vs.tolist(), start_levels.tolist())
    }
    return NIScan(
        starts=starts,
        order=order,
        start_levels=start_levels,
        scanned_graph=graph,
    )


def ni_certificate(graph: Graph, k: float, *, scan: NIScan | None = None) -> Graph:
    """The ``k``-certificate ``G_k``: per-edge overlap with ``[0, k)``.

    Every cut of ``G_k`` is sandwiched as ``min(k, w_G(δS)) <=
    w_{G_k}(δS) <= w_G(δS)``; edges entirely above level ``k`` vanish.
    Isolated-by-sparsification vertices are kept so ``G_k`` has the
    same vertex set.  One mask-and-clip pass over the edge columns.
    """
    if k < 0:
        raise ValueError(f"certificate parameter must be >= 0, got {k}")
    if scan is None:
        scan = ni_edge_starts(graph)
    us, vs, ws = graph.edge_arrays()
    keep = np.minimum(ws, k - scan.levels_for(graph))
    mask = keep > 0
    return Graph._from_columns(
        graph.vertices(), us[mask], vs[mask], keep[mask]
    )


def ni_forest_partition(graph: Graph) -> list[list[tuple[Vertex, Vertex]]]:
    """NI forest partition ``F_1, F_2, ...`` of a **unit-weight** graph.

    ``F_i`` is the set of edges with start level ``i - 1``; the classic
    theorem makes each ``F_i`` a maximal spanning forest of
    ``G - (F_1 ∪ ... ∪ F_{i-1})``.  Raises on non-unit weights, where
    "the" partition is the interval structure of :func:`ni_edge_starts`
    instead.
    """
    for _, _, w in graph.edges():
        if w != 1.0:
            raise ValueError(
                "forest partition is defined for unit weights; "
                "use ni_edge_starts intervals for weighted graphs"
            )
    scan = ni_edge_starts(graph)
    if not scan.starts:
        return []
    depth = int(max(scan.starts.values())) + 1
    forests: list[list[tuple[Vertex, Vertex]]] = [[] for _ in range(depth)]
    for (u, v), lo in scan.starts.items():
        forests[int(lo)].append((u, v))
    return forests


def sparsify_preserving_min_cut(
    graph: Graph, *, slack: float = 1.0, scan: NIScan | None = None
) -> Graph:
    """Certificate at ``k = slack * (min weighted degree)``.

    The minimum degree upper-bounds the min cut, so any ``slack >= 1``
    preserves every minimum cut *exactly* (weight and membership) while
    capping total capacity at ``k (n - 1)`` — on dense graphs this
    shrinks the ``m`` term of the paper's ``Õ(n + m)`` total memory.
    :func:`repro.preprocess.kernelize` runs this as its final
    ``aggressive`` pass (rule R6), after the contraction rules, since
    it reweights edges.
    """
    if slack < 1.0:
        raise ValueError(f"slack < 1 may destroy minimum cuts (got {slack})")
    if graph.num_vertices == 0 or graph.num_edges == 0:
        return graph.copy()
    delta = float(graph.degree_vector().min())
    return ni_certificate(graph, slack * delta, scan=scan)
