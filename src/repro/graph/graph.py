"""Weighted undirected graph with contraction support.

The cut algorithms need exactly these operations, all cheap here:

* iterate edges with weights (numpy-friendly columnar storage),
* weighted degree / cut evaluation,
* quotient by a vertex partition (Karger contraction), merging
  parallel edges by *summing* weights and dropping self-loops — the
  operation Algorithm 1 line 6 performs after "the first k
  contractions",
* edge deletion (APX-SPLIT removes chosen cut edges),
* connected components / induced subgraphs (APX-SPLIT recurses on
  components).

Vertices are arbitrary hashables externally; internally edges are kept
as index triples into a vertex list so numpy can batch-evaluate cuts.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .dsu import DSU

Vertex = Hashable
Edge = tuple[Hashable, Hashable, float]


class Graph:
    """Simple weighted undirected graph (no parallel edges, no loops).

    Parallel edges supplied to the constructor are merged by summing
    their weights — the correct semantics for cut problems, where a
    bundle of parallel edges crosses a cut exactly as their total
    weight.  Self-loops are rejected (they can never cross a cut).
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex] | Edge] = (),
    ):
        self._vertices: list[Vertex] = []
        self._index: dict[Vertex, int] = {}
        self._weights: dict[tuple[int, int], float] = {}
        for v in vertices:
            self.add_vertex(v)
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = e  # type: ignore[misc]
            self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        if v not in self._index:
            self._index[v] = len(self._vertices)
            self._vertices.append(v)

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add (or reinforce) edge ``{u, v}`` with positive weight."""
        if u == v:
            raise ValueError(f"self-loop on {u!r} rejected")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self.add_vertex(u)
        self.add_vertex(v)
        key = self._ekey(u, v)
        self._weights[key] = self._weights.get(key, 0.0) + float(weight)

    def remove_edge(self, u: Vertex, v: Vertex) -> float:
        """Delete edge ``{u, v}`` entirely; returns its weight."""
        return self._weights.pop(self._ekey(u, v))

    def _ekey(self, u: Vertex, v: Vertex) -> tuple[int, int]:
        iu, iv = self._index[u], self._index[v]
        return (iu, iv) if iu < iv else (iv, iu)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._weights)

    def vertices(self) -> list[Vertex]:
        return list(self._vertices)

    def edges(self) -> Iterator[Edge]:
        for (iu, iv), w in self._weights.items():
            yield (self._vertices[iu], self._vertices[iv], w)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        try:
            return self._ekey(u, v) in self._weights
        except KeyError:
            return False

    def weight(self, u: Vertex, v: Vertex) -> float:
        return self._weights[self._ekey(u, v)]

    def total_weight(self) -> float:
        return float(sum(self._weights.values()))

    def neighbors(self, v: Vertex) -> list[Vertex]:
        iv = self._index[v]
        out = []
        for iu, iw in self._weights:
            if iu == iv:
                out.append(self._vertices[iw])
            elif iw == iv:
                out.append(self._vertices[iu])
        return out

    def degree(self, v: Vertex) -> float:
        """Weighted degree of ``v`` (= weight of the singleton cut {v})."""
        iv = self._index[v]
        return float(
            sum(w for (iu, iw), w in self._weights.items() if iv in (iu, iw))
        )

    def adjacency(self) -> dict[Vertex, dict[Vertex, float]]:
        adj: dict[Vertex, dict[Vertex, float]] = {v: {} for v in self._vertices}
        for (iu, iv), w in self._weights.items():
            u, v = self._vertices[iu], self._vertices[iv]
            adj[u][v] = w
            adj[v][u] = w
        return adj

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar edge view ``(us, vs, ws)`` of vertex indices/weights."""
        m = len(self._weights)
        us = np.empty(m, dtype=np.int64)
        vs = np.empty(m, dtype=np.int64)
        ws = np.empty(m, dtype=np.float64)
        for i, ((iu, iv), w) in enumerate(self._weights.items()):
            us[i], vs[i], ws[i] = iu, iv, w
        return us, vs, ws

    def index_of(self, v: Vertex) -> int:
        return self._index[v]

    def fingerprint(self) -> str:
        """Stable content hash of the weighted graph (hex SHA-256).

        Two graphs holding the same vertex set and the same merged
        edge weights hash identically, regardless of the order
        vertices or edges were added and regardless of edge endpoint
        order.  Caveat: the hash covers the weights *as stored* —
        three or more parallel edges merged in different orders can
        sum to floats differing in the last ulp, and such graphs
        (whose cut values genuinely differ by that epsilon) fingerprint
        differently.  Vertices are distinguished by type as well as
        value, so the int ``1`` and the string ``"1"`` never collide.

        Mutating the graph changes the fingerprint, so callers that
        cache by fingerprint (the service layer's :class:`GraphStore`
        and Gomory–Hu oracle) must treat registered graphs as frozen.
        """
        def canon(v: Vertex) -> bytes:
            return f"{type(v).__name__}:{v!r}".encode()

        h = hashlib.sha256()
        h.update(b"repro.graph.v1\x1e")
        for label in sorted(canon(v) for v in self._vertices):
            h.update(label)
            h.update(b"\x1f")
        h.update(b"\x1e")
        records = []
        for (iu, iv), w in self._weights.items():
            a = canon(self._vertices[iu])
            b = canon(self._vertices[iv])
            if b < a:
                a, b = b, a
            records.append((a, b, repr(float(w)).encode()))
        for a, b, wb in sorted(records):
            h.update(a)
            h.update(b"\x1f")
            h.update(b)
            h.update(b"\x1f")
            h.update(wb)
            h.update(b"\x1e")
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Cut evaluation
    # ------------------------------------------------------------------
    def cut_weight(self, side: Iterable[Vertex]) -> float:
        """Total weight crossing the cut ``(side, V \\ side)``.

        Vectorised over the edge arrays; ``side`` may be any iterable of
        vertices present in the graph.
        """
        mask = np.zeros(len(self._vertices), dtype=bool)
        for v in side:
            mask[self._index[v]] = True
        us, vs, ws = self.edge_arrays()
        crossing = mask[us] ^ mask[vs]
        return float(ws[crossing].sum())

    def partition_cut_weight(self, parts: Sequence[Iterable[Vertex]]) -> float:
        """Total weight of edges joining *different* parts of a partition."""
        label = np.full(len(self._vertices), -1, dtype=np.int64)
        for p, part in enumerate(parts):
            for v in part:
                label[self._index[v]] = p
        if (label < 0).any():
            raise ValueError("partition does not cover all vertices")
        us, vs, ws = self.edge_arrays()
        return float(ws[label[us] != label[vs]].sum())

    # ------------------------------------------------------------------
    # Structure operations
    # ------------------------------------------------------------------
    def components(self) -> list[list[Vertex]]:
        """Connected components (each sorted by internal index)."""
        dsu = DSU(range(len(self._vertices)))
        for iu, iv in self._weights:
            dsu.union(iu, iv)
        groups = dsu.groups()
        return [
            [self._vertices[i] for i in sorted(members)]
            for _, members in sorted(groups.items(), key=lambda kv: min(kv[1]))
        ]

    def induced_subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        keep_set = set(keep)
        sub = Graph(vertices=[v for v in self._vertices if v in keep_set])
        for u, v, w in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, w)
        return sub

    def quotient(
        self, representative: Mapping[Vertex, Vertex]
    ) -> tuple["Graph", dict[Vertex, list[Vertex]]]:
        """Contract vertex groups (Karger contraction).

        ``representative`` maps every vertex to its group representative.
        Parallel edges merge by weight sum; intra-group edges vanish.

        Returns the quotient graph and ``blocks``: representative ->
        list of original vertices, so cuts in the quotient can be
        lifted back to cuts of the original graph.
        """
        blocks: dict[Vertex, list[Vertex]] = {}
        for v in self._vertices:
            blocks.setdefault(representative[v], []).append(v)
        q = Graph(vertices=list(blocks.keys()))
        for u, v, w in self.edges():
            ru, rv = representative[u], representative[v]
            if ru != rv:
                q.add_edge(ru, rv, w)
        return q, blocks

    def without_edges(self, cut_edges: Iterable[tuple[Vertex, Vertex]]) -> "Graph":
        """Copy of the graph minus the given edges (APX-SPLIT's G')."""
        removed = set()
        for u, v in cut_edges:
            removed.add(self._ekey(u, v))
        g = Graph(vertices=self._vertices)
        for (iu, iv), w in self._weights.items():
            if (iu, iv) not in removed:
                g.add_edge(self._vertices[iu], self._vertices[iv], w)
        return g

    def copy(self) -> "Graph":
        g = Graph(vertices=self._vertices)
        for (iu, iv), w in self._weights.items():
            g.add_edge(self._vertices[iu], self._vertices[iv], w)
        return g

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
