"""Weighted undirected graph on columnar (array-backed) storage.

The cut algorithms need exactly these operations, all cheap here:

* iterate edges with weights (numpy-friendly columnar storage),
* weighted degree / cut evaluation,
* quotient by a vertex partition (Karger contraction), merging
  parallel edges by *summing* weights and dropping self-loops — the
  operation Algorithm 1 line 6 performs after "the first k
  contractions",
* edge deletion (APX-SPLIT removes chosen cut edges),
* connected components / induced subgraphs (APX-SPLIT recurses on
  components).

Representation
--------------
Vertices are arbitrary hashables externally; internally every vertex
gets a dense integer index (``_index``/``_vertices``) and the edge set
lives in three parallel numpy columns::

    _us[i] < _vs[i]   endpoint indices of edge i (canonical order)
    _ws[i]            merged weight of edge i (parallel adds sum here)

with ``_m`` live rows in capacity-doubled arrays.  Row order is edge
*insertion* order (first ``add_edge`` of a pair fixes its row), which
is a determinism contract: every consumer that draws randomness per
edge (contraction keys) or accumulates floats per edge (degrees, NI
scans, quotient weight merges) sees edges in exactly this order, so
results are bit-for-bit reproducible and independent of the storage
engine.

Derived views are cached and invalidated on mutation:

* a CSR adjacency view (``indptr``/neighbor/weight/edge-id arrays,
  neighbors of each vertex in edge-insertion order) serving
  :meth:`neighbors` and :meth:`Graph.csr`,
* the weighted degree vector (one ``np.bincount`` over the interleaved
  endpoint columns — the same left-to-right accumulation order as a
  per-edge scan, hence bit-identical to it),
* the row-position map ``{(iu, iv) -> row}`` backing point lookups
  (``weight``/``has_edge``) and incremental ``add_edge``.

Any ``add_vertex``/``add_edge``/``remove_edge``/``set_edge_weight``/
``remove_edges`` drops the CSR and degree caches, so mutate-after-read
always returns fresh results.  The batch mutators (``remove_edges``
mask-and-slice, ``set_edge_weight`` row writes, ``add_edge`` appends)
are what the serving layer's ``/mutate`` path bottoms out in — see
:mod:`repro.service.deltas`.

The structural operations (``quotient``, ``induced_subgraph``,
``without_edges``, ``copy``, ``components``, ``cut_weight``) are
vectorized mask-and-slice / segmented-reduction passes over the
columns; they bypass ``add_edge`` entirely via the private
``_from_columns`` constructor while preserving the exact same edge
order, orientation, and float-accumulation order the incremental path
would have produced.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

Vertex = Hashable
Edge = tuple[Hashable, Hashable, float]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


class Graph:
    """Simple weighted undirected graph (no parallel edges, no loops).

    Parallel edges supplied to the constructor are merged by summing
    their weights — the correct semantics for cut problems, where a
    bundle of parallel edges crosses a cut exactly as their total
    weight.  Self-loops are rejected (they can never cross a cut).
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex] | Edge] = (),
    ):
        self._vertices: list[Vertex] = []
        self._index: dict[Vertex, int] = {}
        self._us: np.ndarray = _EMPTY_I.copy()
        self._vs: np.ndarray = _EMPTY_I.copy()
        self._ws: np.ndarray = _EMPTY_F.copy()
        self._m: int = 0
        self._pos: dict[tuple[int, int], int] | None = {}
        self._csr: (
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        self._deg: np.ndarray | None = None
        for v in vertices:
            self.add_vertex(v)
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = e  # type: ignore[misc]
            self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Columnar plumbing
    # ------------------------------------------------------------------
    @classmethod
    def _from_columns(
        cls,
        vertices: Iterable[Vertex],
        us: np.ndarray,
        vs: np.ndarray,
        ws: np.ndarray,
    ) -> "Graph":
        """Wrap prebuilt columns (canonical ``us < vs``, unique pairs,
        positive weights) without touching ``add_edge``.  The bulk
        constructor behind every vectorized structure operation."""
        g = cls.__new__(cls)
        g._vertices = list(vertices)
        g._index = {v: i for i, v in enumerate(g._vertices)}
        g._us = np.ascontiguousarray(us, dtype=np.int64)
        g._vs = np.ascontiguousarray(vs, dtype=np.int64)
        g._ws = np.ascontiguousarray(ws, dtype=np.float64)
        g._m = int(len(g._us))
        g._pos = None  # built lazily on first point lookup / mutation
        g._csr = None
        g._deg = None
        return g

    def _columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live (read-only by convention) views of the edge columns."""
        m = self._m
        return self._us[:m], self._vs[:m], self._ws[:m]

    def _pos_map(self) -> dict[tuple[int, int], int]:
        """Row index of every canonical endpoint pair (lazy)."""
        if self._pos is None:
            us, vs, _ = self._columns()
            self._pos = {
                (iu, iv): i
                for i, (iu, iv) in enumerate(zip(us.tolist(), vs.tolist()))
            }
        return self._pos

    def _invalidate(self) -> None:
        """Drop derived views after a mutation (CSR, degrees)."""
        self._csr = None
        self._deg = None

    def _grow(self) -> None:
        cap = max(4, 2 * len(self._us))
        for name in ("_us", "_vs", "_ws"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self._m] = old[: self._m]
            setattr(self, name, new)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        if v not in self._index:
            self._index[v] = len(self._vertices)
            self._vertices.append(v)
            self._invalidate()  # CSR/degree vectors are sized to n

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add (or reinforce) edge ``{u, v}`` with positive weight."""
        if u == v:
            raise ValueError(f"self-loop on {u!r} rejected")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self.add_vertex(u)
        self.add_vertex(v)
        iu, iv = self._index[u], self._index[v]
        key = (iu, iv) if iu < iv else (iv, iu)
        pos = self._pos_map()
        row = pos.get(key)
        if row is not None:
            self._ws[row] += float(weight)
        else:
            if self._m == len(self._us):
                self._grow()
            m = self._m
            self._us[m], self._vs[m] = key
            self._ws[m] = float(weight)
            pos[key] = m
            self._m = m + 1
        self._invalidate()

    def remove_edge(self, u: Vertex, v: Vertex) -> float:
        """Delete edge ``{u, v}`` entirely; returns its weight.

        Raises :class:`ValueError` naming the endpoints when the edge
        (or either endpoint) is not in the graph.
        """
        row = self._edge_row(u, v)
        if row is None:
            raise ValueError(f"no edge {u!r} -- {v!r} to remove")
        m = self._m
        w = float(self._ws[row])
        self._us[row : m - 1] = self._us[row + 1 : m]
        self._vs[row : m - 1] = self._vs[row + 1 : m]
        self._ws[row : m - 1] = self._ws[row + 1 : m]
        self._m = m - 1
        self._pos = None  # row positions shifted
        self._invalidate()
        return w

    def set_edge_weight(self, u: Vertex, v: Vertex, weight: float) -> float:
        """Set edge ``{u, v}``'s weight outright; returns the old weight.

        Unlike :meth:`add_edge` (which *sums* into an existing row),
        this overwrites — the ``reweight`` op of the serving layer's
        mutation path.  The row keeps its storage position, so edge
        insertion order (the determinism contract above) is untouched.
        Raises :class:`ValueError` naming the endpoints when the edge
        is absent or the weight is not positive (reweight-to-zero is
        canonicalized into a remove by the caller, mirroring the
        zero-weight-drop rule of the file readers).
        """
        if weight <= 0:
            raise ValueError(
                f"edge weight must be positive, got {weight} "
                f"for {u!r} -- {v!r}"
            )
        row = self._edge_row(u, v)
        if row is None:
            raise ValueError(f"no edge {u!r} -- {v!r} to reweight")
        old = float(self._ws[row])
        self._ws[row] = float(weight)
        self._invalidate()
        return old

    def remove_edges(self, pairs: Iterable[tuple[Vertex, Vertex]]) -> list[float]:
        """Delete a batch of edges in one mask-and-slice pass (in place).

        The in-place counterpart of :meth:`without_edges`: surviving
        rows keep their relative order (exactly what sequential
        :meth:`remove_edge` calls would leave), so downstream per-edge
        randomness and float accumulation are unaffected by batching.
        Every named edge must exist — a missing edge (or unknown
        endpoint) raises :class:`ValueError` naming the endpoints
        *before* anything is removed, making the batch atomic.
        Duplicate mentions are tolerated.  Returns the removed weights
        aligned with the input pairs.
        """
        pairs = list(pairs)
        drop = np.zeros(self._m, dtype=bool)
        weights: list[float] = []
        for u, v in pairs:
            row = self._edge_row(u, v)
            if row is None:
                raise ValueError(f"no edge {u!r} -- {v!r} to remove")
            drop[row] = True
            weights.append(float(self._ws[row]))
        if not pairs:
            return weights
        keep = ~drop
        m = self._m
        kept = int(keep.sum())
        if kept != m:
            self._us[:kept] = self._us[:m][keep]
            self._vs[:kept] = self._vs[:m][keep]
            self._ws[:kept] = self._ws[:m][keep]
            self._m = kept
            self._pos = None  # row positions shifted
            self._invalidate()
        return weights

    def _edge_row(self, u: Vertex, v: Vertex) -> int | None:
        """Storage row of edge ``{u, v}``, or None if absent/unknown."""
        iu = self._index.get(u)
        iv = self._index.get(v)
        if iu is None or iv is None:
            return None
        key = (iu, iv) if iu < iv else (iv, iu)
        return self._pos_map().get(key)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return self._m

    def vertices(self) -> list[Vertex]:
        return list(self._vertices)

    def edges(self) -> Iterator[Edge]:
        us, vs, ws = self._columns()
        V = self._vertices
        for iu, iv, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
            yield (V[iu], V[iv], w)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return self._edge_row(u, v) is not None

    def weight(self, u: Vertex, v: Vertex) -> float:
        iu, iv = self._index[u], self._index[v]
        key = (iu, iv) if iu < iv else (iv, iu)
        return float(self._ws[self._pos_map()[key]])

    def total_weight(self) -> float:
        return float(self._ws[: self._m].sum())

    def _interleaved(self) -> tuple[np.ndarray, np.ndarray]:
        """Both edge orientations interleaved (``u0,v0,u1,v1,...``) with
        matching weights — the shared input of the CSR and degree
        builds, whose element order fixes their accumulation order."""
        m = self._m
        us, vs, ws = self._columns()
        ends = np.empty(2 * m, dtype=np.int64)
        wt = np.empty(2 * m, dtype=np.float64)
        ends[0::2], ends[1::2] = us, vs
        wt[0::2] = ws
        wt[1::2] = ws
        return ends, wt

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The cached CSR adjacency view
        ``(indptr, neighbors, weights, edge_ids)``.

        Vertex ``i``'s incident edges occupy the slice
        ``indptr[i]:indptr[i+1]`` of the neighbor/weight/edge-id
        arrays, listed in edge-insertion order (matching
        :meth:`adjacency`); ``edge_ids`` are the rows the edges occupy
        in the columnar storage (aligned with :meth:`edge_arrays`).
        The view is built lazily, cached, and invalidated by any
        mutation — do not mutate the returned arrays.
        """
        if self._csr is None:
            n = len(self._vertices)
            us, vs, _ = self._columns()
            m = self._m
            # Interleaving the two orientations makes the stable sort
            # list each vertex's incident edges in insertion order no
            # matter which endpoint the vertex is.
            src, wt = self._interleaved()
            dst = np.empty(2 * m, dtype=np.int64)
            dst[0::2], dst[1::2] = vs, us
            eid = np.empty(2 * m, dtype=np.int64)
            eid[0::2] = eid[1::2] = np.arange(m, dtype=np.int64)
            order = np.argsort(src, kind="stable")
            counts = np.bincount(src, minlength=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._csr = (indptr, dst[order], wt[order], eid[order])
        return self._csr

    def _degrees(self) -> np.ndarray:
        """Cached weighted-degree vector (bit-identical to a per-edge
        scan: ``bincount`` accumulates in interleaved edge order)."""
        if self._deg is None:
            ends, wt = self._interleaved()
            self._deg = np.bincount(
                ends, weights=wt, minlength=len(self._vertices)
            )
        return self._deg

    def neighbors(self, v: Vertex) -> list[Vertex]:
        iv = self._index[v]
        indptr, nbr, _, _ = self.csr()
        V = self._vertices
        return [V[i] for i in nbr[indptr[iv] : indptr[iv + 1]].tolist()]

    def degree(self, v: Vertex) -> float:
        """Weighted degree of ``v`` (= weight of the singleton cut {v})."""
        return float(self._degrees()[self._index[v]])

    def degree_vector(self) -> np.ndarray:
        """Weighted degrees of all vertices, indexed like
        :meth:`index_of` (a copy of the cached vector)."""
        return self._degrees().copy()

    def adjacency(self) -> dict[Vertex, dict[Vertex, float]]:
        adj: dict[Vertex, dict[Vertex, float]] = {v: {} for v in self._vertices}
        V = self._vertices
        us, vs, ws = self._columns()
        for iu, iv, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
            u, v = V[iu], V[iv]
            adj[u][v] = w
            adj[v][u] = w
        return adj

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar edge view ``(us, vs, ws)`` of vertex indices/weights
        (fresh copies — callers may mutate them freely)."""
        us, vs, ws = self._columns()
        return us.copy(), vs.copy(), ws.copy()

    def index_of(self, v: Vertex) -> int:
        return self._index[v]

    def fingerprint(self) -> str:
        """Stable content hash of the weighted graph (hex SHA-256).

        Two graphs holding the same vertex set and the same merged
        edge weights hash identically, regardless of the order
        vertices or edges were added and regardless of edge endpoint
        order.  Caveat: the hash covers the weights *as stored* —
        three or more parallel edges merged in different orders can
        sum to floats differing in the last ulp, and such graphs
        (whose cut values genuinely differ by that epsilon) fingerprint
        differently.  Vertices are distinguished by type as well as
        value, so the int ``1`` and the string ``"1"`` never collide.

        Mutating the graph changes the fingerprint, so callers that
        cache by fingerprint (the service layer's :class:`GraphStore`
        and Gomory–Hu oracle) must treat registered graphs as frozen.
        """
        def canon(v: Vertex) -> bytes:
            return f"{type(v).__name__}:{v!r}".encode()

        h = hashlib.sha256()
        h.update(b"repro.graph.v1\x1e")
        for label in sorted(canon(v) for v in self._vertices):
            h.update(label)
            h.update(b"\x1f")
        h.update(b"\x1e")
        V = self._vertices
        us, vs, ws = self._columns()
        records = []
        for iu, iv, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
            a = canon(V[iu])
            b = canon(V[iv])
            if b < a:
                a, b = b, a
            records.append((a, b, repr(float(w)).encode()))
        for a, b, wb in sorted(records):
            h.update(a)
            h.update(b"\x1f")
            h.update(b)
            h.update(b"\x1f")
            h.update(wb)
            h.update(b"\x1e")
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Cut evaluation
    # ------------------------------------------------------------------
    def cut_weight(self, side: Iterable[Vertex]) -> float:
        """Total weight crossing the cut ``(side, V \\ side)``.

        Vectorised over the edge columns; ``side`` may be any iterable
        of vertices present in the graph.
        """
        mask = np.zeros(len(self._vertices), dtype=bool)
        index = self._index
        for v in side:
            mask[index[v]] = True
        us, vs, ws = self._columns()
        crossing = mask[us] ^ mask[vs]
        return float(ws[crossing].sum())

    def partition_cut_weight(self, parts: Sequence[Iterable[Vertex]]) -> float:
        """Total weight of edges joining *different* parts of a partition."""
        label = np.full(len(self._vertices), -1, dtype=np.int64)
        index = self._index
        for p, part in enumerate(parts):
            for v in part:
                label[index[v]] = p
        if (label < 0).any():
            raise ValueError("partition does not cover all vertices")
        us, vs, ws = self._columns()
        return float(ws[label[us] != label[vs]].sum())

    # ------------------------------------------------------------------
    # Structure operations
    # ------------------------------------------------------------------
    def _component_roots(self) -> np.ndarray:
        """Min-index root of every vertex's component (array DSU).

        Min-label hooking plus pointer-doubling compression: every
        round hooks each edge's larger root onto the smaller and fully
        compresses, so labels converge to the component's minimum
        vertex index in O(log n) rounds of O(m) vectorized work.
        """
        n = len(self._vertices)
        parent = np.arange(n, dtype=np.int64)
        us, vs, _ = self._columns()
        if self._m == 0 or n == 0:
            return parent
        while True:
            pu, pv = parent[us], parent[vs]
            lo = np.minimum(pu, pv)
            hi = np.maximum(pu, pv)
            live = hi != lo
            if live.any():
                np.minimum.at(parent, hi[live], lo[live])
            while True:
                gp = parent[parent]
                if np.array_equal(gp, parent):
                    break
                parent = gp
            if not live.any():
                return parent

    def components(self) -> list[list[Vertex]]:
        """Connected components (each sorted by internal index)."""
        roots = self._component_roots()
        if len(roots) == 0:
            return []
        order = np.argsort(roots, kind="stable")
        boundaries = np.flatnonzero(np.diff(roots[order])) + 1
        V = self._vertices
        return [
            [V[i] for i in grp.tolist()]
            for grp in np.split(order, boundaries)
        ]

    def induced_subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        keep_set = set(keep)
        n = len(self._vertices)
        vmask = np.fromiter(
            (v in keep_set for v in self._vertices), dtype=bool, count=n
        )
        new_vertices = [v for v, k in zip(self._vertices, vmask.tolist()) if k]
        # Monotonic old->new index remap keeps canonical orientation.
        remap = np.cumsum(vmask, dtype=np.int64) - 1
        us, vs, ws = self._columns()
        emask = vmask[us] & vmask[vs]
        return Graph._from_columns(
            new_vertices, remap[us[emask]], remap[vs[emask]], ws[emask]
        )

    def quotient(
        self, representative: Mapping[Vertex, Vertex]
    ) -> tuple["Graph", dict[Vertex, list[Vertex]]]:
        """Contract vertex groups (Karger contraction).

        ``representative`` maps every vertex to its group representative.
        Parallel edges merge by weight sum; intra-group edges vanish.

        Returns the quotient graph and ``blocks``: representative ->
        list of original vertices, so cuts in the quotient can be
        lifted back to cuts of the original graph.

        Vectorized label-relabel: edges are mapped through the group
        labels, self-loops masked out, parallel bundles identified by
        a unique-pair pass (rows ordered by first occurrence, exactly
        as incremental ``add_edge`` calls would have ordered them) and
        merged with a segmented ``bincount`` sum whose accumulation
        order equals the per-edge insertion order — so quotient weights
        are bit-identical to the scalar implementation's.
        """
        blocks: dict[Vertex, list[Vertex]] = {}
        for v in self._vertices:
            blocks.setdefault(representative[v], []).append(v)
        reps = list(blocks.keys())
        q_index = {r: i for i, r in enumerate(reps)}
        n = len(self._vertices)
        label = np.empty(n, dtype=np.int64)
        index = self._index
        for v in self._vertices:
            label[index[v]] = q_index[representative[v]]

        us, vs, ws = self._columns()
        lu, lv = label[us], label[vs]
        cross = lu != lv
        lu, lv, ww = lu[cross], lv[cross], ws[cross]
        a = np.minimum(lu, lv)
        b = np.maximum(lu, lv)
        pair = a * np.int64(len(reps)) + b
        uniq, first, inv = np.unique(
            pair, return_index=True, return_inverse=True
        )
        # np.unique sorts by pair id; renumber to first-occurrence order
        # so the quotient's edge rows sit exactly where add_edge would
        # have put them.
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[order] = np.arange(len(uniq), dtype=np.int64)
        qws = np.bincount(rank[inv], weights=ww, minlength=len(uniq))
        qus = (uniq // len(reps))[order]
        qvs = (uniq % len(reps))[order]
        return Graph._from_columns(reps, qus, qvs, qws), blocks

    def without_edges(self, cut_edges: Iterable[tuple[Vertex, Vertex]]) -> "Graph":
        """Copy of the graph minus the given edges (APX-SPLIT's G').

        Every named edge must exist; a missing edge (or unknown
        endpoint) raises :class:`ValueError` naming the endpoints.
        Duplicate mentions of the same edge are tolerated.
        """
        drop = np.zeros(self._m, dtype=bool)
        for u, v in cut_edges:
            row = self._edge_row(u, v)
            if row is None:
                raise ValueError(f"no edge {u!r} -- {v!r} to remove")
            drop[row] = True
        keep = ~drop
        us, vs, ws = self._columns()
        return Graph._from_columns(
            self._vertices, us[keep], vs[keep], ws[keep]
        )

    def copy(self) -> "Graph":
        us, vs, ws = self._columns()
        return Graph._from_columns(
            self._vertices, us.copy(), vs.copy(), ws.copy()
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
