"""Extension-based graph file dispatch, shared by the CLI and service.

One table so a new format lands everywhere at once:
``.dimacs``/``.col``/``.max``/``.clq`` as DIMACS, ``.metis``/``.chaco``
as METIS, anything else as the native edge list.
"""

from __future__ import annotations

from pathlib import Path

from .formats import load_dimacs, load_metis, save_dimacs, save_metis
from .graph import Graph
from .io import load_graph, save_graph

_DIMACS_EXTS = {".dimacs", ".col", ".max", ".clq"}
_METIS_EXTS = {".metis", ".chaco"}


def load_any(path: Path | str) -> Graph:
    """Load a graph file, dispatching on extension."""
    path = Path(path)
    ext = path.suffix.lower()
    if ext in _DIMACS_EXTS:
        return load_dimacs(path)
    if ext in _METIS_EXTS:
        return load_metis(path)
    return load_graph(path)


def save_any(graph: Graph, path: Path | str) -> None:
    """Write a graph file, dispatching on extension."""
    path = Path(path)
    ext = path.suffix.lower()
    if ext in _DIMACS_EXTS:
        save_dimacs(graph, path)
    elif ext in _METIS_EXTS:
        save_metis(graph, path)
    else:
        save_graph(graph, path)
