"""Graph substrate: columnar weighted graphs, cuts, union-find,
serialization.

:class:`Graph` stores its edge set in numpy columns with a cached CSR
adjacency view (see the module docstring of :mod:`repro.graph.graph`
for the representation and its invalidation discipline); the structure
operations every solver bottoms out in — quotient, induced subgraph,
components, cut evaluation — are vectorized over those columns, as are
the in-place mutators behind the serving layer's ``/mutate`` path
(``set_edge_weight``, ``remove_edges``).  This package is the bottom
layer of the subsystem map in ``docs/ARCHITECTURE.md``."""

from .cuts import Cut, KCut, kcut_weight, lift_cut, min_singleton_cut, singleton_cut_weight
from .dispatch import load_any, save_any
from .dsu import DSU
from .graph import Graph
from .formats import (
    load_dimacs,
    load_metis,
    read_dimacs,
    read_metis,
    save_dimacs,
    save_metis,
    write_dimacs,
    write_metis,
)
from .io import load_graph, read_edgelist, save_graph, write_edgelist
from .sparsify import (
    NIScan,
    ni_certificate,
    ni_edge_starts,
    ni_forest_partition,
    sparsify_preserving_min_cut,
)

__all__ = [
    "Cut",
    "NIScan",
    "DSU",
    "Graph",
    "KCut",
    "kcut_weight",
    "lift_cut",
    "load_any",
    "load_dimacs",
    "load_graph",
    "load_metis",
    "save_any",
    "min_singleton_cut",
    "ni_certificate",
    "ni_edge_starts",
    "ni_forest_partition",
    "read_dimacs",
    "read_edgelist",
    "read_metis",
    "save_dimacs",
    "save_graph",
    "save_metis",
    "singleton_cut_weight",
    "sparsify_preserving_min_cut",
    "write_dimacs",
    "write_edgelist",
    "write_metis",
]
