"""Tests for exact k-cut, Saran–Vazirani, and the MPC cost model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import sv_approx_bound
from repro.baselines import (
    exact_min_kcut,
    exact_min_kcut_weight,
    gn_mpc_kcut_rounds,
    gn_mpc_min_cut,
    gn_mpc_rounds,
    mpc_level_rounds,
    sv_gomory_hu_kcut,
    sv_split_kcut,
)
from repro.core import ampc_min_cut, schedule_for
from repro.graph import Graph
from repro.workloads import cycle, erdos_renyi, planted_cut, planted_kcut


class TestExactKCut:
    def test_triangle_2cut(self):
        g = Graph(edges=[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 4.0)])
        kc = exact_min_kcut(g, 2)
        assert kc.weight == 3.0  # isolate vertex 1

    def test_k_equals_n(self):
        g = cycle(5)
        assert exact_min_kcut_weight(g, 5) == 5.0

    def test_k_equals_one(self):
        g = cycle(5)
        assert exact_min_kcut_weight(g, 1) == 0.0

    def test_blowup_guard(self):
        with pytest.raises(ValueError):
            exact_min_kcut(cycle(20), 3)

    def test_monotone_in_k(self):
        g = erdos_renyi(8, 0.5, weighted=True, seed=1)
        ws = [exact_min_kcut_weight(g, k) for k in range(1, 6)]
        assert ws == sorted(ws)

    def test_cycle_kcut_is_k_edges(self):
        # cutting a unit cycle into k arcs costs exactly k
        g = cycle(8)
        for k in (2, 3, 4):
            assert exact_min_kcut_weight(g, k) == float(k)


class TestSaranVazirani:
    def test_split_within_2_minus_2k(self):
        for seed in range(4):
            g = erdos_renyi(9, 0.5, weighted=True, seed=seed)
            for k in (2, 3):
                exact = exact_min_kcut_weight(g, k)
                sv = sv_split_kcut(g, k)
                assert sv.weight <= sv_approx_bound(k) * exact + 1e-9

    def test_gomory_hu_variant_within_2_minus_2k(self):
        for seed in range(4):
            g = erdos_renyi(9, 0.5, weighted=True, seed=10 + seed)
            for k in (2, 3):
                exact = exact_min_kcut_weight(g, k)
                sv = sv_gomory_hu_kcut(g, k)
                assert sv.weight <= sv_approx_bound(k) * exact + 1e-9

    def test_split_k2_is_exact_min_cut(self):
        from repro.baselines import exact_min_cut_weight

        g = erdos_renyi(12, 0.4, weighted=True, seed=3)
        sv = sv_split_kcut(g, 2)
        assert abs(sv.weight - exact_min_cut_weight(g)) < 1e-9

    def test_partition_shape(self):
        inst = planted_kcut(20, 4, seed=4)
        sv = sv_split_kcut(inst.graph, 4)
        assert sv.k == 4


class TestMPCCostModel:
    def test_level_rounds_logarithmic(self):
        assert mpc_level_rounds(1024) >= 2 * 10
        assert mpc_level_rounds(2) >= 2

    def test_total_rounds_sum_levels(self):
        s = schedule_for(1000, eps=0.5)
        assert gn_mpc_rounds(s) == sum(
            mpc_level_rounds(l.instance_size) for l in s.levels
        ) + 1

    def test_mpc_cut_equals_ampc_cut(self):
        g = planted_cut(48, seed=5).graph
        a = ampc_min_cut(g, seed=5)
        m = gn_mpc_min_cut(g, seed=5)
        assert abs(a.weight - m.weight) < 1e-9

    def test_mpc_rounds_exceed_ampc(self):
        g = planted_cut(128, seed=6).graph
        a = ampc_min_cut(g, seed=6, max_copies=2)
        m = gn_mpc_min_cut(g, seed=6, max_copies=2)
        assert m.ledger.rounds > a.ledger.rounds

    def test_gap_widens_with_n(self):
        """The log n factor: MPC/AMPC round ratio must grow with n."""
        ratios = []
        for n in (64, 1024):
            s = schedule_for(n, eps=0.5)
            from repro.analysis.theory import loglog_rounds_envelope

            ratios.append(gn_mpc_rounds(s) / loglog_rounds_envelope(n, 0.5))
        assert ratios[1] > ratios[0]

    def test_kcut_rounds_linear_in_k(self):
        r2 = gn_mpc_kcut_rounds(100, 2)
        r5 = gn_mpc_kcut_rounds(100, 5)
        assert r5 == 4 * r2  # (k-1) iterations each of equal cost
