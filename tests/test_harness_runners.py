"""Integration tests for the experiment runners added with E12–E15.

The benches run these at full size; here they run at the smallest
meaningful scale so the *invariants* (not the timings) are covered by
the plain test suite — a broken runner should fail `pytest tests/`,
not only the benchmark session.
"""

import pytest

from repro.analysis.harness import (
    run_classic_datasets,
    run_model_separation,
    run_quality_grid,
    run_sparsification_ablation,
)


class TestSparsificationRunner:
    def test_certificate_never_moves_the_min_cut(self):
        report = run_sparsification_ablation(sizes=[48, 64])
        assert len(report.rows) == 2
        for n, m, m_cert, exact, exact_cert, w, w_cert, sp, sp_cert in report.rows:
            assert exact == exact_cert
            assert m_cert <= m
            assert sp_cert <= sp
        assert not report.notes

    def test_report_renders(self):
        report = run_sparsification_ablation(sizes=[48])
        text = report.render()
        assert "E12" in text and "m_cert" in text


class TestQualityGridRunner:
    def test_matula_rows_deterministically_bounded(self):
        report = run_quality_grid(trials=1)
        assert len(report.rows) == 4
        for name, n, exact, matula, m_ratio, ampc, a_ratio in report.rows:
            assert exact - 1e-9 <= matula <= 2.5 * exact + 1e-9
            assert ampc >= exact - 1e-9
        assert not report.notes

    def test_eps_threaded_through(self):
        report = run_quality_grid(eps=0.9, trials=1)
        assert "0.90" in report.experiment


class TestModelSeparationRunner:
    def test_shapes(self):
        # NOTE 32 -> 128, not adjacent sizes: at tiny n the machines are
        # smaller too, so relay trees are *deeper* and rounds/iteration
        # higher — monotonicity in n holds at fixed machine capacity or
        # across larger gaps (the bench asserts 32/128/512).
        report = run_model_separation(sizes=[32, 128])
        rows = {(r[0], r[1]): r for r in report.rows}
        # reduce at parity (both tiny)
        assert rows[("reduce", 32)][3] <= 8
        # AMPC flat across sizes for the separated workloads
        assert rows[("listrank", 32)][2] == rows[("listrank", 128)][2]
        assert rows[("1v2cycle", 32)][2] == rows[("1v2cycle", 128)][2]
        # MPC grows
        assert rows[("listrank", 128)][3] >= rows[("listrank", 32)][3]
        assert rows[("1v2cycle", 128)][3] > rows[("1v2cycle", 32)][3]

    def test_charged_row_documented(self):
        report = run_model_separation(sizes=[32])
        assert any("charged" in note for note in report.notes)


class TestClassicRunner:
    def test_both_datasets_present_and_bounded(self):
        report = run_classic_datasets()
        names = [r[0] for r in report.rows]
        assert names == ["karate", "dolphins"]
        for name, n, m, exact, ampc, matula, kcut2, gh2 in report.rows:
            assert exact - 1e-9 <= ampc <= 2.5 * exact + 1e-9
            assert kcut2 >= exact - 1e-9
        assert not report.notes
