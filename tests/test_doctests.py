"""Doctest leg: the examples in the docs must actually run.

Every public module of :mod:`repro.service` and :mod:`repro.preprocess`
is swept with :func:`doctest.testmod`; docstring examples are part of
the documented contract (the satellite of the PR 5 docs overhaul), so a
drifting example fails tier-1 the same way a drifting assertion would.
The CI docs leg additionally runs ``pytest --doctest-modules`` over the
same trees.
"""

import doctest
import importlib

import pytest

MODULES = [
    "repro.obs",
    "repro.obs.loadgen",
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.preprocess",
    "repro.preprocess.kernel",
    "repro.service",
    "repro.service.cache",
    "repro.service.deltas",
    "repro.service.executor",
    "repro.service.frontend",
    "repro.service.http",
    "repro.service.oracle",
    "repro.service.service",
    "repro.service.store",
]

#: modules that must carry at least one runnable example — the
#: docstring-audit satellite's enforcement hook (purely wiring modules
#: like http.py may legitimately have none)
MUST_HAVE_EXAMPLES = {
    "repro.obs.loadgen",
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.preprocess.kernel",
    "repro.service.cache",
    "repro.service.deltas",
    "repro.service.executor",
    "repro.service.frontend",
    "repro.service.service",
    "repro.service.store",
}


@pytest.mark.parametrize("name", MODULES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{name}: {result.failed} doctest failures"
    if name in MUST_HAVE_EXAMPLES:
        assert result.attempted > 0, (
            f"{name} is expected to carry runnable docstring examples"
        )
