"""Tests for workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import exact_min_cut_weight
from repro.workloads import (
    balanced_binary,
    barbell,
    broom,
    caterpillar,
    cycle,
    erdos_renyi,
    grid,
    paper_figure1_tree,
    path_tree,
    planted_cut,
    planted_kcut,
    power_law,
    random_regular_ish,
    random_tree,
    star_tree,
    two_cycles,
    wheel,
)


class TestPlantedCut:
    def test_planted_weight_matches_side(self):
        inst = planted_cut(40, seed=1)
        assert abs(inst.graph.cut_weight(inst.planted_side) - inst.planted_weight) < 1e-9

    def test_planted_is_the_min_cut(self):
        inst = planted_cut(32, cross_edges=2, seed=2)
        assert abs(exact_min_cut_weight(inst.graph) - inst.planted_weight) < 1e-9

    def test_connected(self):
        inst = planted_cut(30, seed=3)
        assert len(inst.graph.components()) == 1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            planted_cut(3)

    def test_cross_weight_scales(self):
        a = planted_cut(24, cross_edges=3, cross_weight=1.0, seed=4)
        b = planted_cut(24, cross_edges=3, cross_weight=2.0, seed=4)
        assert b.planted_weight == 2 * a.planted_weight


class TestPlantedKCut:
    def test_parts_partition(self):
        inst = planted_kcut(30, 3, seed=1)
        union = set().union(*inst.parts)
        assert union == set(inst.graph.vertices())
        assert sum(map(len, inst.parts)) == 30

    def test_weight_matches(self):
        inst = planted_kcut(24, 4, seed=2)
        assert abs(
            inst.graph.partition_cut_weight(inst.parts) - inst.planted_weight
        ) < 1e-9

    def test_connected(self):
        inst = planted_kcut(24, 3, seed=3)
        assert len(inst.graph.components()) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            planted_kcut(5, 3)
        with pytest.raises(ValueError):
            planted_kcut(20, 1)


class TestClassicFamilies:
    def test_cycle_min_cut_two(self):
        g = cycle(12)
        assert exact_min_cut_weight(g) == 2.0

    def test_two_cycles_disconnected(self):
        g = two_cycles(12)
        assert len(g.components()) == 2

    def test_two_cycles_rejects_odd(self):
        with pytest.raises(ValueError):
            two_cycles(7)

    def test_wheel_connected_and_sized(self):
        g = wheel(10)
        assert g.num_vertices == 10
        assert len(g.components()) == 1
        assert g.degree(0) >= 9  # hub

    def test_grid_shape(self):
        g = grid(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_barbell_bridge_is_min_cut(self):
        inst = barbell(12, bridge_weight=0.5)
        assert exact_min_cut_weight(inst.graph) == 0.5

    def test_er_connected(self):
        g = erdos_renyi(40, 0.05, seed=5)
        assert len(g.components()) == 1

    def test_regular_ish_degrees(self):
        g = random_regular_ish(30, 4, seed=6)
        assert len(g.components()) == 1
        degs = [len(g.neighbors(v)) for v in g.vertices()]
        assert max(degs) <= 4

    def test_power_law_connected(self):
        g = power_law(60, seed=7)
        assert len(g.components()) == 1


class TestTreeFamilies:
    @pytest.mark.parametrize(
        "maker,arg",
        [
            (path_tree, 20),
            (star_tree, 20),
            (caterpillar, 20),
            (broom, 20),
            (random_tree, 20),
        ],
    )
    def test_tree_edge_count(self, maker, arg):
        vs, es = maker(arg)
        assert len(es) == len(vs) - 1

    def test_balanced_binary_size(self):
        vs, es = balanced_binary(4)
        assert len(vs) == 31
        assert len(es) == 30

    def test_paper_tree_valid(self):
        vs, es = paper_figure1_tree()
        assert len(es) == len(vs) - 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 200), st.integers(0, 1000))
    def test_property_random_tree_is_tree(self, n, seed):
        vs, es = random_tree(n, seed=seed)
        assert len(vs) == n
        assert len(es) == n - 1
        from repro.graph import DSU

        d = DSU(vs)
        for u, v in es:
            assert d.union(u, v)  # no cycles
        assert d.num_sets == 1  # connected


class TestLeafSpine:
    def test_shape(self):
        from repro.workloads import leaf_spine

        g = leaf_spine(spines=4, leaves=8)
        assert g.num_vertices == 12
        assert g.num_edges == 32  # complete bipartite

    def test_min_cut_is_weakest_leaf(self):
        from repro.baselines import exact_min_cut_weight
        from repro.workloads import leaf_spine

        g = leaf_spine(spines=4, leaves=6, uplink=40.0,
                       degraded_leaf=2, degraded_factor=0.1)
        # degraded leaf's total uplink = 4 * 4.0 = 16 < any other cut
        assert exact_min_cut_weight(g) == pytest.approx(16.0)
        assert g.cut_weight([("leaf", 2)]) == pytest.approx(16.0)

    def test_healthy_fabric_min_cut(self):
        from repro.baselines import exact_min_cut_weight
        from repro.workloads import leaf_spine

        g = leaf_spine(spines=3, leaves=5, uplink=10.0)
        # cheapest isolation: one spine (5 links) vs one leaf (3 links)
        assert exact_min_cut_weight(g) == pytest.approx(30.0)

    def test_validation(self):
        from repro.workloads import leaf_spine

        with pytest.raises(ValueError):
            leaf_spine(spines=0, leaves=3)
        with pytest.raises(ValueError):
            leaf_spine(degraded_leaf=99)
        with pytest.raises(ValueError):
            leaf_spine(degraded_factor=0.0)
