"""Shared fixtures for the tier-1 suite.

The AMPC runtime resolves its round backend from the ``AMPC_BACKEND``
environment variable when nothing more specific is configured
(:func:`repro.ampc.backends.resolve_backend`), so exporting it runs the
*entire* suite under that backend — the CI matrix does exactly that for
``serial``, ``thread`` and ``process``.  The header line below makes a
log unambiguous about which backend a run exercised.
"""

from __future__ import annotations

import json
import os

import pytest


def _backend_under_test() -> str:
    return os.environ.get("AMPC_BACKEND", "").strip().lower() or "serial"


def pytest_report_header(config) -> str:
    return f"ampc round backend: {_backend_under_test()} (AMPC_BACKEND)"


@pytest.fixture(scope="session")
def ampc_backend() -> str:
    """The round backend this suite run executes AMPC rounds under."""
    return _backend_under_test()


@pytest.fixture(scope="session")
def kernel_shrinkage():
    """Sink for kernelization records, dumped as a JSON artifact.

    ``tests/test_preprocess.py`` appends one record per (instance,
    level, solver) differential comparison.  When ``KERNEL_SHRINKAGE``
    names a path, the records are written there at session end — CI
    uploads that file as the kernel-shrinkage artifact.
    """
    records: list[dict] = []
    yield records
    path = os.environ.get("KERNEL_SHRINKAGE")
    if path and records:
        shrinks = [r["vertex_shrink"] for r in records]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "suite_backend": _backend_under_test(),
                    "comparisons": records,
                    "all_identical": all(r["identical"] for r in records),
                    "max_vertex_shrink": max(shrinks),
                    "mean_vertex_shrink": sum(shrinks) / len(shrinks),
                },
                fh,
                indent=2,
                sort_keys=True,
            )


@pytest.fixture(scope="session")
def dynamic_stream_summary():
    """Sink for streaming differential records, dumped as a JSON artifact.

    ``tests/test_dynamic_stream.py`` appends one record per scripted or
    fuzzed mutation/query interleaving, carrying the repair-vs-rebuild
    counters the warm path reported.  When ``DYNAMIC_STREAM_SUMMARY``
    names a path, the records are written there at session end — CI
    uploads that file as the dynamic-stream artifact.
    """
    records: list[dict] = []
    yield records
    path = os.environ.get("DYNAMIC_STREAM_SUMMARY")
    if path and records:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "suite_backend": _backend_under_test(),
                    "streams": records,
                    "all_identical": all(r["identical"] for r in records),
                    "total_steps": sum(r["steps"] for r in records),
                    "total_repairs": sum(r["repairs"] for r in records),
                    "total_repair_fallbacks": sum(
                        r["repair_fallbacks"] for r in records
                    ),
                },
                fh,
                indent=2,
                sort_keys=True,
            )


@pytest.fixture(scope="session")
def scenario_summary():
    """Sink for scenario-suite records, dumped as a JSON artifact.

    ``tests/test_metamorphic_scenarios.py`` appends one record per
    gomoryhu/sparsestcut property check (matrix size, approximation
    ratio, backend identity).  When ``SCENARIO_SUMMARY`` names a path,
    the records are written there at session end — CI uploads that
    file as the scenario-leg artifact.
    """
    records: list[dict] = []
    yield records
    path = os.environ.get("SCENARIO_SUMMARY")
    if path and records:
        ratios = [r["ratio"] for r in records if "ratio" in r]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "suite_backend": _backend_under_test(),
                    "checks": records,
                    "all_ok": all(r["ok"] for r in records),
                    "max_sparsest_ratio": max(ratios) if ratios else None,
                },
                fh,
                indent=2,
                sort_keys=True,
            )


@pytest.fixture(scope="session")
def equivalence_summary():
    """Sink for backend-equivalence records, dumped as a JSON artifact.

    ``tests/test_backend_equivalence.py`` appends one record per
    (workload, backend) comparison.  When ``EQUIVALENCE_SUMMARY`` names
    a path, the records are written there at session end — CI uploads
    that file as the equivalence-harness artifact.
    """
    records: list[dict] = []
    yield records
    path = os.environ.get("EQUIVALENCE_SUMMARY")
    if path and records:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "suite_backend": _backend_under_test(),
                    "comparisons": records,
                    "all_identical": all(r["identical"] for r in records),
                },
                fh,
                indent=2,
                sort_keys=True,
            )
