"""Tests for the naive contraction-replay oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import draw_contraction_keys, replay_min_singleton
from repro.core.bags import boundary_profile
from repro.graph import Graph
from repro.workloads import barbell, cycle, erdos_renyi, planted_cut


class TestReplay:
    def test_cycle_min_singleton_is_two(self):
        g = cycle(10)
        keys = draw_contraction_keys(g, seed=0)
        res = replay_min_singleton(g, keys)
        assert res.min_singleton_weight == 2.0

    def test_barbell_finds_bridge(self):
        inst = barbell(12, bridge_weight=0.5)
        keys = draw_contraction_keys(inst.graph, seed=1)
        res = replay_min_singleton(inst.graph, keys)
        # the bridge cut is a bag boundary whenever one clique fully
        # contracts before crossing — overwhelmingly likely; at minimum
        # the replay can never be *below* the true min cut
        assert res.min_singleton_weight >= inst.planted_weight - 1e-9

    def test_replay_never_below_min_degree_bound(self):
        g = erdos_renyi(20, 0.3, weighted=True, seed=2)
        keys = draw_contraction_keys(g, seed=2)
        res = replay_min_singleton(g, keys)
        from repro.baselines import exact_min_cut_weight

        assert res.min_singleton_weight >= exact_min_cut_weight(g) - 1e-9

    def test_at_most_min_degree(self):
        g = erdos_renyi(20, 0.3, weighted=True, seed=3)
        keys = draw_contraction_keys(g, seed=3)
        res = replay_min_singleton(g, keys)
        min_deg = min(g.degree(v) for v in g.vertices())
        assert res.min_singleton_weight <= min_deg + 1e-9

    def test_triangle_min_is_lightest_boundary(self):
        # degrees: deg(0)=6, deg(1)=6, deg(2)=10; two-vertex bags have
        # boundaries {0,1}->10, {1,2}->6, {0,2}->6.  Whatever the
        # contraction order, the minimum over all bags is 6.
        g = Graph(edges=[(0, 1, 1.0), (1, 2, 5.0), (2, 0, 5.0)])
        for seed in range(6):
            keys = draw_contraction_keys(g, seed=seed)
            res = replay_min_singleton(g, keys)
            assert res.min_singleton_weight == 6.0

    def test_trace_starts_at_time_zero(self):
        g = cycle(6)
        keys = draw_contraction_keys(g, seed=5)
        res = replay_min_singleton(g, keys)
        assert res.trace[0][0] == 0

    def test_needs_two_vertices(self):
        g = Graph(vertices=[0])
        with pytest.raises(ValueError):
            replay_min_singleton(g, draw_contraction_keys(g))


class TestBoundaryProfile:
    def test_profile_starts_at_degree(self):
        g = cycle(8)
        keys = draw_contraction_keys(g, seed=6)
        prof = boundary_profile(g, keys, 0)
        assert prof[0] == (0, 2.0)

    def test_profile_ends_at_zero(self):
        g = cycle(8)
        keys = draw_contraction_keys(g, seed=7)
        prof = boundary_profile(g, keys, 0)
        assert prof[-1][1] == 0.0  # bag = V at the last tree key

    def test_profile_matches_replay_minimum(self):
        """min over vertices of the profile minimum (excluding the full
        bag) equals the replay result."""
        g = erdos_renyi(10, 0.4, weighted=True, seed=8)
        keys = draw_contraction_keys(g, seed=8)
        res = replay_min_singleton(g, keys)
        best = float("inf")
        for v in g.vertices():
            for t, w in boundary_profile(g, keys, v):
                from repro.core import bag_at

                if len(bag_at(g, keys, v, t)) < g.num_vertices:
                    best = min(best, w)
        assert abs(best - res.min_singleton_weight) < 1e-9
