"""Tests for heavy-path RMQ / tree path aggregation (Theorem 4)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import TreePathAggregator, root_tree
from repro.workloads import balanced_binary, path_tree, random_tree, star_tree


def build(spec, seed=0, mode="max"):
    vs, es = spec
    t = root_tree(vs, es)
    rng = random.Random(seed)
    w = {(c, p): rng.randint(1, 10_000) for c, p in t.edges()}
    return t, w, TreePathAggregator(t, w, mode=mode)


class TestCorrectness:
    @pytest.mark.parametrize(
        "spec",
        [path_tree(60), star_tree(40), balanced_binary(5), random_tree(90, seed=1)],
        ids=["path", "star", "balanced", "random"],
    )
    def test_matches_naive_max(self, spec):
        t, w, agg = build(spec, seed=3)
        rng = random.Random(7)
        vs = list(t.parent)
        for _ in range(150):
            u, v = rng.sample(vs, 2)
            assert agg.path_aggregate(u, v) == agg.path_max_naive(u, v)

    def test_min_mode(self):
        t, w, agg = build(random_tree(70, seed=2), seed=4, mode="min")
        rng = random.Random(8)
        vs = list(t.parent)
        for _ in range(100):
            u, v = rng.sample(vs, 2)
            assert agg.path_aggregate(u, v) == agg.path_max_naive(u, v)

    def test_adjacent_pair_is_edge_weight(self):
        t, w, agg = build(path_tree(10))
        assert agg.path_aggregate(3, 4) == w[(4, 3)]

    def test_same_vertex_rejected(self):
        _, _, agg = build(path_tree(5))
        with pytest.raises(ValueError):
            agg.path_aggregate(2, 2)

    def test_invalid_mode_rejected(self):
        vs, es = path_tree(4)
        t = root_tree(vs, es)
        with pytest.raises(ValueError):
            TreePathAggregator(t, {}, mode="sum")


class TestQueryComplexity:
    def test_segments_logarithmic(self):
        # Theorem 4: O(log n) global-memory queries per path query
        t, w, agg = build(random_tree(500, seed=5), seed=6)
        rng = random.Random(9)
        vs = list(t.parent)
        queries = 400
        for _ in range(queries):
            u, v = rng.sample(vs, 2)
            agg.path_aggregate(u, v)
        per_query = agg.query_count / queries
        assert per_query <= 3 * math.log2(500)

    def test_path_graph_single_segment(self):
        t, w, agg = build(path_tree(100))
        agg.path_aggregate(10, 90)
        assert agg.query_count == 1  # both on one heavy path


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 120), st.integers(0, 50), st.integers(0, 50))
def test_property_differential_vs_naive(n, tree_seed, weight_seed):
    vs, es = random_tree(n, seed=tree_seed)
    t = root_tree(vs, es)
    rng = random.Random(weight_seed)
    w = {(c, p): rng.randint(1, 100) for c, p in t.edges()}
    agg = TreePathAggregator(t, w)
    sampler = random.Random(weight_seed + 1)
    for _ in range(min(30, n)):
        u, v = sampler.sample(vs, 2)
        assert agg.path_aggregate(u, v) == agg.path_max_naive(u, v)
