"""Tests for the distributed sample sort."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import AMPCConfig, RoundLedger
from repro.ampc.primitives import ampc_sort

CFG = AMPCConfig(n_input=400, eps=0.5)


class TestCorrectness:
    def test_sorts_random_ints(self):
        rng = random.Random(0)
        xs = [rng.randint(-1000, 1000) for _ in range(400)]
        assert ampc_sort(CFG, xs) == sorted(xs)

    def test_sorts_with_duplicates(self):
        xs = [3, 1, 3, 1, 2] * 80
        assert ampc_sort(CFG, xs) == sorted(xs)

    def test_sorts_already_sorted(self):
        xs = list(range(300))
        assert ampc_sort(CFG, xs) == xs

    def test_sorts_reverse_sorted(self):
        xs = list(range(300, 0, -1))
        assert ampc_sort(CFG, xs) == sorted(xs)

    def test_sorts_all_equal(self):
        assert ampc_sort(CFG, [7] * 200) == [7] * 200

    def test_key_function(self):
        xs = [(i % 7, i) for i in range(200)]
        out = ampc_sort(CFG, xs, key=lambda p: p[0])
        assert [k for k, _ in out] == sorted(k for k, _ in xs)

    def test_stability_irrelevant_but_multiset_preserved(self):
        rng = random.Random(1)
        xs = [rng.randint(0, 5) for _ in range(333)]
        assert sorted(ampc_sort(CFG, xs)) == sorted(xs)

    def test_empty(self):
        assert ampc_sort(CFG, []) == []

    def test_singleton(self):
        assert ampc_sort(CFG, [42]) == [42]

    def test_tuples_sort_by_natural_order(self):
        rng = random.Random(2)
        xs = [(rng.randint(0, 9), rng.randint(0, 9)) for _ in range(250)]
        assert ampc_sort(CFG, xs) == sorted(xs)


class TestModelCosts:
    def test_constant_rounds(self):
        led = RoundLedger()
        ampc_sort(CFG, list(range(400, 0, -1)), ledger=led)
        # five PSRS rounds + at most O(1/eps) merge-tree levels
        assert 5 <= led.rounds <= 8

    def test_rounds_independent_of_n(self):
        rounds = []
        for n in [64, 256, 1024]:
            cfg = AMPCConfig(n_input=n, eps=0.5)
            led = RoundLedger()
            ampc_sort(cfg, list(range(n, 0, -1)), ledger=led)
            rounds.append(led.rounds)
        assert max(rounds) - min(rounds) <= 1  # constant, not log n

    def test_local_memory_within_budget(self):
        cfg = AMPCConfig(n_input=2000, eps=0.5)
        led = RoundLedger()
        rng = random.Random(3)
        ampc_sort(cfg, [rng.random() for _ in range(2000)], ledger=led)
        assert led.local_peak <= cfg.local_memory_words

    def test_queries_recorded(self):
        led = RoundLedger()
        ampc_sort(CFG, list(range(100)), ledger=led)
        assert led.queries > 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=300))
def test_property_matches_builtin_sort(xs):
    assert ampc_sort(CFG, xs) == sorted(xs)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.text(max_size=3)), max_size=150
    )
)
def test_property_key_sort_permutation(xs):
    out = ampc_sort(CFG, xs, key=lambda p: p[0])
    assert sorted(map(repr, out)) == sorted(map(repr, xs))
    assert [p[0] for p in out] == sorted(p[0] for p in xs)
