"""Differential harness: columnar Graph vs a dict-based reference.

The PR-4 refactor moved :class:`repro.graph.Graph` from a
``dict[(int, int), float]`` edge map onto columnar numpy storage with
vectorized structure operations.  The public contract is that nothing
observable changed — same fingerprints, same edge iteration order,
same float accumulation order, same quotient blocks.  This suite keeps
a minimal dict-backed ``ReferenceGraph`` (the seed implementation's
semantics, verbatim) and replays the shared corpus plus randomized
mutate/query interleavings against both, asserting bit-identical
results throughout.
"""

import random

import pytest

from cutcorpus import connected_corpus, disconnected_corpus, relabel

from repro.graph import Graph


class ReferenceGraph:
    """The seed Graph's storage semantics: dict keyed by index pairs.

    Only the operations the differential harness compares are
    implemented; every accumulation mirrors the seed implementation's
    order so float results are bit-comparable.
    """

    def __init__(self, vertices=(), edges=()):
        self._vertices = []
        self._index = {}
        self._weights = {}
        for v in vertices:
            self.add_vertex(v)
        for e in edges:
            if len(e) == 2:
                u, v = e
                w = 1.0
            else:
                u, v, w = e
            self.add_edge(u, v, w)

    def add_vertex(self, v):
        if v not in self._index:
            self._index[v] = len(self._vertices)
            self._vertices.append(v)

    def add_edge(self, u, v, weight=1.0):
        if u == v or weight <= 0:
            raise ValueError("bad edge")
        self.add_vertex(u)
        self.add_vertex(v)
        iu, iv = self._index[u], self._index[v]
        key = (iu, iv) if iu < iv else (iv, iu)
        self._weights[key] = self._weights.get(key, 0.0) + float(weight)

    def remove_edge(self, u, v):
        iu, iv = self._index[u], self._index[v]
        key = (iu, iv) if iu < iv else (iv, iu)
        return self._weights.pop(key)

    @property
    def num_edges(self):
        return len(self._weights)

    def vertices(self):
        return list(self._vertices)

    def edges(self):
        for (iu, iv), w in self._weights.items():
            yield (self._vertices[iu], self._vertices[iv], w)

    def neighbors(self, v):
        iv = self._index[v]
        out = []
        for iu, iw in self._weights:
            if iu == iv:
                out.append(self._vertices[iw])
            elif iw == iv:
                out.append(self._vertices[iu])
        return out

    def degree(self, v):
        iv = self._index[v]
        return float(
            sum(w for (iu, iw), w in self._weights.items() if iv in (iu, iw))
        )

    def cut_weight(self, side):
        side = set(side)
        total = 0.0
        for u, v, w in self.edges():
            if (u in side) != (v in side):
                total += w
        return total

    def components(self):
        parent = {v: v for v in self._vertices}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for iu, iv in self._weights:
            u, v = self._vertices[iu], self._vertices[iv]
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[rv] = ru
        groups = {}
        for v in self._vertices:
            groups.setdefault(find(v), []).append(v)
        index = self._index
        comps = [sorted(g, key=index.__getitem__) for g in groups.values()]
        comps.sort(key=lambda g: index[g[0]])
        return comps

    def induced_subgraph(self, keep):
        keep = set(keep)
        sub = ReferenceGraph(vertices=[v for v in self._vertices if v in keep])
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub

    def quotient(self, representative):
        blocks = {}
        for v in self._vertices:
            blocks.setdefault(representative[v], []).append(v)
        q = ReferenceGraph(vertices=list(blocks.keys()))
        for u, v, w in self.edges():
            ru, rv = representative[u], representative[v]
            if ru != rv:
                q.add_edge(ru, rv, w)
        return q, blocks


CORPUS = connected_corpus() + disconnected_corpus()
CORPUS_IDS = [name for name, _ in CORPUS]


def _reference_of(graph: Graph) -> ReferenceGraph:
    ref = ReferenceGraph(vertices=graph.vertices())
    for u, v, w in graph.edges():
        ref.add_edge(u, v, w)
    return ref


def assert_same_graph(g: Graph, ref: ReferenceGraph):
    """Bit-level equality of everything observable."""
    assert g.vertices() == ref.vertices()
    assert g.num_edges == ref.num_edges
    assert list(g.edges()) == list(ref.edges())
    for v in g.vertices():
        assert g.degree(v) == ref.degree(v)
        assert g.neighbors(v) == ref.neighbors(v)
    # fingerprint of the columnar graph matches a Graph rebuilt from
    # the reference's merged weights (same stored floats => same hash)
    rebuilt = Graph(vertices=ref.vertices(), edges=list(ref.edges()))
    assert g.fingerprint() == rebuilt.fingerprint()


@pytest.mark.parametrize("name,graph", CORPUS, ids=CORPUS_IDS)
def test_corpus_graphs_match_reference(name, graph):
    assert_same_graph(graph, _reference_of(graph))


@pytest.mark.parametrize("name,graph", CORPUS, ids=CORPUS_IDS)
def test_cut_weight_matches_reference(name, graph):
    ref = _reference_of(graph)
    vs = graph.vertices()
    for k in range(1, len(vs)):
        assert graph.cut_weight(vs[:k]) == ref.cut_weight(vs[:k])


@pytest.mark.parametrize("name,graph", CORPUS, ids=CORPUS_IDS)
def test_components_match_reference(name, graph):
    assert graph.components() == _reference_of(graph).components()


@pytest.mark.parametrize("name,graph", CORPUS, ids=CORPUS_IDS)
def test_induced_subgraph_matches_reference(name, graph):
    ref = _reference_of(graph)
    vs = graph.vertices()
    for keep in (vs[::2], vs[: max(1, len(vs) // 2)], vs):
        sub = graph.induced_subgraph(keep)
        rsub = ref.induced_subgraph(keep)
        assert sub.vertices() == rsub.vertices()
        assert list(sub.edges()) == list(rsub.edges())


@pytest.mark.parametrize("name,graph", CORPUS, ids=CORPUS_IDS)
@pytest.mark.parametrize("groups", [2, 3, 7])
def test_quotient_matches_reference(name, graph, groups):
    ref = _reference_of(graph)
    vs = graph.vertices()
    rep = {v: vs[i % min(groups, len(vs))] for i, v in enumerate(vs)}
    q, blocks = graph.quotient(rep)
    rq, rblocks = ref.quotient(rep)
    assert q.vertices() == rq.vertices()
    assert list(q.edges()) == list(rq.edges())  # order AND merged floats
    assert blocks == rblocks


@pytest.mark.parametrize("name,graph", CORPUS, ids=CORPUS_IDS)
def test_relabeled_corpus_matches_reference(name, graph):
    relabeled, _ = relabel(graph)
    assert_same_graph(relabeled, _reference_of(relabeled))


@pytest.mark.parametrize("seed", range(8))
def test_randomized_mutate_query_interleaving(seed):
    """Random add/remove/query traffic stays bit-identical throughout.

    Exercises the CSR/degree cache invalidation discipline: queries
    interleave with mutations, so any stale cached view would surface
    as a divergence from the always-recomputed reference.
    """
    rng = random.Random(seed)
    n = rng.randint(4, 14)
    g = Graph(vertices=range(n))
    ref = ReferenceGraph(vertices=range(n))
    for _ in range(120):
        op = rng.random()
        if op < 0.45:  # add (or reinforce) a random edge
            u, v = rng.sample(range(n), 2)
            w = rng.choice([1.0, 0.5, 2.0, 3.25])
            g.add_edge(u, v, w)
            ref.add_edge(u, v, w)
        elif op < 0.55 and g.num_edges:  # remove a random existing edge
            u, v, _ = rng.choice(list(g.edges()))
            assert g.remove_edge(u, v) == ref.remove_edge(u, v)
        elif op < 0.7:  # point queries
            u, v = rng.sample(range(n), 2)
            assert g.has_edge(u, v) == (
                tuple(sorted((u, v))) in ref._weights
            )
        elif op < 0.85:  # side query
            k = rng.randint(1, n - 1)
            side = rng.sample(range(n), k)
            assert g.cut_weight(side) == ref.cut_weight(side)
        else:  # full-view queries
            assert_same_graph(g, ref)
    assert_same_graph(g, ref)


@pytest.mark.parametrize("seed", range(4))
def test_randomized_structure_ops_interleaving(seed):
    """quotient/induced/components keep matching after mutations."""
    rng = random.Random(1000 + seed)
    n = 12
    g = Graph(vertices=range(n))
    ref = ReferenceGraph(vertices=range(n))
    for step in range(60):
        u, v = rng.sample(range(n), 2)
        g.add_edge(u, v, 1.5)
        ref.add_edge(u, v, 1.5)
        if step % 7 == 3:
            rep = {x: x % 4 for x in range(n)}
            q, blocks = g.quotient(rep)
            rq, rblocks = ref.quotient(rep)
            assert list(q.edges()) == list(rq.edges())
            assert blocks == rblocks
        if step % 11 == 5:
            assert g.components() == ref.components()
            keep = rng.sample(range(n), 7)
            assert list(g.induced_subgraph(keep).edges()) == list(
                ref.induced_subgraph(keep).edges()
            )
