"""Tests for Definition-1 checking and Lemma 10 boundary edges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import (
    boundary_edges,
    check_definition_1,
    is_valid_decomposition,
    level_components,
    low_depth_decomposition,
    root_tree,
)
from repro.workloads import path_tree, random_tree


class TestChecker:
    def test_accepts_valid_labeling(self):
        vs, es = path_tree(4)
        t = root_tree(vs, es)
        # hand-made valid decomposition of a path 0-1-2-3:
        # level 1 at vertex 1 splits {0} and {2,3}; level 2 at 2 ... etc
        label = {0: 2, 1: 1, 2: 2, 3: 3}
        check_definition_1(t, label)

    def test_rejects_two_minima_in_component(self):
        vs, es = path_tree(3)
        t = root_tree(vs, es)
        label = {0: 1, 1: 2, 2: 1}  # both endpoints labelled 1 in T_1
        with pytest.raises(ValueError):
            check_definition_1(t, label)

    def test_rejects_wrong_cover(self):
        vs, es = path_tree(3)
        t = root_tree(vs, es)
        with pytest.raises(ValueError):
            check_definition_1(t, {0: 1, 1: 2})

    def test_is_valid_wrapper(self):
        vs, es = path_tree(3)
        t = root_tree(vs, es)
        assert not is_valid_decomposition(t, {0: 1, 1: 2, 2: 1})


class TestLevelComponents:
    def test_level_one_is_whole_tree(self):
        vs, es = random_tree(30, seed=1)
        d = low_depth_decomposition(vs, es)
        comps = level_components(d.tree, d.label, 1)
        assert len(comps) == 1
        assert sorted(comps[0]) == sorted(vs)

    def test_high_level_empty(self):
        vs, es = random_tree(30, seed=2)
        d = low_depth_decomposition(vs, es)
        assert level_components(d.tree, d.label, d.height + 5) == []


class TestLemma10:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 120), st.integers(0, 500))
    def test_at_most_two_boundary_edges(self, n, seed):
        vs, es = random_tree(n, seed=seed)
        d = low_depth_decomposition(vs, es)
        for i in range(1, d.height + 1):
            for comp in level_components(d.tree, d.label, i):
                be = boundary_edges(d.tree, d.label, comp, i)
                assert len(be) <= 2

    def test_boundary_edges_point_outward(self):
        vs, es = random_tree(60, seed=3)
        d = low_depth_decomposition(vs, es)
        for i in range(2, d.height + 1):
            for comp in level_components(d.tree, d.label, i):
                comp_set = set(comp)
                for inside, outside in boundary_edges(d.tree, d.label, comp, i):
                    assert inside in comp_set
                    assert outside not in comp_set
                    assert d.label[outside] < i

    def test_whole_tree_has_no_boundary(self):
        vs, es = random_tree(30, seed=4)
        d = low_depth_decomposition(vs, es)
        comps = level_components(d.tree, d.label, 1)
        assert boundary_edges(d.tree, d.label, comps[0], 1) == []
