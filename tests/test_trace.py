"""Trace module: exports, phase grouping, timeline rendering."""

import pytest

from repro.ampc import AMPCConfig, RoundLedger
from repro.ampc.trace import (
    export_trace,
    phase_of,
    render_phase_table,
    render_timeline,
    summarize_phases,
)


def _ledger() -> RoundLedger:
    led = RoundLedger()
    led.measure(2, "sort: scatter", local_peak=40, total_peak=100, queries=8)
    led.measure(1, "sort: merge", local_peak=64, total_peak=120, queries=4)
    led.charge(3, "Lemma 4: rooting", local_peak=32, total_peak=90)
    led.measure(1, "sweep: stab", local_peak=16, total_peak=80, queries=2)
    return led


class TestExport:
    def test_one_dict_per_entry(self):
        t = export_trace(_ledger())
        assert len(t) == 4

    def test_cumulative_rounds_monotone(self):
        t = export_trace(_ledger())
        cums = [e["cumulative_rounds"] for e in t]
        assert cums == sorted(cums) and cums[-1] == 7

    def test_fields_roundtrip(self):
        t = export_trace(_ledger())
        assert t[0]["reason"] == "sort: scatter"
        assert t[2]["kind"] == "charged"
        assert t[1]["local_peak"] == 64

    def test_empty_ledger(self):
        assert export_trace(RoundLedger()) == []


class TestPhases:
    def test_phase_of_splits_on_colon(self):
        assert phase_of("list rank: contract level 2") == "list rank"
        assert phase_of("no colon here") == "no colon here"
        assert phase_of("  padded:  x") == "padded"

    def test_grouping_preserves_first_appearance_order(self):
        phases = [r["phase"] for r in summarize_phases(_ledger())]
        assert phases == ["sort", "Lemma 4", "sweep"]

    def test_subtotals(self):
        rows = {r["phase"]: r for r in summarize_phases(_ledger())}
        assert rows["sort"]["rounds"] == 3
        assert rows["sort"]["entries"] == 2
        assert rows["sort"]["queries"] == 12
        assert rows["sort"]["local_peak"] == 64

    def test_kind_mix_rendered(self):
        rows = {r["phase"]: r for r in summarize_phases(_ledger())}
        assert rows["Lemma 4"]["kinds"] == "charged"
        assert rows["sort"]["kinds"] == "measured"


class TestRendering:
    def test_timeline_contains_header_and_bars(self):
        out = render_timeline(_ledger())
        assert "7 rounds" in out
        assert "4 measured + 3 charged" in out
        assert "|" in out and "#" in out

    def test_timeline_marks_kind(self):
        out = render_timeline(_ledger())
        assert "[M]" in out and "[C]" in out

    def test_timeline_elides_middle(self):
        led = RoundLedger()
        for i in range(40):
            led.measure(1, f"step {i}: work", local_peak=8, total_peak=8)
        out = render_timeline(led, max_entries=10)
        assert "elided" in out
        assert "step 0" in out and "step 39" in out
        assert "step 20" not in out

    def test_timeline_empty(self):
        assert "(empty ledger)" in render_timeline(RoundLedger())

    def test_phase_table_renders_rows(self):
        out = render_phase_table(_ledger())
        assert "sort" in out and "Lemma 4" in out and "sweep" in out
        assert "rounds" in out

    def test_phase_table_empty(self):
        assert "(empty ledger)" in render_phase_table(RoundLedger())

    def test_long_reasons_truncated(self):
        led = RoundLedger()
        led.measure(1, "x" * 300, local_peak=1, total_peak=1)
        out = render_timeline(led, width=60)
        assert max(len(line) for line in out.splitlines()) < 100


class TestEndToEnd:
    def test_algorithm1_trace(self):
        from repro.core import ampc_min_cut
        from repro.workloads import planted_cut

        inst = planted_cut(48, seed=4)
        res = ampc_min_cut(inst.graph, seed=4, max_copies=2)
        t = export_trace(res.ledger)
        assert t[-1]["cumulative_rounds"] == res.ledger.rounds
        out = render_timeline(res.ledger, max_entries=8)
        assert f"{res.ledger.rounds} rounds" in out

    def test_cli_timeline_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph import save_graph
        from repro.workloads import planted_cut

        inst = planted_cut(32, seed=1)
        path = tmp_path / "g.txt"
        save_graph(inst.graph, path)
        assert main(["mincut", str(path), "--trials", "1", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "phase" in out
