"""Markdown link-check over README and docs/ — no dangling references.

Every relative link target (file or directory) in the top-level
markdown docs must exist in the repo, and intra-document anchors must
point at a real heading.  External (http/https/mailto) links are out
of scope for an offline test; the CI docs leg runs this module, so a
doc rename or file move that orphans a link fails the build.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

DOCS = sorted(
    p
    for p in [ROOT / "README.md", ROOT / "ROADMAP.md", *(ROOT / "docs").glob("*.md")]
    if p.exists()
)

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def anchors_of(path: Path) -> set[str]:
    """GitHub-style heading anchors of a markdown file."""
    out = set()
    for heading in HEADING.findall(path.read_text()):
        slug = re.sub(r"[`*_]", "", heading.strip().lower())
        slug = re.sub(r"[^\w\s-]", "", slug)
        out.add(re.sub(r"\s+", "-", slug).strip("-"))
    return out


def iter_links():
    for doc in DOCS:
        for target in LINK.findall(doc.read_text()):
            yield doc, target


@pytest.mark.parametrize(
    "doc, target",
    [pytest.param(d, t, id=f"{d.name}:{t}") for d, t in iter_links()],
)
def test_link_resolves(doc: Path, target: str):
    if target.startswith(("http://", "https://", "mailto:")):
        pytest.skip("external link (offline test)")
    path_part, _, anchor = target.partition("#")
    if path_part:
        resolved = (doc.parent / path_part).resolve()
        assert resolved.exists(), f"{doc.name}: dangling link {target!r}"
        target_doc = resolved
    else:
        target_doc = doc
    if anchor and target_doc.suffix == ".md":
        assert anchor in anchors_of(target_doc), (
            f"{doc.name}: anchor {target!r} matches no heading in "
            f"{target_doc.name}"
        )


def test_docs_corpus_nonempty():
    names = {p.name for p in DOCS}
    assert {"README.md", "ARCHITECTURE.md", "HTTP_API.md"} <= names
