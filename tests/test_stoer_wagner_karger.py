"""Tests for exact min cut and Karger baselines."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    contraction_preserves_cut,
    exact_min_cut_weight,
    karger_best_of,
    karger_single_run,
    karger_stein_boosted,
    karger_stein_min_cut,
    stoer_wagner_min_cut,
)
from repro.graph import Graph
from repro.workloads import barbell, cycle, erdos_renyi, planted_cut, wheel


class TestStoerWagner:
    def test_cycle(self):
        assert exact_min_cut_weight(cycle(11)) == 2.0

    def test_barbell(self):
        inst = barbell(12, bridge_weight=0.5)
        cut = stoer_wagner_min_cut(inst.graph)
        assert cut.weight == 0.5
        assert cut.side in (inst.planted_side, frozenset(inst.graph.vertices()) - inst.planted_side)

    def test_two_vertices(self):
        g = Graph(edges=[(0, 1, 7.0)])
        assert exact_min_cut_weight(g) == 7.0

    def test_rejects_single_vertex(self):
        with pytest.raises(ValueError):
            stoer_wagner_min_cut(Graph(vertices=[0]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 24), st.integers(0, 200))
    def test_property_matches_networkx(self, n, seed):
        g = erdos_renyi(n, 0.4, weighted=True, seed=seed)
        H = nx.Graph()
        for u, v, w in g.edges():
            H.add_edge(u, v, weight=w)
        ref, _ = nx.stoer_wagner(H)
        assert abs(exact_min_cut_weight(g) - ref) < 1e-9

    def test_returned_side_achieves_weight(self):
        g = erdos_renyi(15, 0.4, weighted=True, seed=9)
        cut = stoer_wagner_min_cut(g)
        cut.validate(g)


class TestKargerSingle:
    def test_returns_valid_cut(self):
        g = planted_cut(30, seed=1).graph
        cut = karger_single_run(g, seed=1)
        cut.validate(g)

    def test_never_below_exact(self):
        g = erdos_renyi(18, 0.35, weighted=True, seed=2)
        exact = exact_min_cut_weight(g)
        for s in range(10):
            assert karger_single_run(g, seed=s).weight >= exact - 1e-9

    def test_best_of_improves(self):
        g = planted_cut(24, seed=3).graph
        single = karger_single_run(g, seed=3).weight
        best = karger_best_of(g, 20, seed=3).weight
        assert best <= single

    def test_best_of_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            karger_best_of(cycle(5), 0)


class TestKargerStein:
    def test_finds_exact_on_planted_with_boosting(self):
        inst = planted_cut(32, seed=4)
        exact = exact_min_cut_weight(inst.graph)
        cut = karger_stein_boosted(inst.graph, trials=8, seed=4)
        assert abs(cut.weight - exact) < 1e-9

    def test_single_invocation_valid(self):
        g = wheel(12)
        cut = karger_stein_min_cut(g, seed=5)
        cut.validate(g)
        assert cut.weight >= exact_min_cut_weight(g) - 1e-9

    def test_success_rate_beats_lemma_bound(self):
        """Karger–Stein succeeds w.p. Omega(1/log n); empirically on a
        small planted instance it should succeed much more often."""
        inst = planted_cut(24, cross_edges=1, seed=6)
        exact = exact_min_cut_weight(inst.graph)
        hits = sum(
            1
            for s in range(20)
            if abs(karger_stein_min_cut(inst.graph, seed=s).weight - exact) < 1e-9
        )
        assert hits >= 5  # >> 1/log2(24) ~ 0.22 per-trial bound


class TestPreservation:
    def test_preserved_when_no_crossing_contraction(self):
        inst = barbell(10, bridge_weight=0.5)
        # with one bridge, contracting to 2 blocks usually merges within
        # cliques first; verify the predicate is consistent with blocks
        ok = contraction_preserves_cut(
            inst.graph, inst.planted_side, 2, seed=1
        )
        assert ok in (True, False)  # smoke: no crash, boolean

    def test_target_n_means_trivially_preserved(self):
        g = cycle(8)
        side = frozenset(range(4))
        assert contraction_preserves_cut(g, side, 8, seed=2)

    def test_empirical_rate_dominates_lemma1(self):
        from repro.analysis.theory import karger_preservation_lower_bound

        inst = planted_cut(32, cross_edges=1, seed=7)
        t = 2.0
        target = int(32 / t)
        trials = 60
        hits = sum(
            1
            for s in range(trials)
            if contraction_preserves_cut(
                inst.graph, inst.planted_side, target, seed=s
            )
        )
        assert hits / trials >= karger_preservation_lower_bound(t) * 0.8
