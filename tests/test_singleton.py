"""Tests for Algorithm 3 — SmallestSingletonCut (Theorem 3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import AMPCConfig, RoundLedger
from repro.core import (
    draw_contraction_keys,
    smallest_singleton_cut,
    smallest_singleton_cut_value,
    verify_against_replay,
)
from repro.graph import Graph
from repro.workloads import (
    barbell,
    cycle,
    erdos_renyi,
    grid,
    planted_cut,
    wheel,
)


class TestDifferentialExactness:
    """The headline guarantee: Algorithm 3 == naive replay, always."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_unweighted(self, seed):
        g = erdos_renyi(random.Random(seed).randint(5, 28), 0.3, seed=seed)
        fast, slow = verify_against_replay(g, seed=seed * 3 + 1)
        assert abs(fast - slow) < 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_random_weighted(self, seed):
        g = erdos_renyi(
            random.Random(100 + seed).randint(5, 24), 0.35, weighted=True, seed=seed
        )
        fast, slow = verify_against_replay(g, seed=seed * 7 + 2)
        assert abs(fast - slow) < 1e-9

    @pytest.mark.parametrize(
        "g",
        [cycle(13), wheel(10), grid(3, 5), barbell(10).graph, planted_cut(20).graph],
        ids=["cycle", "wheel", "grid", "barbell", "planted"],
    )
    def test_structured_graphs(self, g):
        for seed in range(4):
            fast, slow = verify_against_replay(g, seed=seed)
            assert abs(fast - slow) < 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 22), st.integers(0, 10_000))
    def test_property_exactness(self, n, seed):
        g = erdos_renyi(n, 0.35, weighted=bool(seed % 2), seed=seed % 97)
        fast, slow = verify_against_replay(g, seed=seed)
        assert abs(fast - slow) < 1e-9


class TestResultContract:
    def test_witness_cut_weight_matches(self):
        g = planted_cut(40, seed=1).graph
        res = smallest_singleton_cut(g, seed=1)
        res.cut.validate(g)
        assert abs(res.cut.weight - res.weight) < 1e-9

    def test_witness_is_proper_subset(self):
        g = cycle(15)
        res = smallest_singleton_cut(g, seed=2)
        assert 0 < len(res.cut.side) < g.num_vertices

    def test_rejects_disconnected(self):
        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            smallest_singleton_cut(g)

    def test_rejects_single_vertex(self):
        with pytest.raises(ValueError):
            smallest_singleton_cut(Graph(vertices=[0]))

    def test_value_wrapper(self):
        g = cycle(9)
        assert smallest_singleton_cut_value(g, seed=3) == 2.0

    def test_deterministic_given_keys(self):
        g = erdos_renyi(18, 0.3, seed=4)
        keys = draw_contraction_keys(g, seed=4)
        a = smallest_singleton_cut(g, keys)
        b = smallest_singleton_cut(g, keys)
        assert a.weight == b.weight
        assert a.cut.side == b.cut.side


class TestRoundAccounting:
    def test_rounds_constant_in_n(self):
        rounds = []
        for n in [16, 64, 128]:
            g = planted_cut(n, seed=n).graph
            led = RoundLedger()
            smallest_singleton_cut(g, ledger=led, seed=n)
            rounds.append(led.rounds)
        assert len(set(rounds)) == 1  # Theorem 3: O(1/eps), not O(f(n))

    def test_rounds_scale_with_inverse_eps(self):
        g = planted_cut(32, seed=5).graph
        r = {}
        for eps in (0.5, 0.25):
            led = RoundLedger()
            cfg = AMPCConfig(n_input=g.num_vertices, eps=eps)
            smallest_singleton_cut(g, config=cfg, ledger=led, seed=5)
            r[eps] = led.rounds
        assert r[0.25] > r[0.5]

    def test_ledger_cites_all_steps(self):
        g = cycle(16)
        led = RoundLedger()
        smallest_singleton_cut(g, ledger=led, seed=6)
        cited = " ".join(led.citations())
        for ref in ["line 1", "Lemma 3", "Lemma 11", "Lemma 13", "Lemma 14"]:
            assert ref in cited, f"missing citation {ref}"

    def test_total_space_within_envelope(self):
        from repro.analysis.theory import total_space_envelope

        g = planted_cut(64, seed=7).graph
        led = RoundLedger()
        smallest_singleton_cut(g, ledger=led, seed=7)
        assert led.total_peak <= total_space_envelope(
            g.num_vertices, g.num_edges
        )


class TestSimulatorExecution:
    def test_simulator_mode_matches_charged_mode(self):
        g = planted_cut(48, seed=11).graph
        keys = draw_contraction_keys(g, seed=11)
        charged = smallest_singleton_cut(g, keys)
        led = RoundLedger()
        measured = smallest_singleton_cut(
            g, keys, ledger=led, execute_on_simulator=True
        )
        assert abs(charged.weight - measured.weight) < 1e-9
        assert charged.cut.side == measured.cut.side

    def test_simulator_mode_measures_real_rounds(self):
        g = cycle(24)
        keys = draw_contraction_keys(g, seed=12)
        led = RoundLedger()
        smallest_singleton_cut(g, keys, ledger=led, execute_on_simulator=True)
        # the distributed MST sort and the representative sweep ran
        assert led.measured_rounds >= 10
        assert any("sample sort" in e.reason for e in led.entries)

    def test_simulator_mode_exact_vs_oracle(self):
        from repro.core.bags import replay_min_singleton

        g = erdos_renyi(20, 0.35, weighted=True, seed=13)
        keys = draw_contraction_keys(g, seed=13)
        res = smallest_singleton_cut(g, keys, execute_on_simulator=True)
        oracle = replay_min_singleton(g, keys).min_singleton_weight
        assert abs(res.weight - oracle) < 1e-9


class TestCutQuality:
    def test_cycle_always_finds_two(self):
        # every bag boundary on a cycle is exactly 2 (any arc's interval)
        g = cycle(20)
        for seed in range(5):
            assert smallest_singleton_cut_value(g, seed=seed) == 2.0

    def test_never_below_exact_min_cut(self):
        from repro.baselines import exact_min_cut_weight

        for seed in range(5):
            g = erdos_renyi(20, 0.3, weighted=True, seed=seed)
            exact = exact_min_cut_weight(g)
            got = smallest_singleton_cut_value(g, seed=seed)
            assert got >= exact - 1e-9

    def test_at_most_min_weighted_degree(self):
        for seed in range(5):
            g = erdos_renyi(20, 0.3, weighted=True, seed=50 + seed)
            got = smallest_singleton_cut_value(g, seed=seed)
            assert got <= min(g.degree(v) for v in g.vertices()) + 1e-9
