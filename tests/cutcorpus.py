"""Shared seeded graph corpus for the preprocess/metamorphic suites.

One module so ``tests/test_preprocess.py`` and
``tests/test_metamorphic_cuts.py`` exercise the *same* instances —
the differential harness proves the kernel exact on exactly the corpus
the metamorphic layer perturbs.  Weights are integers or small dyadic
rationals throughout, so every cut weight is exactly representable and
"bit-identical" comparisons are meaningful.
"""

from __future__ import annotations

from repro.graph import Graph
from repro.workloads import (
    barbell,
    clustered_community,
    cycle,
    erdos_renyi,
    grid,
    near_regular_expander,
    planted_cut,
    planted_viecut,
    power_law,
    random_regular_ish,
    two_cycles,
    wheel,
)


def path_graph(weights: list[float]) -> Graph:
    """A path with the given edge weights — fully kernelizable (R3)."""
    return Graph(edges=[(i, i + 1, w) for i, w in enumerate(weights)])


def star_graph(weights: list[float]) -> Graph:
    """Hub 0 with one spoke per weight — fully kernelizable (R3)."""
    return Graph(edges=[(0, i + 1, w) for i, w in enumerate(weights)])


def connected_corpus() -> list[tuple[str, Graph]]:
    """Connected graphs with n >= 2: every solver accepts them."""
    return [
        ("planted16", planted_cut(16, seed=1).graph),
        ("planted24", planted_cut(24, seed=2, cross_edges=4).graph),
        ("er14w", erdos_renyi(14, 0.3, weighted=True, seed=3)),
        ("regular16", random_regular_ish(16, 4, seed=4)),
        ("cycle12", cycle(12)),
        ("cycle9w", cycle(9, weight=2.5)),
        ("grid4x5", grid(4, 5)),
        ("wheel9", wheel(9, rim_weight=2.0)),
        ("barbell10", barbell(10, bridge_weight=2.0).graph),
        ("powerlaw20", power_law(20, seed=5)),
        ("path5", path_graph([3.0, 1.0, 2.0, 5.0])),
        ("star7", star_graph([5.0, 2.0, 7.0, 1.5, 3.0, 4.0])),
        ("single_edge", Graph(edges=[(0, 1, 4.0)])),
        ("triangle", Graph(edges=[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])),
        # VieCut literature shapes (PR 10) — kept small so every suite
        # that sweeps the corpus stays fast
        ("viecut_cc16", clustered_community(16, seed=7).graph),
        ("viecut_exp14", near_regular_expander(14, 4, seed=8)),
        ("viecut_planted18", planted_viecut(18, seed=9).graph),
    ]


def disconnected_corpus() -> list[tuple[str, Graph]]:
    """Graphs whose min cut is 0 (>= 2 components, incl. isolated)."""
    iso = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1, 2.0), (1, 2, 1.0)])
    two_pairs = Graph(edges=[(0, 1, 3.0), (2, 3, 4.0)])
    return [
        ("two_cycles12", two_cycles(12)),
        ("isolated_vertex", iso),
        ("two_pairs", two_pairs),
    ]


def relabel(graph: Graph, tag: str = "x") -> tuple[Graph, dict]:
    """An isomorphic copy with string-tagged vertices.

    Vertices and edges are inserted in the original iteration order, so
    a seeded solver walks the same trajectory on both graphs and the
    relabeling metamorphic is a deterministic bit-level check.
    """
    phi = {v: f"{tag}{i}" for i, v in enumerate(graph.vertices())}
    out = Graph(vertices=[phi[v] for v in graph.vertices()])
    for u, v, w in graph.edges():
        out.add_edge(phi[u], phi[v], w)
    return out, phi


def scale(graph: Graph, factor: float) -> Graph:
    """Uniformly scaled copy (same insertion order).

    With ``factor`` a power of two the scaling is exact in binary
    floating point, so weight comparisons — and hence every seeded
    solver trajectory — are preserved exactly.
    """
    out = Graph(vertices=graph.vertices())
    for u, v, w in graph.edges():
        out.add_edge(u, v, w * factor)
    return out
