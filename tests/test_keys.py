"""Tests for contraction-key drawing (Section 4.1 semantics)."""

import collections
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import draw_contraction_keys
from repro.graph import Graph
from repro.workloads import cycle, erdos_renyi


class TestContract:
    def test_keys_unique(self):
        g = erdos_renyi(30, 0.3, seed=1)
        keys = draw_contraction_keys(g, seed=0)
        values = [k for (u, v), k in keys.key.items() if u < v]
        assert len(set(values)) == len(values)

    def test_keys_symmetric(self):
        g = cycle(10)
        keys = draw_contraction_keys(g)
        for u, v, _ in g.edges():
            assert keys.of(u, v) == keys.of(v, u)

    def test_keys_within_key_space(self):
        g = erdos_renyi(20, 0.4, seed=2)
        keys = draw_contraction_keys(g)
        assert keys.key_space == 20**3
        assert all(1 <= k <= keys.key_space for k in keys.key.values())

    def test_edges_by_key_ascending_and_complete(self):
        g = erdos_renyi(15, 0.4, seed=3)
        keys = draw_contraction_keys(g)
        listed = keys.edges_by_key()
        assert len(listed) == g.num_edges
        ks = [k for k, _, _ in listed]
        assert ks == sorted(ks)

    def test_deterministic_per_seed(self):
        g = cycle(12)
        assert draw_contraction_keys(g, seed=5).key == draw_contraction_keys(g, seed=5).key

    def test_different_seeds_differ(self):
        g = erdos_renyi(20, 0.3, seed=4)
        a = draw_contraction_keys(g, seed=1).edges_by_key()
        b = draw_contraction_keys(g, seed=2).edges_by_key()
        assert [e[1:] for e in a] != [e[1:] for e in b]

    def test_empty_graph(self):
        g = Graph(vertices=[0, 1])
        keys = draw_contraction_keys(g)
        assert keys.key == {}
        assert keys.max_key == 0


class TestWeightBias:
    def test_heavy_edges_contract_earlier_on_average(self):
        """Exponential clocks: a weight-100 edge should beat a weight-1
        edge in the contraction order the vast majority of draws."""
        g = Graph(edges=[("a", "b", 100.0), ("c", "d", 1.0)])
        wins = 0
        trials = 300
        for s in range(trials):
            keys = draw_contraction_keys(g, seed=s)
            if keys.of("a", "b") < keys.of("c", "d"):
                wins += 1
        # P(heavy first) = 100/101 ~ 0.99
        assert wins / trials > 0.93

    def test_uniform_for_equal_weights(self):
        g = Graph(edges=[("a", "b", 5.0), ("c", "d", 5.0)])
        wins = 0
        trials = 400
        for s in range(trials):
            keys = draw_contraction_keys(g, seed=s)
            if keys.of("a", "b") < keys.of("c", "d"):
                wins += 1
        assert 0.4 < wins / trials < 0.6


class TestUniformKeys:
    """The A4 ablation arm: weight-oblivious uniform keys."""

    def test_unique_and_in_key_space(self):
        from repro.core import draw_uniform_keys
        from repro.workloads import erdos_renyi

        g = erdos_renyi(24, 0.3, weighted=True, seed=3)
        keys = draw_uniform_keys(g, seed=1)
        uniq = {keys.of(u, v) for u, v, _ in g.edges()}
        assert len(uniq) == g.num_edges
        assert all(1 <= k <= keys.key_space for k in uniq)

    def test_orientation_symmetric(self):
        from repro.core import draw_uniform_keys
        from repro.graph import Graph

        g = Graph(edges=[(0, 1, 5.0), (1, 2, 1.0)])
        keys = draw_uniform_keys(g, seed=2)
        assert keys.of(0, 1) == keys.of(1, 0)

    def test_weight_oblivious(self):
        # same seed, same topology, different weights => same order
        from repro.core import draw_uniform_keys
        from repro.graph import Graph

        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        g1 = Graph(edges=[(u, v, 1.0) for u, v in edges])
        g2 = Graph(edges=[(u, v, float(1 + 7 * ((u + v) % 3))) for u, v in edges])
        k1 = draw_uniform_keys(g1, seed=9)
        k2 = draw_uniform_keys(g2, seed=9)
        order1 = sorted(edges, key=lambda e: k1.of(*e))
        order2 = sorted(edges, key=lambda e: k2.of(*e))
        assert order1 == order2

    def test_clocks_bias_towards_heavy_edges(self):
        # statistical: the heavy edge is contracted first far more often
        # under clocks than under uniform keys
        from repro.core import draw_contraction_keys, draw_uniform_keys
        from repro.graph import Graph

        g = Graph(edges=[(0, 1, 50.0), (1, 2, 1.0), (2, 3, 1.0)])
        first_clock = sum(
            min(
                ((u, v) for u, v, _ in g.edges()),
                key=lambda e: draw_contraction_keys(g, seed=t).of(*e),
            )
            == (0, 1)
            for t in range(80)
        )
        first_uniform = sum(
            min(
                ((u, v) for u, v, _ in g.edges()),
                key=lambda e: draw_uniform_keys(g, seed=t).of(*e),
            )
            == (0, 1)
            for t in range(80)
        )
        assert first_clock > 60      # ~ 50/52 of the time
        assert first_uniform < 45    # ~ 1/3 of the time
